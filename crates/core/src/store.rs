//! Crash-safe sharded index store (`TINDIS` manifest + `TINDSH` shards).
//!
//! The monolithic index file of [`crate::persist`] is all-or-nothing: one
//! torn write or flipped bit loses the whole artifact. This module stores
//! the same index as a **directory** of independently checksummed shards —
//! each shard a contiguous range of the parallel builder's 64-column
//! blocks — bound together by a manifest that carries the dataset
//! fingerprint, the build configuration, per-shard digests, and a
//! generation number.
//!
//! Durability discipline (the `.tcp` checkpoint rules applied to the index
//! itself):
//!
//! * every file is published via temp-file → fsync → atomic rename, so a
//!   killed writer can never leave a half-written shard under its final
//!   name;
//! * the manifest rename is the *single commit point* of a pack: until it
//!   lands, the previous generation is untouched and fully servable;
//! * opening a store sweeps orphan `*.tmp` files and shards of stale
//!   generations, so a crashed pack leaves no debris behind.
//!
//! On the read side the store degrades instead of dying: a missing or
//! corrupt shard is **quarantined** (typed [`StoreError::ShardCorrupt`]
//! with the expected/actual CRC), its attribute range is recorded in a
//! [`crate::index::ShardMask`] on the returned [`TindIndex`], and every
//! other shard keeps serving. [`repair_store`] rebuilds quarantined shards
//! from the dataset and proves byte-identity against the manifest digest
//! before publishing them.
//!
//! With zero quarantined shards the loaded index is byte-identical
//! (`persist::encode_index`) to the index that was packed, at any shard
//! count — the differential contract pinned by `tests/store_roundtrip.rs`.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tind_bloom::{
    BloomColumnStrip, BloomMatrix, MmapFile, Segment, WindowFile, WindowPool, WordRegion,
};
use tind_model::binio::{check_magic, dataset_fingerprint, get_varint, put_varint, BinIoError};
use tind_model::checksum::{self, crc32};
use tind_model::{AttrId, Dataset, Interval, MemoryBudget, ValueSet};

use crate::fault::OpBudget;
use crate::index::{MaskedShard, ShardMask, TimeSlice, TindIndex};
use crate::params::TindParams;
use crate::persist::{
    corrupt, get_config, get_interval, get_value_set, put_config, put_interval, put_value_set,
};
use crate::required::required_values;

/// Magic bytes of the store manifest, including a format version.
pub const MANIFEST_MAGIC: &[u8; 8] = b"TINDIS\x00\x01";

/// Magic bytes of one store shard, including a format version.
pub const SHARD_MAGIC: &[u8; 8] = b"TINDSH\x00\x01";

/// Magic bytes of an arena-layout (v2) store shard. The first seven bytes
/// match [`SHARD_MAGIC`] so format sniffers match both; the version byte
/// distinguishes them.
pub const SHARD_MAGIC_V2: &[u8; 8] = b"TINDSH\x00\x02";

/// Section alignment of the arena layout: every matrix section starts on
/// a 64-byte boundary so mapped word views are cache-line aligned.
pub const ARENA_ALIGN: usize = 64;

/// Fixed arena header: magic(8) + generation(8) + id(4) + block_start(4)
/// + block_count(4) + num_targets(4) + fingerprint(8) + m(4) +
/// section_count(4).
const ARENA_FIXED_HEADER: usize = 48;

/// One section-table entry: byte offset (u64) + byte length (u64).
const ARENA_SECTION_ENTRY: usize = 16;

/// On-disk layout of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardFormat {
    /// v1: varint-headed column-strip stream, fully decoded at open.
    #[default]
    Legacy,
    /// v2: offset-table arena with 64-byte-aligned row-major matrix
    /// sections, borrowable straight from an mmap — open validates the
    /// header CRC and section bounds only, never decoding the words.
    Arena,
}

impl std::fmt::Display for ShardFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardFormat::Legacy => write!(f, "legacy"),
            ShardFormat::Arena => write!(f, "arena"),
        }
    }
}

/// How matrix words of an opened store are backed in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreBacking {
    /// Arena shards mmap on little-endian unix; everything else decodes
    /// to the heap.
    #[default]
    Auto,
    /// Copy into owned heap words (full read + digest verification, the
    /// pre-arena behavior).
    Heap,
    /// Borrow matrix sections zero-copy from an mmap'd shard file.
    /// Legacy shards fall back to heap decode.
    Mmap,
    /// `pread` each matrix section on demand, charged to the open's
    /// [`MemoryBudget`] and evicted LRU under pressure. Legacy shards
    /// fall back to heap decode.
    Windowed,
}

impl std::fmt::Display for StoreBacking {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreBacking::Auto => write!(f, "auto"),
            StoreBacking::Heap => write!(f, "heap"),
            StoreBacking::Mmap => write!(f, "mmap"),
            StoreBacking::Windowed => write!(f, "windowed"),
        }
    }
}

/// Options for [`open_store_with`].
#[derive(Debug, Clone, Default)]
pub struct OpenOptions {
    /// How matrix words are backed; see [`StoreBacking`].
    pub backing: StoreBacking,
    /// Budget windowed sections are charged to (and evicted under).
    /// `None` leaves windows unaccounted. Ignored by other backings.
    pub memory_budget: Option<MemoryBudget>,
}

/// File name of the manifest inside a store directory.
pub const MANIFEST_NAME: &str = "index.manifest";

/// Errors arising from store operations.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure (including a missing shard file).
    Io(std::io::Error),
    /// A store file does not conform to its format or fails its own
    /// checksum trailer.
    Bin(BinIoError),
    /// A shard's bytes do not hash to the digest the manifest committed —
    /// bit rot, a torn write, or a file swapped in from another store.
    ShardCorrupt {
        /// Shard id within the store generation.
        shard: usize,
        /// CRC-32 the manifest recorded at pack time.
        expected: u32,
        /// CRC-32 the shard file actually hashes to.
        actual: u32,
    },
    /// The store and the caller disagree on identity: wrong dataset
    /// fingerprint, wrong attribute count, inconsistent shard geometry, or
    /// an operation that is not meaningful in the current state.
    Mismatch(String),
    /// Injected kill: the operation stopped after the configured number of
    /// write/fsync/rename steps, leaving the directory exactly as a
    /// SIGKILL at that boundary would.
    Killed {
        /// Steps performed before the kill.
        ops: u64,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Bin(e) => write!(f, "{e}"),
            StoreError::ShardCorrupt { shard, expected, actual } => write!(
                f,
                "shard {shard} corrupt: manifest digest {expected:#010x} but file hashes to \
                 {actual:#010x}"
            ),
            StoreError::Mismatch(msg) => write!(f, "store mismatch: {msg}"),
            StoreError::Killed { ops } => {
                write!(f, "injected kill after {ops} store write operations")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Bin(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<BinIoError> for StoreError {
    fn from(e: BinIoError) -> Self {
        StoreError::Bin(e)
    }
}

fn mismatch(msg: impl Into<String>) -> StoreError {
    StoreError::Mismatch(msg.into())
}

/// One quarantined (or otherwise unloadable) shard, with the attribute
/// range its loss masks and the typed error that condemned it.
#[derive(Debug)]
pub struct ShardFault {
    /// Shard id within the store generation.
    pub shard: usize,
    /// First attribute the shard covered.
    pub attr_start: u32,
    /// One past the last attribute the shard covered.
    pub attr_end: u32,
    /// Why the shard was rejected.
    pub error: StoreError,
}

impl std::fmt::Display for ShardFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {} (attributes {}..{}): {}",
            self.shard, self.attr_start, self.attr_end, self.error
        )
    }
}

/// Options for [`pack_store`].
#[derive(Debug, Clone, Default)]
pub struct PackOptions {
    /// Desired shard count; clamped to `[1, column blocks]`. `0` picks
    /// `min(8, blocks)`.
    pub shards: usize,
    /// On-disk shard layout to write; both layouts are always readable.
    pub format: ShardFormat,
    /// Fault injection: stop (with [`StoreError::Killed`]) after this many
    /// write/fsync/rename steps, leaving the directory as a SIGKILL at
    /// that boundary would. `None` disables.
    pub kill_after_ops: Option<u64>,
}

/// Options for [`repair_store`].
#[derive(Debug, Clone, Default)]
pub struct RepairOptions {
    /// Fault injection, as in [`PackOptions::kill_after_ops`].
    pub kill_after_ops: Option<u64>,
}

/// Outcome of a successful [`pack_store`].
#[derive(Debug)]
pub struct PackReport {
    /// Generation number the pack committed.
    pub generation: u64,
    /// Number of shards written.
    pub shards: usize,
    /// Total bytes across shards and manifest.
    pub bytes_written: u64,
    /// Orphan temp files swept after commit.
    pub swept_temps: usize,
    /// Stale-generation shard files swept after commit.
    pub swept_stale: usize,
}

/// Outcome of a successful [`open_store`] — including a degraded one.
#[derive(Debug)]
pub struct LoadReport {
    /// Generation that was opened.
    pub generation: u64,
    /// Shards the manifest committed.
    pub shards_total: usize,
    /// Shards that failed to load and were quarantined (empty for a clean
    /// load).
    pub quarantined: Vec<ShardFault>,
    /// Orphan temp files swept during recovery.
    pub swept_temps: usize,
    /// Stale-generation shard files swept during recovery.
    pub swept_stale: usize,
    /// On-disk format of the loaded shards ([`ShardFormat::Arena`] only
    /// when every non-quarantined shard used the arena layout).
    pub format: ShardFormat,
    /// Backing actually used for matrix words (requested backing resolved
    /// against the on-disk format and platform).
    pub backing: StoreBacking,
    /// The window pool managing `pread` windows, when the windowed
    /// backing was used — exposes load/eviction/overcommit counters.
    pub window_pool: Option<Arc<WindowPool>>,
}

impl LoadReport {
    /// Whether every shard loaded cleanly.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }
}

/// Outcome of [`verify_store`].
#[derive(Debug)]
pub struct VerifyReport {
    /// Generation the manifest commits.
    pub generation: u64,
    /// Dataset fingerprint the store was packed against.
    pub fingerprint: u64,
    /// Shards the manifest commits.
    pub shards_total: usize,
    /// Shards that fail verification.
    pub faults: Vec<ShardFault>,
}

/// Outcome of a successful [`repair_store`].
#[derive(Debug)]
pub struct RepairReport {
    /// Generation that was repaired (repair never changes it).
    pub generation: u64,
    /// Ids of the shards that were rebuilt and republished.
    pub rebuilt: Vec<usize>,
    /// Shards that were already intact.
    pub intact: usize,
}

/// Decoded manifest, internal to the module.
struct Manifest {
    generation: u64,
    fingerprint: u64,
    config: crate::index::IndexConfig,
    num_attrs: usize,
    /// Per slice: `(interval, expanded)` — expansion is persisted so
    /// repair never re-runs the seeded slice selection.
    slices: Vec<(Interval, Interval)>,
    has_m_r: bool,
    shards: Vec<ShardEntry>,
}

struct ShardEntry {
    id: usize,
    block_start: usize,
    block_count: usize,
    byte_len: u64,
    digest: u32,
}

impl ShardEntry {
    fn attr_range(&self, num_attrs: usize) -> (u32, u32) {
        let start = (self.block_start * 64).min(num_attrs) as u32;
        let end = ((self.block_start + self.block_count) * 64).min(num_attrs) as u32;
        (start, end)
    }
}

impl Manifest {
    fn num_targets(&self) -> usize {
        1 + self.slices.len() + usize::from(self.has_m_r)
    }

    fn blocks(&self) -> usize {
        self.num_attrs.div_ceil(64)
    }
}

fn shard_name(generation: u64, id: usize) -> String {
    format!("g{generation}-s{id}.shard")
}

/// Parses `g{gen}-s{id}.shard`, returning the generation.
fn parse_shard_gen(name: &str) -> Option<u64> {
    let rest = name.strip_prefix('g')?;
    let dash = rest.find('-')?;
    let gen: u64 = rest[..dash].parse().ok()?;
    let id = rest[dash + 1..].strip_prefix('s')?.strip_suffix(".shard")?;
    let _: u64 = id.parse().ok()?;
    Some(gen)
}

/// Counted write/fsync/rename steps for kill injection; the counting
/// lives in [`crate::fault::OpBudget`] so other crash-safe writers (the
/// delta-update checkpoint path) share the same sweep semantics. This
/// wrapper only translates the kill into a [`StoreError::Killed`].
fn step(budget: &mut OpBudget) -> Result<(), StoreError> {
    budget.step().map_err(|ops| StoreError::Killed { ops })
}

/// Publishes `bytes` at `final_path` via temp-file → fsync → atomic
/// rename; each primitive is one killable step.
fn write_atomic(
    final_path: &Path,
    bytes: &[u8],
    budget: &mut OpBudget,
) -> Result<(), StoreError> {
    use std::io::Write;
    let mut tmp = final_path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    step(budget)?;
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(bytes)?;
    step(budget)?;
    file.sync_all()?;
    drop(file);
    step(budget)?;
    std::fs::rename(&tmp, final_path)?;
    Ok(())
}

/// Removes orphan `*.tmp` files and shards of generations other than
/// `live_gen`; returns `(temps, stale)` counts.
fn sweep(dir: &Path, live_gen: u64) -> Result<(usize, usize), StoreError> {
    let (mut temps, mut stale) = (0, 0);
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".tmp") {
            std::fs::remove_file(entry.path())?;
            temps += 1;
        } else if let Some(gen) = parse_shard_gen(&name) {
            if gen != live_gen {
                std::fs::remove_file(entry.path())?;
                stale += 1;
            }
        }
    }
    Ok((temps, stale))
}

fn encode_manifest(m: &Manifest) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 << 12);
    buf.put_slice(MANIFEST_MAGIC);
    put_varint(&mut buf, m.generation);
    buf.put_u64_le(m.fingerprint);
    put_config(&mut buf, &m.config);
    put_varint(&mut buf, m.num_attrs as u64);
    put_varint(&mut buf, m.slices.len() as u64);
    for &(interval, expanded) in &m.slices {
        put_interval(&mut buf, interval);
        put_interval(&mut buf, expanded);
    }
    buf.put_u8(u8::from(m.has_m_r));
    put_varint(&mut buf, m.shards.len() as u64);
    for s in &m.shards {
        put_varint(&mut buf, s.id as u64);
        put_varint(&mut buf, s.block_start as u64);
        put_varint(&mut buf, s.block_count as u64);
        put_varint(&mut buf, s.byte_len);
        buf.put_u32_le(s.digest);
    }
    checksum::append_trailer(&mut buf);
    buf.freeze()
}

fn decode_manifest(bytes: Bytes) -> Result<Manifest, StoreError> {
    check_magic(&bytes, MANIFEST_MAGIC, "store manifest")?;
    let mut buf = checksum::verify_and_strip(bytes)?;
    buf.advance(MANIFEST_MAGIC.len());
    let generation = get_varint(&mut buf)?;
    if buf.remaining() < 8 {
        return Err(corrupt("truncated manifest fingerprint").into());
    }
    let fingerprint = buf.get_u64_le();
    let config = get_config(&mut buf)?;
    let num_attrs = get_varint(&mut buf)? as usize;
    if num_attrs == 0 {
        return Err(corrupt("manifest over zero attributes").into());
    }
    let num_slices = get_varint(&mut buf)? as usize;
    let mut slices = Vec::with_capacity(num_slices);
    for _ in 0..num_slices {
        let interval = get_interval(&mut buf)?;
        let expanded = get_interval(&mut buf)?;
        slices.push((interval, expanded));
    }
    if !buf.has_remaining() {
        return Err(corrupt("truncated m_r flag").into());
    }
    let has_m_r = match buf.get_u8() {
        0 => false,
        1 => true,
        other => return Err(corrupt(format!("bad m_r flag {other}")).into()),
    };
    let shard_count = get_varint(&mut buf)? as usize;
    let mut shards = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        let id = get_varint(&mut buf)? as usize;
        let block_start = get_varint(&mut buf)? as usize;
        let block_count = get_varint(&mut buf)? as usize;
        let byte_len = get_varint(&mut buf)?;
        if buf.remaining() < 4 {
            return Err(corrupt("truncated shard digest").into());
        }
        let digest = buf.get_u32_le();
        shards.push(ShardEntry { id, block_start, block_count, byte_len, digest });
    }
    if buf.has_remaining() {
        return Err(corrupt("trailing bytes after manifest").into());
    }
    let manifest =
        Manifest { generation, fingerprint, config, num_attrs, slices, has_m_r, shards };
    // Shards must partition the column blocks: ids 0..n in order, each
    // range starting where the previous ended, covering every block.
    let mut next_block = 0usize;
    for (i, s) in manifest.shards.iter().enumerate() {
        if s.id != i || s.block_start != next_block || s.block_count == 0 {
            return Err(mismatch(format!(
                "shard table is not a partition of the column blocks at shard {i}"
            )));
        }
        next_block += s.block_count;
    }
    if next_block != manifest.blocks() {
        return Err(mismatch(format!(
            "shard table covers {next_block} blocks but the index has {}",
            manifest.blocks()
        )));
    }
    Ok(manifest)
}

fn read_manifest(dir: &Path) -> Result<Manifest, StoreError> {
    let raw = std::fs::read(dir.join(MANIFEST_NAME))?;
    decode_manifest(Bytes::from(raw))
}

/// Encodes one shard's payload. `strip_words` is called once per
/// `(target, block)` in ascending target-major order and must yield the
/// strip's `m` row words; `universe` once per attribute in the shard's
/// range. Shared by pack (strips extracted from built matrices) and repair
/// (strips re-rendered from the dataset) so the two paths are byte-equal
/// by construction.
fn encode_shard_with<FS, FU>(
    manifest: &Manifest,
    entry_id: usize,
    block_start: usize,
    block_count: usize,
    mut strip_words: FS,
    mut universe: FU,
) -> Bytes
where
    FS: FnMut(usize, usize) -> Vec<u64>,
    FU: FnMut(usize, &mut BytesMut),
{
    let m = manifest.config.m as usize;
    let estimated =
        manifest.num_targets() * block_count * m * 8 + block_count * 64 * 16 + (1 << 10);
    let mut buf = BytesMut::with_capacity(estimated);
    buf.put_slice(SHARD_MAGIC);
    put_varint(&mut buf, manifest.generation);
    put_varint(&mut buf, entry_id as u64);
    put_varint(&mut buf, block_start as u64);
    put_varint(&mut buf, block_count as u64);
    buf.put_u64_le(manifest.fingerprint);
    for target in 0..manifest.num_targets() {
        for block in block_start..block_start + block_count {
            let words = strip_words(target, block);
            debug_assert_eq!(words.len(), m, "one lane word per matrix row");
            for &w in &words {
                buf.put_u64_le(w);
            }
        }
    }
    let attr_lo = block_start * 64;
    let attr_hi = ((block_start + block_count) * 64).min(manifest.num_attrs);
    for attr in attr_lo..attr_hi {
        universe(attr, &mut buf);
    }
    checksum::append_trailer(&mut buf);
    buf.freeze()
}

/// Content digest of an encoded shard: CRC-32 over the payload *excluding*
/// its own integrity trailer. The trailer must stay outside the hash — the
/// CRC of any message with its own CRC appended is the fixed residue
/// `0x2144df1c`, so hashing the whole file would give every valid shard the
/// same "digest" and bind nothing beyond what the trailer already checks.
fn shard_digest(payload: &[u8]) -> u32 {
    crc32(&payload[..payload.len().saturating_sub(checksum::TRAILER_LEN)])
}

/// Decoded shard contents: `strips[target][i]` holds the row words of
/// block `block_start + i`, plus the exact universes of the shard's
/// attribute range.
struct ShardPayload {
    strips: Vec<Vec<Vec<u64>>>,
    universes: Vec<ValueSet>,
}

/// Reads and fully validates one shard file against its manifest entry.
fn load_shard(dir: &Path, manifest: &Manifest, entry: &ShardEntry) -> Result<ShardPayload, StoreError> {
    let path = dir.join(shard_name(manifest.generation, entry.id));
    let raw = std::fs::read(&path)?;
    if raw.len() as u64 != entry.byte_len {
        return Err(mismatch(format!(
            "shard {} is {} bytes but the manifest committed {}",
            entry.id,
            raw.len(),
            entry.byte_len
        )));
    }
    // The manifest digest is a true content hash (payload minus trailer):
    // it catches a structurally-valid shard copied in from another store
    // as well as plain corruption, independently of the file's own trailer.
    let actual = shard_digest(&raw);
    if actual != entry.digest {
        return Err(StoreError::ShardCorrupt { shard: entry.id, expected: entry.digest, actual });
    }
    check_magic(&raw, SHARD_MAGIC, "store shard")?;
    let mut buf = checksum::verify_and_strip(Bytes::from(raw)).map_err(|e| match e {
        BinIoError::Checksum { stored, computed, .. } => {
            StoreError::ShardCorrupt { shard: entry.id, expected: stored, actual: computed }
        }
        other => StoreError::Bin(other),
    })?;
    buf.advance(SHARD_MAGIC.len());
    let generation = get_varint(&mut buf)?;
    let id = get_varint(&mut buf)? as usize;
    let block_start = get_varint(&mut buf)? as usize;
    let block_count = get_varint(&mut buf)? as usize;
    if buf.remaining() < 8 {
        return Err(corrupt("truncated shard fingerprint").into());
    }
    let fingerprint = buf.get_u64_le();
    if generation != manifest.generation
        || id != entry.id
        || block_start != entry.block_start
        || block_count != entry.block_count
        || fingerprint != manifest.fingerprint
    {
        return Err(mismatch(format!(
            "shard {} header disagrees with the manifest entry",
            entry.id
        )));
    }
    let m = manifest.config.m as usize;
    let mut strips = Vec::with_capacity(manifest.num_targets());
    for _ in 0..manifest.num_targets() {
        let mut blocks = Vec::with_capacity(block_count);
        for _ in 0..block_count {
            if buf.remaining() < m * 8 {
                return Err(corrupt("truncated shard strip words").into());
            }
            let mut words = Vec::with_capacity(m);
            for _ in 0..m {
                words.push(buf.get_u64_le());
            }
            blocks.push(words);
        }
        strips.push(blocks);
    }
    let (attr_lo, attr_hi) = entry.attr_range(manifest.num_attrs);
    let mut universes = Vec::with_capacity((attr_hi - attr_lo) as usize);
    for _ in attr_lo..attr_hi {
        universes.push(get_value_set(&mut buf)?);
    }
    if buf.has_remaining() {
        return Err(corrupt("trailing bytes after shard").into());
    }
    Ok(ShardPayload { strips, universes })
}

/// Byte length of the arena header region before alignment padding:
/// fixed fields, the section table, and the header CRC.
fn arena_header_len(num_targets: usize) -> usize {
    ARENA_FIXED_HEADER + (num_targets + 1) * ARENA_SECTION_ENTRY + 4
}

/// Encodes one shard in the arena (v2) layout. Takes the exact same
/// `strip_words` / `universe` closures as [`encode_shard_with`] — pack and
/// repair stay byte-equal by construction across both formats — but lays
/// the words out row-major per target in 64-byte-aligned sections behind
/// an offset table, so an open can borrow each section as `&[u64]`
/// without decoding.
fn encode_shard_arena_with<FS, FU>(
    manifest: &Manifest,
    entry_id: usize,
    block_start: usize,
    block_count: usize,
    mut strip_words: FS,
    mut universe: FU,
) -> Bytes
where
    FS: FnMut(usize, usize) -> Vec<u64>,
    FU: FnMut(usize, &mut BytesMut),
{
    let m = manifest.config.m as usize;
    let num_targets = manifest.num_targets();
    let matrix_bytes = m * block_count * 8;
    let header_end = arena_header_len(num_targets).next_multiple_of(ARENA_ALIGN);

    // Universes are rendered first so the section table can commit their
    // exact byte length.
    let mut ublob = BytesMut::new();
    let attr_lo = block_start * 64;
    let attr_hi = ((block_start + block_count) * 64).min(manifest.num_attrs);
    for attr in attr_lo..attr_hi {
        universe(attr, &mut ublob);
    }

    let mut sections = Vec::with_capacity(num_targets + 1);
    let mut off = header_end;
    for _ in 0..num_targets {
        sections.push((off as u64, matrix_bytes as u64));
        off += matrix_bytes.next_multiple_of(ARENA_ALIGN);
    }
    sections.push((off as u64, ublob.len() as u64));

    let mut buf = BytesMut::with_capacity(off + ublob.len() + checksum::TRAILER_LEN);
    buf.put_slice(SHARD_MAGIC_V2);
    buf.put_u64_le(manifest.generation);
    buf.put_u32_le(entry_id as u32);
    buf.put_u32_le(block_start as u32);
    buf.put_u32_le(block_count as u32);
    buf.put_u32_le(num_targets as u32);
    buf.put_u64_le(manifest.fingerprint);
    buf.put_u32_le(manifest.config.m);
    buf.put_u32_le(sections.len() as u32);
    for &(o, l) in &sections {
        buf.put_u64_le(o);
        buf.put_u64_le(l);
    }
    let header_crc = crc32(&buf);
    buf.put_u32_le(header_crc);
    buf.resize(header_end, 0);

    for target in 0..num_targets {
        let strips: Vec<Vec<u64>> = (block_start..block_start + block_count)
            .map(|block| {
                let words = strip_words(target, block);
                debug_assert_eq!(words.len(), m, "one lane word per matrix row");
                words
            })
            .collect();
        // Transpose the column strips into the row-major section the
        // search kernels sweep: word (row, block) at row·width + block.
        for row in 0..m {
            for s in &strips {
                buf.put_u64_le(s[row]);
            }
        }
        buf.resize(buf.len().next_multiple_of(ARENA_ALIGN), 0);
    }
    debug_assert_eq!(buf.len(), off, "sections laid out exactly as the table commits");
    buf.extend_from_slice(&ublob);
    checksum::append_trailer(&mut buf);
    buf.freeze()
}

/// Parsed and bounds-checked arena shard header.
struct ArenaHeader {
    generation: u64,
    id: usize,
    block_start: usize,
    block_count: usize,
    num_targets: usize,
    fingerprint: u64,
    m: u32,
    /// `(byte offset, byte length)` per section: one row-major matrix per
    /// target, then the value-universe blob.
    sections: Vec<(usize, usize)>,
}

/// Parses the arena header from the first bytes of a shard file and
/// validates it self-consistently: magic, header CRC, section alignment
/// and bounds against `file_len`. This is everything an arena open
/// checks — the matrix words themselves are never touched.
fn parse_arena_header(raw: &[u8], file_len: u64) -> Result<ArenaHeader, StoreError> {
    if raw.len() < ARENA_FIXED_HEADER + 4 {
        return Err(corrupt("truncated arena shard header").into());
    }
    if &raw[..8] != SHARD_MAGIC_V2 {
        return Err(corrupt("bad arena shard magic").into());
    }
    let u32_at = |o: usize| u32::from_le_bytes(raw[o..o + 4].try_into().expect("4 bytes"));
    let u64_at = |o: usize| u64::from_le_bytes(raw[o..o + 8].try_into().expect("8 bytes"));
    let generation = u64_at(8);
    let id = u32_at(16) as usize;
    let block_start = u32_at(20) as usize;
    let block_count = u32_at(24) as usize;
    let num_targets = u32_at(28) as usize;
    let fingerprint = u64_at(32);
    let m = u32_at(40);
    let section_count = u32_at(44) as usize;
    if num_targets == 0 || section_count != num_targets + 1 || section_count > 1 << 20 {
        return Err(corrupt("arena section count disagrees with target count").into());
    }
    let table_end = ARENA_FIXED_HEADER + section_count * ARENA_SECTION_ENTRY;
    if raw.len() < table_end + 4 {
        return Err(corrupt("truncated arena section table").into());
    }
    let stored = u32_at(table_end);
    let computed = crc32(&raw[..table_end]);
    if stored != computed {
        // Carries the offset of the failing check so `tind verify` can
        // report exactly where the header went bad.
        return Err(BinIoError::Checksum { stored, computed, offset: table_end as u64 }.into());
    }
    let payload_end = (file_len as usize).saturating_sub(checksum::TRAILER_LEN);
    let matrix_bytes = (m as usize)
        .checked_mul(block_count)
        .and_then(|w| w.checked_mul(8))
        .ok_or_else(|| StoreError::from(corrupt("arena matrix section overflows")))?;
    let mut sections = Vec::with_capacity(section_count);
    let mut prev_end = table_end + 4;
    for s in 0..section_count {
        let off = u64_at(ARENA_FIXED_HEADER + s * ARENA_SECTION_ENTRY) as usize;
        let len = u64_at(ARENA_FIXED_HEADER + s * ARENA_SECTION_ENTRY + 8) as usize;
        if off % ARENA_ALIGN != 0 {
            return Err(mismatch(format!(
                "arena section {s} at byte offset {off} is not {ARENA_ALIGN}-byte aligned"
            )));
        }
        if off < prev_end || off.checked_add(len).map_or(true, |end| end > payload_end) {
            return Err(corrupt(format!(
                "arena section {s} (offset {off}, {len} bytes) overruns the file"
            ))
            .into());
        }
        if s < num_targets && len != matrix_bytes {
            return Err(corrupt(format!(
                "arena matrix section {s} is {len} bytes but m×blocks needs {matrix_bytes}"
            ))
            .into());
        }
        prev_end = off + len;
        sections.push((off, len));
    }
    Ok(ArenaHeader {
        generation,
        id,
        block_start,
        block_count,
        num_targets,
        fingerprint,
        m,
        sections,
    })
}

/// Rejects an arena header whose identity fields disagree with the
/// manifest entry the shard was opened under.
fn check_arena_binding(
    h: &ArenaHeader,
    manifest: &Manifest,
    entry: &ShardEntry,
) -> Result<(), StoreError> {
    if h.generation != manifest.generation
        || h.id != entry.id
        || h.block_start != entry.block_start
        || h.block_count != entry.block_count
        || h.fingerprint != manifest.fingerprint
        || h.num_targets != manifest.num_targets()
        || h.m != manifest.config.m
    {
        return Err(mismatch(format!(
            "shard {} arena header disagrees with the manifest entry",
            entry.id
        )));
    }
    Ok(())
}

/// Decodes the value-universe blob of an arena shard.
fn arena_universes(
    blob: &[u8],
    manifest: &Manifest,
    entry: &ShardEntry,
) -> Result<Vec<ValueSet>, StoreError> {
    let (attr_lo, attr_hi) = entry.attr_range(manifest.num_attrs);
    let mut buf = Bytes::copy_from_slice(blob);
    let mut universes = Vec::with_capacity((attr_hi - attr_lo) as usize);
    for _ in attr_lo..attr_hi {
        universes.push(get_value_set(&mut buf)?);
    }
    if buf.has_remaining() {
        return Err(corrupt("trailing bytes after arena universes").into());
    }
    Ok(universes)
}

/// One loaded shard, normalized to per-target word regions: `targets[t]`
/// holds the shard's `m × block_count` row-major words, regardless of
/// on-disk format or backing.
struct ShardRegions {
    targets: Vec<WordRegion>,
    universes: Vec<ValueSet>,
}

/// Converts a fully-decoded legacy payload into row-major heap regions.
fn legacy_regions(payload: ShardPayload, m: usize, block_count: usize) -> ShardRegions {
    let targets = payload
        .strips
        .into_iter()
        .map(|blocks| {
            debug_assert_eq!(blocks.len(), block_count);
            let mut words = vec![0u64; m * block_count];
            for (i, strip) in blocks.iter().enumerate() {
                for (row, &w) in strip.iter().enumerate() {
                    words[row * block_count + i] = w;
                }
            }
            WordRegion::Heap(Arc::new(words))
        })
        .collect();
    ShardRegions { targets, universes: payload.universes }
}

/// Loads an arena shard onto the heap: full read, manifest-digest and
/// trailer verification, then a word-by-word copy out of the sections.
/// This is the deep path — `verify_store` uses it, and it doubles as the
/// slow baseline the cold-start bench compares mapped opens against.
fn arena_load_heap(
    dir: &Path,
    manifest: &Manifest,
    entry: &ShardEntry,
) -> Result<ShardRegions, StoreError> {
    let path = dir.join(shard_name(manifest.generation, entry.id));
    let raw = std::fs::read(&path)?;
    if raw.len() as u64 != entry.byte_len {
        return Err(mismatch(format!(
            "shard {} is {} bytes but the manifest committed {}",
            entry.id,
            raw.len(),
            entry.byte_len
        )));
    }
    let actual = shard_digest(&raw);
    if actual != entry.digest {
        return Err(StoreError::ShardCorrupt { shard: entry.id, expected: entry.digest, actual });
    }
    if raw.len() < checksum::TRAILER_LEN {
        return Err(corrupt("arena shard shorter than its trailer").into());
    }
    // The digest excludes the trailer, so check the file's own integrity
    // trailer too — a rotted trailer is corruption even when the payload
    // is intact.
    let split = raw.len() - checksum::TRAILER_LEN;
    let stored = u32::from_le_bytes(raw[split..].try_into().expect("4-byte trailer"));
    let computed = crc32(&raw[..split]);
    if stored != computed {
        return Err(BinIoError::Checksum { stored, computed, offset: split as u64 }.into());
    }
    let h = parse_arena_header(&raw, raw.len() as u64)?;
    check_arena_binding(&h, manifest, entry)?;
    let targets = h.sections[..h.num_targets]
        .iter()
        .map(|&(off, len)| {
            let mut words = vec![0u64; len / 8];
            for (w, chunk) in words.iter_mut().zip(raw[off..off + len].chunks_exact(8)) {
                *w = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            }
            WordRegion::Heap(Arc::new(words))
        })
        .collect();
    let (uoff, ulen) = h.sections[h.num_targets];
    let universes = arena_universes(&raw[uoff..uoff + ulen], manifest, entry)?;
    Ok(ShardRegions { targets, universes })
}

/// Opens an arena shard zero-copy: maps the file, validates header CRC +
/// bounds + manifest binding, and hands out borrowed word windows. No
/// matrix word is read until a kernel touches its page.
fn arena_load_mmap(
    dir: &Path,
    manifest: &Manifest,
    entry: &ShardEntry,
) -> Result<ShardRegions, StoreError> {
    let path = dir.join(shard_name(manifest.generation, entry.id));
    let file = Arc::new(MmapFile::map(&path)?);
    if file.len() as u64 != entry.byte_len {
        return Err(mismatch(format!(
            "shard {} is {} bytes but the manifest committed {}",
            entry.id,
            file.len(),
            entry.byte_len
        )));
    }
    let bytes = file.bytes();
    let h = parse_arena_header(bytes, file.len() as u64)?;
    check_arena_binding(&h, manifest, entry)?;
    let targets = h.sections[..h.num_targets]
        .iter()
        .map(|&(off, len)| {
            file.words_at(off, len / 8)
                .map(|_| WordRegion::Mapped {
                    file: Arc::clone(&file),
                    byte_off: off,
                    len_words: len / 8,
                })
                .ok_or_else(|| mismatch(format!("arena section at {off} cannot be mapped")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let (uoff, ulen) = h.sections[h.num_targets];
    let universes = arena_universes(&bytes[uoff..uoff + ulen], manifest, entry)?;
    Ok(ShardRegions { targets, universes })
}

/// Opens an arena shard with `pread`-on-demand windows: only the header
/// and universes are read eagerly; each matrix section becomes a
/// [`WindowPool`] slot loaded lazily and evicted under memory pressure.
fn arena_load_windowed(
    dir: &Path,
    manifest: &Manifest,
    entry: &ShardEntry,
    pool: &Arc<WindowPool>,
) -> Result<ShardRegions, StoreError> {
    let path = dir.join(shard_name(manifest.generation, entry.id));
    let file_len = std::fs::metadata(&path)?.len();
    if file_len != entry.byte_len {
        return Err(mismatch(format!(
            "shard {} is {file_len} bytes but the manifest committed {}",
            entry.id, entry.byte_len
        )));
    }
    let file = Arc::new(WindowFile::open(&path)?);
    let hlen = arena_header_len(manifest.num_targets()).min(file_len as usize);
    let mut header = vec![0u8; hlen];
    file.read_exact_at(&mut header, 0)?;
    let h = parse_arena_header(&header, file_len)?;
    check_arena_binding(&h, manifest, entry)?;
    let targets = h.sections[..h.num_targets]
        .iter()
        .map(|&(off, len)| WordRegion::Windowed(pool.slot(Arc::clone(&file), off as u64, len / 8)))
        .collect();
    let (uoff, ulen) = h.sections[h.num_targets];
    let mut ublob = vec![0u8; ulen];
    file.read_exact_at(&mut ublob, uoff as u64)?;
    let universes = arena_universes(&ublob, manifest, entry)?;
    Ok(ShardRegions { targets, universes })
}

/// Sniffs a shard file's on-disk format from its magic bytes.
fn shard_format_of(path: &Path) -> Result<ShardFormat, StoreError> {
    use std::io::Read;
    let mut magic = [0u8; 8];
    std::fs::File::open(path)?.read_exact(&mut magic)?;
    if &magic == SHARD_MAGIC {
        Ok(ShardFormat::Legacy)
    } else if &magic == SHARD_MAGIC_V2 {
        Ok(ShardFormat::Arena)
    } else {
        Err(corrupt("unknown shard magic").into())
    }
}

/// Resolves a requested backing against a shard's on-disk format. Legacy
/// shards always decode to the heap; `Auto` maps arenas where zero-copy
/// word views are sound (little-endian unix) and copies elsewhere.
fn effective_backing(requested: StoreBacking, format: ShardFormat) -> StoreBacking {
    if format == ShardFormat::Legacy || cfg!(target_endian = "big") {
        return StoreBacking::Heap;
    }
    match requested {
        StoreBacking::Auto => {
            if cfg!(unix) {
                StoreBacking::Mmap
            } else {
                StoreBacking::Heap
            }
        }
        other => other,
    }
}

/// Full deep verification of one shard in either format: digest, trailer,
/// structure, universes.
fn deep_check_shard(
    dir: &Path,
    manifest: &Manifest,
    entry: &ShardEntry,
) -> Result<(), StoreError> {
    let path = dir.join(shard_name(manifest.generation, entry.id));
    match shard_format_of(&path)? {
        ShardFormat::Legacy => load_shard(dir, manifest, entry).map(|_| ()),
        ShardFormat::Arena => {
            checksum::stream_verify_file(&path)?;
            arena_load_heap(dir, manifest, entry).map(|_| ())
        }
    }
}

/// Splits `blocks` column blocks into `shards` near-equal contiguous
/// ranges.
fn partition_blocks(blocks: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.clamp(1, blocks);
    let base = blocks / shards;
    let extra = blocks % shards;
    let mut parts = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let count = base + usize::from(i < extra);
        parts.push((start, count));
        start += count;
    }
    parts
}

/// Highest generation any artifact in `dir` claims — used to pick the next
/// generation even when the manifest itself is unreadable.
fn scan_max_generation(dir: &Path) -> u64 {
    let from_manifest = read_manifest(dir).map(|m| m.generation).unwrap_or(0);
    let from_shards = std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter_map(|e| parse_shard_gen(&e.file_name().to_string_lossy()))
                .max()
                .unwrap_or(0)
        })
        .unwrap_or(0);
    from_manifest.max(from_shards)
}

/// Packs `index` into the store directory `dir` as a new generation.
///
/// Every shard and the manifest are published atomically; the manifest
/// rename is the commit point. A crash (or injected kill) at any step
/// leaves either the previous generation fully intact or the new one
/// fully committed — never a mix — and [`open_store`] sweeps whatever
/// temps or stale shards the crash stranded.
pub fn pack_store(
    index: &TindIndex,
    dir: &Path,
    options: &PackOptions,
) -> Result<PackReport, StoreError> {
    let _span = tind_obs::span("core.store.pack");
    if index.shard_mask().is_some() {
        return Err(mismatch(
            "refusing to pack a degraded index (quarantined shards would be persisted as zeros); \
             repair its store first",
        ));
    }
    let num_attrs = index.dataset().len();
    if num_attrs == 0 {
        return Err(mismatch("cannot pack an index over an empty dataset"));
    }
    std::fs::create_dir_all(dir)?;
    let generation = scan_max_generation(dir) + 1;
    let blocks = num_attrs.div_ceil(64);
    let shards = if options.shards == 0 { blocks.min(8) } else { options.shards };
    let parts = partition_blocks(blocks, shards);
    let fingerprint = dataset_fingerprint(index.dataset());

    let mut manifest = Manifest {
        generation,
        fingerprint,
        config: index.config().clone(),
        num_attrs,
        slices: index.time_slices().iter().map(|s| (s.interval, s.expanded)).collect(),
        has_m_r: index.m_r().is_some(),
        shards: Vec::with_capacity(parts.len()),
    };

    let matrices: Vec<&BloomMatrix> = std::iter::once(index.m_t())
        .chain(index.time_slices().iter().map(|s| &s.matrix))
        .chain(index.m_r())
        .collect();

    let mut budget = OpBudget::new(options.kill_after_ops);
    let mut bytes_written = 0u64;
    for (id, &(block_start, block_count)) in parts.iter().enumerate() {
        let strips = |target: usize, block: usize| -> Vec<u64> {
            matrices[target].extract_strip(block).words().to_vec()
        };
        let universes =
            |attr: usize, buf: &mut BytesMut| put_value_set(buf, index.universe(attr as AttrId));
        let payload = match options.format {
            ShardFormat::Legacy => {
                encode_shard_with(&manifest, id, block_start, block_count, strips, universes)
            }
            ShardFormat::Arena => {
                encode_shard_arena_with(&manifest, id, block_start, block_count, strips, universes)
            }
        };
        let digest = shard_digest(&payload);
        write_atomic(&dir.join(shard_name(generation, id)), &payload, &mut budget)?;
        bytes_written += payload.len() as u64;
        manifest.shards.push(ShardEntry {
            id,
            block_start,
            block_count,
            byte_len: payload.len() as u64,
            digest,
        });
    }

    let manifest_bytes = encode_manifest(&manifest);
    bytes_written += manifest_bytes.len() as u64;
    write_atomic(&dir.join(MANIFEST_NAME), &manifest_bytes, &mut budget)?;
    // Make the renames themselves durable before declaring success.
    step(&mut budget)?;
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    let (swept_temps, swept_stale) = sweep(dir, generation)?;
    Ok(PackReport {
        generation,
        shards: parts.len(),
        bytes_written,
        swept_temps,
        swept_stale,
    })
}

/// Opens the store at `dir`, binding it to `dataset`.
///
/// Recovery runs first: orphan temps and stale-generation shards are
/// swept. Each manifest-committed shard is then loaded and verified
/// independently; a shard that is missing, truncated, bit-rotted, or
/// inconsistent with the manifest is **quarantined** — its attribute range
/// is masked on the returned index (see [`crate::index::ShardMask`]) and
/// reported in the [`LoadReport`] — while every other shard loads
/// normally. With zero quarantined shards the result is byte-identical to
/// the packed index.
pub fn open_store(
    dir: &Path,
    dataset: Arc<Dataset>,
) -> Result<(TindIndex, LoadReport), StoreError> {
    open_store_with(dir, dataset, &OpenOptions::default())
}

/// [`open_store`] with an explicit [`StoreBacking`] and memory budget.
///
/// Arena shards opened `Mmap` or `Windowed` validate only the header CRC,
/// section bounds, and manifest binding — matrix words are borrowed, not
/// decoded, so open time is independent of index size. `Heap` (and every
/// legacy shard) keeps the deep read-and-verify path.
pub fn open_store_with(
    dir: &Path,
    dataset: Arc<Dataset>,
    options: &OpenOptions,
) -> Result<(TindIndex, LoadReport), StoreError> {
    let _span = tind_obs::span("core.store.open");
    let manifest = read_manifest(dir)?;
    if manifest.fingerprint != dataset_fingerprint(&dataset) {
        return Err(mismatch(
            "store fingerprint does not match the dataset (stale or mismatched files)",
        ));
    }
    if manifest.num_attrs != dataset.len() {
        return Err(mismatch("store attribute count does not match the dataset"));
    }
    let (swept_temps, swept_stale) = sweep(dir, manifest.generation)?;

    let num_attrs = manifest.num_attrs;
    let num_targets = manifest.num_targets();
    let (m, k_hashes) = (manifest.config.m, manifest.config.k_hashes);
    let pool = WindowPool::new(options.memory_budget.clone());
    let mut target_segments: Vec<Vec<Segment>> = vec![Vec::new(); num_targets];
    let mut universes = vec![ValueSet::new(); num_attrs];
    let mut quarantined = Vec::new();
    let mut arena_shards = 0usize;
    let mut backing_used = StoreBacking::Heap;

    for entry in &manifest.shards {
        let started = Instant::now();
        let path = dir.join(shard_name(manifest.generation, entry.id));
        let loaded = shard_format_of(&path).and_then(|format| {
            let regions = match (format, effective_backing(options.backing, format)) {
                (ShardFormat::Legacy, _) => load_shard(dir, &manifest, entry)
                    .map(|p| legacy_regions(p, m as usize, entry.block_count))?,
                (ShardFormat::Arena, StoreBacking::Mmap) => {
                    arena_load_mmap(dir, &manifest, entry)?
                }
                (ShardFormat::Arena, StoreBacking::Windowed) => {
                    arena_load_windowed(dir, &manifest, entry, &pool)?
                }
                (ShardFormat::Arena, _) => arena_load_heap(dir, &manifest, entry)?,
            };
            Ok((format, regions))
        });
        match loaded {
            Ok((format, regions)) => {
                if format == ShardFormat::Arena {
                    arena_shards += 1;
                    backing_used = effective_backing(options.backing, format);
                }
                for (target, words) in regions.targets.into_iter().enumerate() {
                    target_segments[target].push(Segment {
                        word_start: entry.block_start,
                        width: entry.block_count,
                        words,
                    });
                }
                let (attr_lo, _) = entry.attr_range(num_attrs);
                for (offset, u) in regions.universes.into_iter().enumerate() {
                    universes[attr_lo as usize + offset] = u;
                }
            }
            Err(error) => {
                let (attr_start, attr_end) = entry.attr_range(num_attrs);
                quarantined.push(ShardFault { shard: entry.id, attr_start, attr_end, error });
                // A quarantined shard's range serves as zeros (masked on
                // the index) so the segment tiling stays complete.
                let zeros =
                    Arc::new(vec![0u64; m as usize * entry.block_count]);
                for segments in &mut target_segments {
                    segments.push(Segment {
                        word_start: entry.block_start,
                        width: entry.block_count,
                        words: WordRegion::Heap(Arc::clone(&zeros)),
                    });
                }
            }
        }
        tind_obs::histogram("store.shard.load_ns")
            .record(started.elapsed().as_nanos() as u64);
    }

    tind_obs::gauge("store.shards.total").set(manifest.shards.len() as f64);
    tind_obs::gauge("store.shards.quarantined").set(quarantined.len() as f64);

    let masked = (!quarantined.is_empty()).then(|| {
        Arc::new(ShardMask::new(
            num_attrs,
            manifest.shards.len(),
            quarantined
                .iter()
                .map(|f| MaskedShard {
                    shard: f.shard,
                    attr_start: f.attr_start,
                    attr_end: f.attr_end,
                })
                .collect(),
        ))
    });

    let mut segments = target_segments.into_iter();
    let mut next_matrix = || {
        BloomMatrix::from_segments(m, num_attrs, k_hashes, segments.next().expect("target"))
    };
    let m_t = next_matrix();
    let time_slices = manifest
        .slices
        .iter()
        .map(|&(interval, expanded)| TimeSlice { interval, expanded, matrix: next_matrix() })
        .collect();
    let m_r = manifest.has_m_r.then(next_matrix);
    let index = TindIndex {
        dataset,
        config: manifest.config.clone(),
        m_t,
        time_slices,
        universes,
        m_r,
        masked,
    };
    let all_arena = arena_shards == manifest.shards.len() && arena_shards > 0;
    let report = LoadReport {
        generation: manifest.generation,
        shards_total: manifest.shards.len(),
        quarantined,
        swept_temps,
        swept_stale,
        format: if all_arena { ShardFormat::Arena } else { ShardFormat::Legacy },
        backing: if arena_shards > 0 { backing_used } else { StoreBacking::Heap },
        window_pool: (arena_shards > 0 && backing_used == StoreBacking::Windowed)
            .then_some(pool),
    };
    Ok((index, report))
}

/// Verifies the store at `dir` without binding it to a dataset: manifest
/// container integrity, then every shard against its committed digest and
/// structure. Read-only — performs no recovery sweep.
pub fn verify_store(dir: &Path) -> Result<VerifyReport, StoreError> {
    let _span = tind_obs::span("core.store.verify");
    let manifest = read_manifest(dir)?;
    let mut faults = Vec::new();
    for entry in &manifest.shards {
        if let Err(error) = deep_check_shard(dir, &manifest, entry) {
            let (attr_start, attr_end) = entry.attr_range(manifest.num_attrs);
            faults.push(ShardFault { shard: entry.id, attr_start, attr_end, error });
        }
    }
    Ok(VerifyReport {
        generation: manifest.generation,
        fingerprint: manifest.fingerprint,
        shards_total: manifest.shards.len(),
        faults,
    })
}

/// Rebuilds every quarantined shard of the store at `dir` from `dataset`
/// and republishes it atomically.
///
/// A rebuilt shard must hash to the digest the manifest committed — the
/// per-lane render is deterministic, so anything else means the dataset or
/// build config drifted and the repair is refused rather than silently
/// rewriting history. The manifest (and generation) never changes: a crash
/// mid-repair leaves the store exactly as recoverable as before.
pub fn repair_store(
    dir: &Path,
    dataset: &Dataset,
    options: &RepairOptions,
) -> Result<RepairReport, StoreError> {
    let _span = tind_obs::span("core.store.repair");
    let manifest = read_manifest(dir)?;
    if manifest.fingerprint != dataset_fingerprint(dataset) {
        return Err(mismatch(
            "store fingerprint does not match the dataset (stale or mismatched files)",
        ));
    }
    if manifest.num_attrs != dataset.len() {
        return Err(mismatch("store attribute count does not match the dataset"));
    }
    sweep(dir, manifest.generation)?;
    let timeline = dataset.timeline();
    let sizing = manifest.has_m_r.then(|| {
        TindParams::weighted(
            manifest.config.slices.sizing_eps,
            0,
            manifest.config.slices.sizing_weights.clone(),
        )
    });
    let (m, k_hashes) = (manifest.config.m, manifest.config.k_hashes);
    let num_slices = manifest.slices.len();
    let mut budget = OpBudget::new(options.kill_after_ops);
    let mut rebuilt = Vec::new();
    let mut intact = 0;
    for entry in &manifest.shards {
        if deep_check_shard(dir, &manifest, entry).is_ok() {
            intact += 1;
            continue;
        }
        // Re-render the shard with the exact per-lane fill of the parallel
        // builder: M_T from value universes, each slice from its persisted
        // expanded window, M_R from required values under the manifest's
        // sizing parameters. The render is format-independent; the digest
        // committed at pack time picks which encoding reproduces the file.
        let attempt = |format: ShardFormat| -> Bytes {
            let mut strip = BloomColumnStrip::new(m, k_hashes);
            let strip_fn = |target: usize, block: usize| -> Vec<u64> {
                strip.clear();
                let lo = block * 64;
                let hi = (lo + 64).min(manifest.num_attrs);
                for id in lo..hi {
                    let hist = dataset.attribute(id as AttrId);
                    let lane = id - lo;
                    if target == 0 {
                        strip.insert_lane(lane, &hist.value_universe());
                    } else if target <= num_slices {
                        let values = hist.values_in(manifest.slices[target - 1].1);
                        if !values.is_empty() {
                            strip.insert_lane(lane, &values);
                        }
                    } else {
                        let req =
                            required_values(hist, sizing.as_ref().expect("m_r sizing"), timeline);
                        if !req.is_empty() {
                            strip.insert_lane(lane, &req);
                        }
                    }
                }
                strip.words().to_vec()
            };
            let universe_fn = |attr: usize, buf: &mut BytesMut| {
                put_value_set(buf, &dataset.attribute(attr as AttrId).value_universe())
            };
            match format {
                ShardFormat::Legacy => encode_shard_with(
                    &manifest,
                    entry.id,
                    entry.block_start,
                    entry.block_count,
                    strip_fn,
                    universe_fn,
                ),
                ShardFormat::Arena => encode_shard_arena_with(
                    &manifest,
                    entry.id,
                    entry.block_start,
                    entry.block_count,
                    strip_fn,
                    universe_fn,
                ),
            }
        };
        let matches_entry =
            |p: &Bytes| shard_digest(p) == entry.digest && p.len() as u64 == entry.byte_len;
        let mut payload = attempt(ShardFormat::Legacy);
        if !matches_entry(&payload) {
            payload = attempt(ShardFormat::Arena);
        }
        if !matches_entry(&payload) {
            let digest = shard_digest(&payload);
            return Err(mismatch(format!(
                "rebuilt shard {} hashes to {digest:#010x} but the manifest committed \
                 {:#010x} — dataset or config drift; re-pack instead of repairing",
                entry.id, entry.digest
            )));
        }
        write_atomic(&dir.join(shard_name(manifest.generation, entry.id)), &payload, &mut budget)?;
        rebuilt.push(entry.id);
    }
    step(&mut budget)?;
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(RepairReport { generation: manifest.generation, rebuilt, intact })
}

/// Converts the store at `dir` to `format` in place.
///
/// The conversion is a full open (heap-backed, deep-verified) followed by
/// a pack of the new generation through the same atomic-rename commit
/// point: the old generation stays fully servable until the new manifest
/// lands, and a crash at any step leaves one generation or the other
/// intact. Refuses a degraded store — repair it first, since packing
/// would persist the quarantined ranges as zeros.
pub fn migrate_store(
    dir: &Path,
    dataset: Arc<Dataset>,
    format: ShardFormat,
    options: &PackOptions,
) -> Result<PackReport, StoreError> {
    let _span = tind_obs::span("core.store.migrate");
    let (index, report) = open_store_with(
        dir,
        dataset,
        &OpenOptions { backing: StoreBacking::Heap, memory_budget: None },
    )?;
    if !report.is_clean() {
        return Err(mismatch(
            "refusing to migrate a degraded store (quarantined shards would be persisted as \
             zeros); repair it first",
        ));
    }
    let shards = if options.shards == 0 { report.shards_total } else { options.shards };
    pack_store(
        &index,
        dir,
        &PackOptions { shards, format, kill_after_ops: options.kill_after_ops },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use tind_model::{DatasetBuilder, Timeline};

    fn dataset() -> Arc<Dataset> {
        let mut b = DatasetBuilder::new(Timeline::new(80));
        b.add_attribute("q", &[(0, vec!["a", "b"]), (40, vec!["a", "b", "c"])], 79);
        b.add_attribute("big", &[(0, vec!["a", "b", "c", "d"])], 79);
        b.add_attribute("other", &[(5, vec!["x", "y"])], 60);
        Arc::new(b.build())
    }

    fn store_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("tind-core-store-tests").join(name);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn pack_open_roundtrip_is_byte_identical() {
        let d = dataset();
        let index =
            TindIndex::build(d.clone(), IndexConfig { m: 128, ..IndexConfig::default() });
        let dir = store_dir("roundtrip");
        let report = pack_store(&index, &dir, &PackOptions::default()).expect("pack");
        assert_eq!(report.generation, 1);
        let (loaded, load) = open_store(&dir, d.clone()).expect("open");
        assert!(load.is_clean());
        assert!(loaded.shard_mask().is_none());
        assert_eq!(
            crate::persist::encode_index(&loaded),
            crate::persist::encode_index(&index),
            "store round-trip must be byte-identical"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_digests_are_content_hashes_not_the_crc_residue() {
        // CRC-32 of any message with its own CRC appended is the constant
        // residue 0x2144df1c; if digests were taken over the whole file
        // every valid shard would share it and a swapped-in shard from
        // another store would pass. Pin that digests vary with content and
        // that a foreign shard of identical geometry is rejected by the
        // digest alone.
        let d = dataset();
        let index =
            TindIndex::build(d.clone(), IndexConfig { m: 128, ..IndexConfig::default() });
        let dir = store_dir("digest-content");
        pack_store(&index, &dir, &PackOptions::default()).expect("pack");
        let manifest = read_manifest(&dir).expect("manifest");
        for entry in &manifest.shards {
            assert_ne!(entry.digest, 0x2144df1c, "digest must not be the CRC residue");
        }

        // Doctor the shard: flip a Bloom-strip byte, then *re-sign* the
        // file's own trailer. The result is the same length and fully
        // self-consistent — only a real content digest can reject it.
        let shard_path = dir.join(shard_name(1, 0));
        let mut raw = std::fs::read(&shard_path).expect("read shard");
        let body = raw.len() - checksum::TRAILER_LEN;
        raw[body / 2] ^= 0xff;
        let resigned = crc32(&raw[..body]).to_le_bytes();
        raw[body..].copy_from_slice(&resigned);
        std::fs::write(&shard_path, &raw).expect("write doctored shard");
        let report = verify_store(&dir).expect("verify runs");
        assert_eq!(report.faults.len(), 1, "doctored shard must fail verification");
        assert!(
            matches!(report.faults[0].error, StoreError::ShardCorrupt { .. }),
            "digest mismatch, not a structural error: {}",
            report.faults[0].error
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_shard_is_quarantined_and_masked() {
        let d = dataset();
        let index =
            TindIndex::build(d.clone(), IndexConfig { m: 128, ..IndexConfig::default() });
        let dir = store_dir("missing-shard");
        // 3 attrs → 1 block → 1 shard; delete it.
        pack_store(&index, &dir, &PackOptions::default()).expect("pack");
        std::fs::remove_file(dir.join(shard_name(1, 0))).expect("remove shard");
        let (loaded, load) = open_store(&dir, d.clone()).expect("open degraded");
        assert_eq!(load.quarantined.len(), 1);
        assert_eq!(load.quarantined[0].shard, 0);
        let mask = loaded.shard_mask().expect("mask present");
        assert_eq!(mask.masked_attrs(), 3);
        assert_eq!(mask.live_fraction(), 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_shard_reports_expected_and_actual_crc() {
        let d = dataset();
        let index =
            TindIndex::build(d.clone(), IndexConfig { m: 128, ..IndexConfig::default() });
        let dir = store_dir("corrupt-shard");
        pack_store(&index, &dir, &PackOptions::default()).expect("pack");
        let shard_path = dir.join(shard_name(1, 0));
        crate::fault::flip_file_byte(&shard_path, 40).expect("flip");
        let (_, load) = open_store(&dir, d.clone()).expect("open degraded");
        assert_eq!(load.quarantined.len(), 1);
        match &load.quarantined[0].error {
            StoreError::ShardCorrupt { shard, expected, actual } => {
                assert_eq!(*shard, 0);
                assert_ne!(expected, actual);
            }
            other => panic!("expected ShardCorrupt, got {other}"),
        }
        // Repair restores byte-identity.
        let repair = repair_store(&dir, &d, &RepairOptions::default()).expect("repair");
        assert_eq!(repair.rebuilt, vec![0]);
        let (loaded, load) = open_store(&dir, d.clone()).expect("open clean");
        assert!(load.is_clean());
        assert_eq!(
            crate::persist::encode_index(&loaded),
            crate::persist::encode_index(&index)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn second_pack_bumps_generation_and_sweeps_stale() {
        let d = dataset();
        let index =
            TindIndex::build(d.clone(), IndexConfig { m: 128, ..IndexConfig::default() });
        let dir = store_dir("generations");
        pack_store(&index, &dir, &PackOptions::default()).expect("pack 1");
        let report = pack_store(&index, &dir, &PackOptions::default()).expect("pack 2");
        assert_eq!(report.generation, 2);
        assert!(report.swept_stale >= 1, "generation-1 shards swept");
        let (_, load) = open_store(&dir, d.clone()).expect("open");
        assert_eq!(load.generation, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn killed_pack_leaves_previous_generation_intact() {
        let d = dataset();
        let index =
            TindIndex::build(d.clone(), IndexConfig { m: 128, ..IndexConfig::default() });
        let dir = store_dir("killed-pack");
        pack_store(&index, &dir, &PackOptions::default()).expect("pack 1");
        let err = pack_store(
            &index,
            &dir,
            &PackOptions { kill_after_ops: Some(1), ..PackOptions::default() },
        )
        .expect_err("killed");
        assert!(matches!(err, StoreError::Killed { .. }));
        // Generation 1 still opens cleanly; the stranded temp is swept.
        let (loaded, load) = open_store(&dir, d.clone()).expect("open");
        assert_eq!(load.generation, 1);
        assert!(load.is_clean());
        assert!(load.swept_temps >= 1, "orphan temp swept");
        assert_eq!(
            crate::persist::encode_index(&loaded),
            crate::persist::encode_index(&index)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_reports_faults_without_sweeping() {
        let d = dataset();
        let index =
            TindIndex::build(d.clone(), IndexConfig { m: 128, ..IndexConfig::default() });
        let dir = store_dir("verify");
        pack_store(&index, &dir, &PackOptions::default()).expect("pack");
        let clean = verify_store(&dir).expect("verify");
        assert!(clean.faults.is_empty());
        assert_eq!(clean.generation, 1);
        crate::fault::flip_file_byte(&dir.join(shard_name(1, 0)), 12).expect("flip");
        let report = verify_store(&dir).expect("verify");
        assert_eq!(report.faults.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_name_parses_back() {
        assert_eq!(parse_shard_gen(&shard_name(12, 3)), Some(12));
        assert_eq!(parse_shard_gen("index.manifest"), None);
        assert_eq!(parse_shard_gen("g12-s3.shard.tmp"), None);
        assert_eq!(parse_shard_gen("gX-s3.shard"), None);
    }

    #[test]
    fn partition_covers_all_blocks_contiguously() {
        for blocks in 1..40 {
            for shards in 1..10 {
                let parts = partition_blocks(blocks, shards);
                assert_eq!(parts.len(), shards.min(blocks));
                let mut next = 0;
                for &(start, count) in &parts {
                    assert_eq!(start, next);
                    assert!(count >= 1);
                    next += count;
                }
                assert_eq!(next, blocks);
            }
        }
    }

    fn arena_pack(index: &TindIndex, dir: &Path) -> PackReport {
        pack_store(
            index,
            dir,
            &PackOptions { format: ShardFormat::Arena, ..PackOptions::default() },
        )
        .expect("arena pack")
    }

    #[test]
    fn arena_pack_open_is_byte_identical_across_backings() {
        let d = dataset();
        let index =
            TindIndex::build(d.clone(), IndexConfig { m: 128, ..IndexConfig::default() });
        let dir = store_dir("arena-roundtrip");
        arena_pack(&index, &dir);
        let golden = crate::persist::encode_index(&index);
        for backing in [
            StoreBacking::Auto,
            StoreBacking::Heap,
            StoreBacking::Mmap,
            StoreBacking::Windowed,
        ] {
            let (loaded, load) = open_store_with(
                &dir,
                d.clone(),
                &OpenOptions { backing, memory_budget: None },
            )
            .expect("open");
            assert!(load.is_clean(), "{backing}: clean load");
            assert_eq!(load.format, ShardFormat::Arena);
            assert_eq!(
                crate::persist::encode_index(&loaded),
                golden,
                "{backing}: arena round-trip must be byte-identical"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn migrate_converts_between_formats_preserving_bytes() {
        let d = dataset();
        let index =
            TindIndex::build(d.clone(), IndexConfig { m: 128, ..IndexConfig::default() });
        let dir = store_dir("migrate");
        pack_store(&index, &dir, &PackOptions::default()).expect("legacy pack");
        let golden = crate::persist::encode_index(&index);

        let report = migrate_store(&dir, d.clone(), ShardFormat::Arena, &PackOptions::default())
            .expect("migrate to arena");
        assert_eq!(report.generation, 2);
        let (loaded, load) = open_store(&dir, d.clone()).expect("open arena");
        assert!(load.is_clean());
        assert_eq!(load.format, ShardFormat::Arena);
        assert_eq!(crate::persist::encode_index(&loaded), golden);

        let report = migrate_store(&dir, d.clone(), ShardFormat::Legacy, &PackOptions::default())
            .expect("migrate back");
        assert_eq!(report.generation, 3);
        let (loaded, load) = open_store(&dir, d.clone()).expect("open legacy");
        assert!(load.is_clean());
        assert_eq!(load.format, ShardFormat::Legacy);
        assert_eq!(crate::persist::encode_index(&loaded), golden);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn arena_header_corruption_quarantines_with_checksum_offset() {
        let d = dataset();
        let index =
            TindIndex::build(d.clone(), IndexConfig { m: 128, ..IndexConfig::default() });
        let dir = store_dir("arena-head-corrupt");
        arena_pack(&index, &dir);
        // Flip a generation byte: the header CRC must catch it at open,
        // before any word is trusted.
        crate::fault::flip_file_byte(&dir.join(shard_name(1, 0)), 9).expect("flip");
        let (loaded, load) = open_store(&dir, d.clone()).expect("open degraded");
        assert_eq!(load.quarantined.len(), 1);
        match &load.quarantined[0].error {
            StoreError::Bin(BinIoError::Checksum { offset, .. }) => {
                assert!(*offset > 0, "failing offset reported");
            }
            other => panic!("expected header checksum error, got {other}"),
        }
        assert!(loaded.shard_mask().is_some());
        // Repair re-renders the arena shard byte-identically.
        let repair = repair_store(&dir, &d, &RepairOptions::default()).expect("repair");
        assert_eq!(repair.rebuilt, vec![0]);
        let (loaded, load) = open_store(&dir, d.clone()).expect("open clean");
        assert!(load.is_clean());
        assert_eq!(
            crate::persist::encode_index(&loaded),
            crate::persist::encode_index(&index)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn misaligned_arena_section_is_refused() {
        let d = dataset();
        let index =
            TindIndex::build(d.clone(), IndexConfig { m: 128, ..IndexConfig::default() });
        let dir = store_dir("arena-misaligned");
        arena_pack(&index, &dir);
        // Doctor section 0's offset to a non-64-multiple and re-sign the
        // header CRC so only the alignment check can refuse it.
        let path = dir.join(shard_name(1, 0));
        let mut raw = std::fs::read(&path).expect("read");
        let off = u64::from_le_bytes(raw[48..56].try_into().expect("8"));
        raw[48..56].copy_from_slice(&(off + 8).to_le_bytes());
        let section_count = u32::from_le_bytes(raw[44..48].try_into().expect("4")) as usize;
        let table_end = ARENA_FIXED_HEADER + section_count * ARENA_SECTION_ENTRY;
        let crc = crc32(&raw[..table_end]).to_le_bytes();
        raw[table_end..table_end + 4].copy_from_slice(&crc);
        std::fs::write(&path, &raw).expect("write");
        let (_, load) = open_store_with(
            &dir,
            d.clone(),
            &OpenOptions { backing: StoreBacking::Mmap, memory_budget: None },
        )
        .expect("open degraded");
        assert_eq!(load.quarantined.len(), 1);
        assert!(
            matches!(load.quarantined[0].error, StoreError::Mismatch(_)),
            "alignment refusal is typed: {}",
            load.quarantined[0].error
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_arena_shard_is_refused_at_open() {
        let d = dataset();
        let index =
            TindIndex::build(d.clone(), IndexConfig { m: 128, ..IndexConfig::default() });
        let dir = store_dir("arena-truncated");
        arena_pack(&index, &dir);
        let path = dir.join(shard_name(1, 0));
        let raw = std::fs::read(&path).expect("read");
        std::fs::write(&path, &raw[..raw.len() / 2]).expect("truncate");
        for backing in [StoreBacking::Mmap, StoreBacking::Windowed, StoreBacking::Heap] {
            let (_, load) = open_store_with(
                &dir,
                d.clone(),
                &OpenOptions { backing, memory_budget: None },
            )
            .expect("open degraded");
            assert_eq!(load.quarantined.len(), 1, "{backing}: truncated shard quarantined");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn windowed_open_respects_memory_budget() {
        let d = dataset();
        let index =
            TindIndex::build(d.clone(), IndexConfig { m: 128, ..IndexConfig::default() });
        let dir = store_dir("arena-windowed-budget");
        arena_pack(&index, &dir);
        // Budget far below the index's word footprint: windows must load,
        // evict, and reload rather than fail.
        let budget = MemoryBudget::new(128 * 8 + 1);
        let (loaded, load) = open_store_with(
            &dir,
            d.clone(),
            &OpenOptions {
                backing: StoreBacking::Windowed,
                memory_budget: Some(budget.clone()),
            },
        )
        .expect("open windowed");
        assert!(load.is_clean());
        assert_eq!(
            crate::persist::encode_index(&loaded),
            crate::persist::encode_index(&index),
            "every window readable under a tiny budget"
        );
        let pool = load.window_pool.expect("windowed pool");
        assert!(pool.stats().loads > 0, "windows were demand-loaded");
        std::fs::remove_dir_all(&dir).ok();
    }
}
