//! Required values `R_{ε,w}(Q)` (Section 4.2.1).
//!
//! A value whose summed occurrence weight in `Q` exceeds ε must appear in
//! any valid right-hand side at least once: were it missing from `A[T]`
//! entirely, every timestamp where `Q` carries it would be violated — more
//! than the budget allows, for any δ. Querying the required values against
//! the full-history matrix `M_T` is therefore a sound first pruning step,
//! independent of δ.

use tind_model::hash::FastMap;
use tind_model::{AttributeHistory, Timeline, ValueId, ValueSet};

use crate::params::{TindParams, EPS_TOLERANCE};

/// Summed occurrence weight `w_v(Q)` for every value of `Q` (Equation 6).
pub fn occurrence_weights(
    q: &AttributeHistory,
    params: &TindParams,
    timeline: Timeline,
) -> FastMap<ValueId, f64> {
    let mut weights: FastMap<ValueId, f64> = FastMap::default();
    let _ = timeline; // validity intervals are already clipped to the timeline
    for (i, version) in q.versions().iter().enumerate() {
        let validity = q.version_validity(i);
        let w = params.weights.interval_weight(validity);
        for &v in &version.values {
            *weights.entry(v).or_insert(0.0) += w;
        }
    }
    weights
}

/// The required values `R_{ε,w}(Q) = {v | w_v(Q) > ε}` (Equation 7), as a
/// canonical sorted set.
///
/// The comparison uses a small tolerance *above* ε so that float noise can
/// never promote a borderline value into the required set (which could
/// wrongly prune a valid candidate); the cost of leaving a borderline value
/// out is only slightly weaker pruning, never a false negative.
pub fn required_values(
    q: &AttributeHistory,
    params: &TindParams,
    timeline: Timeline,
) -> ValueSet {
    let weights = occurrence_weights(q, params, timeline);
    let mut required: ValueSet = weights
        .into_iter()
        .filter(|&(_, w)| w > params.eps + EPS_TOLERANCE)
        .map(|(v, _)| v)
        .collect();
    required.sort_unstable();
    required
}

#[cfg(test)]
mod tests {
    use super::*;
    use tind_model::{DatasetBuilder, WeightFn};

    fn history() -> (tind_model::Dataset, Timeline) {
        let tl = Timeline::new(20);
        let mut b = DatasetBuilder::new(tl);
        // "stable" present whole life [0,19] (weight 20); "brief" only
        // [0,2] (weight 3); "late" only [15,19] (weight 5).
        b.add_attribute(
            "q",
            &[
                (0, vec!["stable", "brief"]),
                (3, vec!["stable"]),
                (15, vec!["stable", "late"]),
            ],
            19,
        );
        (b.build(), tl)
    }

    #[test]
    fn occurrence_weights_sum_validity_intervals() {
        let (d, tl) = history();
        let q = d.attribute(0);
        let p = TindParams::weighted(0.0, 0, WeightFn::constant_one());
        let w = occurrence_weights(q, &p, tl);
        let dict = d.dictionary();
        assert!((w[&dict.get("stable").unwrap()] - 20.0).abs() < 1e-9);
        assert!((w[&dict.get("brief").unwrap()] - 3.0).abs() < 1e-9);
        assert!((w[&dict.get("late").unwrap()] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn required_values_filter_by_eps() {
        let (d, tl) = history();
        let q = d.attribute(0);
        let dict = d.dictionary();
        let stable = dict.get("stable").unwrap();
        let brief = dict.get("brief").unwrap();
        let late = dict.get("late").unwrap();

        let all = required_values(q, &TindParams::weighted(0.0, 0, WeightFn::constant_one()), tl);
        assert_eq!(all, tind_model::value::canonicalize(vec![stable, brief, late]));

        let eps3 = required_values(q, &TindParams::paper_default(), tl);
        assert!(!eps3.contains(&brief), "weight 3 does not exceed ε = 3");
        assert!(eps3.contains(&late));
        assert!(eps3.contains(&stable));

        let eps10 = required_values(q, &TindParams::weighted(10.0, 0, WeightFn::constant_one()), tl);
        assert_eq!(eps10, vec![stable]);
    }

    #[test]
    fn exact_eps_boundary_is_not_required() {
        // w_v = ε must NOT make v required ("more than ε" in the paper).
        let (d, tl) = history();
        let q = d.attribute(0);
        let dict = d.dictionary();
        let brief = dict.get("brief").unwrap();
        let p = TindParams::weighted(3.0, 0, WeightFn::constant_one());
        assert!(!required_values(q, &p, tl).contains(&brief));
    }

    #[test]
    fn decay_weights_demote_old_values() {
        let (d, tl) = history();
        let q = d.attribute(0);
        let dict = d.dictionary();
        let w = WeightFn::exponential(0.5, tl);
        // "brief" lives in [0,2]; with decay its total weight is tiny.
        let p = TindParams::weighted(0.001, 0, w);
        let req = required_values(q, &p, tl);
        assert!(!req.contains(&dict.get("brief").unwrap()));
        assert!(req.contains(&dict.get("late").unwrap()));
    }

    #[test]
    fn required_values_of_self_are_subset_of_universe() {
        let (d, tl) = history();
        let q = d.attribute(0);
        let req = required_values(q, &TindParams::strict(), tl);
        assert!(tind_model::value::is_subset(&req, &q.value_universe()));
    }
}
