//! Deterministic fault injection for testing the fault-tolerance layer.
//!
//! Robustness claims are only as good as the failures they were tested
//! against. This module provides the three failure modes the all-pairs
//! layer defends against, in deterministic, test-controllable form:
//!
//! * **Panicking queries** — [`poison_hook`] builds a
//!   [`FaultHook`] that panics when the worker reaches a planted
//!   "poison" attribute, exercising the `catch_unwind` quarantine path.
//! * **Truncation** — [`truncated`] cuts a serialized file short at an
//!   arbitrary byte, as a crashed writer or full disk would.
//! * **Bit rot** — [`flip_bit`] flips a single bit, as silent media
//!   corruption would; the CRC-32 trailer must catch every such flip.
//!
//! The hook is a regular (cheap) option on [`crate::AllPairsOptions`]
//! rather than a `cfg(test)` field so integration tests in dependent
//! crates can use it; production callers simply leave it `None`.

use std::sync::Arc;

use tind_model::AttrId;

/// A callback run at the start of every per-query search in all-pairs
/// discovery. Intended for fault injection (panics) and test
/// instrumentation (counting progress, triggering cancellation at a
/// chosen boundary).
pub type FaultHook = Arc<dyn Fn(AttrId) + Send + Sync>;

/// A hook that panics when asked to search any of `poison` — simulating a
/// query whose validation trips a latent bug (bad history, arithmetic
/// overflow, ...). All other queries pass through untouched.
pub fn poison_hook(poison: &[AttrId]) -> FaultHook {
    let poison = poison.to_vec();
    Arc::new(move |q| {
        if poison.contains(&q) {
            panic!("injected fault: poisoned query {q}");
        }
    })
}

/// Counted write/fsync/rename steps for kill injection, shared by every
/// crash-safe writer in the workspace (the sharded store's pack/repair and
/// the delta-update checkpoint path).
///
/// The budget is checked *before* each primitive: a limit of `n` allows
/// exactly `n` primitives, so every write/fsync/rename boundary is
/// reachable by sweeping `n` upward until the operation completes.
#[derive(Debug)]
pub struct OpBudget {
    limit: Option<u64>,
    performed: u64,
}

/// Builds an [`OpBudget`] that kills (fails) the operation before its
/// `limit + 1`-th counted primitive; `None` never kills. This is the
/// injection point behind every `kill_after_ops` option.
pub fn kill_after_ops(limit: Option<u64>) -> OpBudget {
    OpBudget { limit, performed: 0 }
}

impl OpBudget {
    /// Equivalent to [`kill_after_ops`].
    pub fn new(limit: Option<u64>) -> Self {
        kill_after_ops(limit)
    }

    /// Accounts one primitive; `Err(ops)` reports how many primitives had
    /// completed when the injected kill fired. Callers wrap the count in
    /// their own error type (e.g. `StoreError::Killed`).
    pub fn step(&mut self) -> Result<(), u64> {
        if let Some(limit) = self.limit {
            if self.performed >= limit {
                return Err(self.performed);
            }
        }
        self.performed += 1;
        Ok(())
    }
}

/// Returns `bytes` truncated to its first `keep` bytes.
pub fn truncated(bytes: &[u8], keep: usize) -> Vec<u8> {
    bytes[..keep.min(bytes.len())].to_vec()
}

/// Flips the single bit at `bit_index` (counted from byte 0, LSB first).
pub fn flip_bit(bytes: &mut [u8], bit_index: usize) {
    bytes[bit_index / 8] ^= 1 << (bit_index % 8);
}

/// Inverts byte `byte_index` of the file at `path` in place (XOR `0xFF`),
/// simulating on-disk media corruption of an already-published artifact.
/// Flipping the same byte twice restores the original file.
///
/// # Errors
/// Fails if the file cannot be read or written, or is shorter than
/// `byte_index + 1` bytes.
pub fn flip_file_byte(path: &std::path::Path, byte_index: usize) -> std::io::Result<()> {
    let mut bytes = std::fs::read(path)?;
    if byte_index >= bytes.len() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            format!("byte {byte_index} out of range for {}-byte file", bytes.len()),
        ));
    }
    bytes[byte_index] ^= 0xFF;
    std::fs::write(path, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poison_hook_panics_only_on_planted_ids() {
        let hook = poison_hook(&[3, 5]);
        hook(0);
        hook(4);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| hook(5)))
            .expect_err("must panic");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("poisoned query 5"), "{msg}");
    }

    #[test]
    fn op_budget_allows_exactly_the_limit() {
        let mut unlimited = kill_after_ops(None);
        for _ in 0..100 {
            unlimited.step().expect("no limit never kills");
        }
        let mut budget = OpBudget::new(Some(2));
        assert_eq!(budget.step(), Ok(()));
        assert_eq!(budget.step(), Ok(()));
        assert_eq!(budget.step(), Err(2), "the third primitive is killed");
        assert_eq!(budget.step(), Err(2), "killed budgets stay killed");
    }

    #[test]
    fn corruption_helpers_do_what_they_say() {
        let data = vec![0b1010_1010u8, 0xFF, 0x00];
        assert_eq!(truncated(&data, 2), vec![0b1010_1010, 0xFF]);
        assert_eq!(truncated(&data, 99), data);
        let mut flipped = data.clone();
        flip_bit(&mut flipped, 0);
        assert_eq!(flipped[0], 0b1010_1011);
        flip_bit(&mut flipped, 0);
        assert_eq!(flipped, data, "flipping twice restores");
    }

    #[test]
    fn flip_file_byte_inverts_in_place_and_bounds_checks() {
        let dir = std::env::temp_dir().join("tind-core-fault-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("flip.bin");
        std::fs::write(&path, [1u8, 2, 3]).expect("write");
        flip_file_byte(&path, 1).expect("flip");
        assert_eq!(std::fs::read(&path).expect("read"), vec![1, 2 ^ 0xFF, 3]);
        flip_file_byte(&path, 1).expect("unflip");
        assert_eq!(std::fs::read(&path).expect("read"), vec![1, 2, 3]);
        assert!(flip_file_byte(&path, 3).is_err(), "out of range rejected");
        std::fs::remove_file(&path).ok();
    }
}
