//! # tind-core
//!
//! The paper's primary contribution: definitions, validation, indexing and
//! search for **temporal inclusion dependencies** (tINDs).
//!
//! A w-weighted ε,δ-relaxed tIND `Q ⊆_{w,ε,δ} A` (Definition 3.6) holds if
//! the summed weight of timestamps at which `Q[t]` is *not* δ-contained in
//! `A` stays within the violation budget ε. All simpler variants (strict,
//! ε-relaxed, ε,δ-relaxed) are special cases obtained through
//! [`TindParams`] constructors.
//!
//! ## Module map
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`params`] | §3.3 | the (ε, δ, w) parameter triple and variant constructors |
//! | [`validate`] | §4.3 | Algorithm 2 (interval-partitioned validation) + a naive reference validator |
//! | [`required`] | §4.2.1 | required values `R_{ε,w}(Q)` |
//! | [`slices`] | §4.4 | time-slice interval selection (length sizing, random / weighted-random starts) |
//! | [`index`] | §4.2 | the chained Bloom-matrix index (`M_T`, `M_{I_1..I_k}`, `M_R`); sequential and parallel (bit-identical) builds |
//! | [`search`] | §4.2, Alg. 1 | tIND search with candidate pruning and violation tracking; batched multi-query kernel |
//! | [`reverse`] | §4.5 | reverse tIND search (`A ⊆ Q`) |
//! | [`allpairs`] | §3.5 | parallel all-pairs discovery (fault-tolerant: checkpoint/resume, panic quarantine, cancellation) |
//! | [`checkpoint`] | — | checksummed, fingerprint-guarded progress checkpoints |
//! | [`store`] | — | crash-safe sharded index store: atomic commits, quarantine, repair |
//! | [`cancel`] | — | cooperative cancellation tokens (incl. Ctrl-C wiring) |
//! | [`fault`] | — | deterministic fault injection for tests |
//!
//! ## Quick example
//!
//! ```
//! use tind_model::{DatasetBuilder, Timeline};
//! use tind_core::{IndexConfig, TindIndex, TindParams};
//!
//! let mut b = DatasetBuilder::new(Timeline::new(30));
//! b.add_attribute("games", &[(0, vec!["red", "blue"])], 29);
//! b.add_attribute("all titles", &[(0, vec!["red", "blue", "gold"])], 29);
//! let dataset = std::sync::Arc::new(b.build());
//!
//! let index = TindIndex::build(dataset.clone(), IndexConfig::default());
//! let params = TindParams::strict();
//! let hits = index.search(0, &params).results;
//! assert_eq!(hits, vec![1]); // "games" is temporally included in "all titles"
//! ```

pub mod allpairs;
pub mod cancel;
pub mod checkpoint;
pub mod delta;
pub mod explain;
pub mod fault;
pub mod incremental;
pub mod index;
pub mod nary;
pub mod params;
pub mod persist;
pub mod required;
pub mod reverse;
pub mod search;
pub mod slices;
pub mod store;
pub mod topk;
pub mod validate;

pub mod partial;

pub use allpairs::{
    discover_all_pairs, AllPairsError, AllPairsOptions, AllPairsOutcome, CheckpointPolicy,
};
pub use cancel::{CancelReason, CancelToken};
pub use checkpoint::Checkpoint;
pub use delta::{refresh_pairs, DatasetDelta, DeltaError, DeltaReport, RefreshReport};
pub use index::{BuildOptions, IndexConfig, MaskedShard, ShardMask, TindIndex};
pub use params::TindParams;
pub use search::{BatchOptions, BatchOutcome, SearchOptions, SearchOutcome, SearchStats};
pub use slices::{SliceConfig, SliceStrategy};
pub use store::{
    migrate_store, open_store, open_store_with, pack_store, repair_store, verify_store,
    LoadReport, OpenOptions, PackOptions, PackReport, RepairOptions, RepairReport, ShardFault,
    ShardFormat, StoreBacking, StoreError, VerifyReport,
};
pub use validate::{PlanArtifacts, PlanSource, QueryPlan, ValidationCounters, ValidationScratch};
