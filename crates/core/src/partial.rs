//! Partial temporal INDs — the paper's first-listed future-work extension
//! (Section 6: "combine the existing wεδ-tINDs with already known
//! IND-relaxations, such as partial [25] ... INDs").
//!
//! A σ-partial wεδ-tIND relaxes δ-containment itself: at each timestamp it
//! suffices that a *fraction* σ of the left-hand side's values is found in
//! the δ-window (Zhu et al.'s set-containment degree, applied per
//! timestamp):
//!
//! ```text
//! Q[t] ⊆^δ_σ A  ⟺  |Q[t] ∩ A[[t-δ, t+δ]]| ≥ σ · |Q[t]|
//! ```
//!
//! σ = 1 recovers exact wεδ-tINDs. This addresses the differing-entity-name
//! problem of §3.3 (e.g. `USA` vs `United States` in one of many rows)
//! that neither ε nor δ can absorb.
//!
//! Index integration: the Bloom stages of Algorithm 1 are only sound for
//! σ = 1 (a single missing required value no longer disqualifies a
//! candidate). [`partial_search`] therefore uses a *weakened* required-
//! values test — a candidate is pruned only if **all** required values are
//! absent from its full history — and otherwise validates directly.

use tind_bloom::BitVec;
use tind_model::{AttrId, AttributeHistory, Interval, Timeline};

use crate::index::TindIndex;
use crate::params::TindParams;
use crate::search::{SearchOutcome, SearchStats};
use crate::validate::critical_starts;

/// Parameters of a σ-partial wεδ-tIND.
///
/// # Examples
///
/// ```
/// use tind_core::partial::{partial_validate, PartialParams};
/// use tind_core::TindParams;
/// use tind_model::{DatasetBuilder, Timeline};
///
/// let tl = Timeline::new(10);
/// let mut b = DatasetBuilder::new(tl);
/// // One divergent entity name ("USA" vs "United States").
/// b.add_attribute("q", &[(0, vec!["United States", "France", "Japan", "Peru"])], 9);
/// b.add_attribute("a", &[(0, vec!["USA", "France", "Japan", "Peru"])], 9);
/// let d = b.build();
///
/// let strict = PartialParams::new(TindParams::strict(), 1.0);
/// assert!(!partial_validate(d.attribute(0), d.attribute(1), &strict, tl));
/// // σ = 0.75: three of four values suffice.
/// let fuzzy = PartialParams::new(TindParams::strict(), 0.75);
/// assert!(partial_validate(d.attribute(0), d.attribute(1), &fuzzy, tl));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PartialParams {
    /// The underlying (ε, δ, w) triple.
    pub base: TindParams,
    /// Minimum contained fraction of the left-hand side per timestamp,
    /// `0 < σ ≤ 1`.
    pub sigma: f64,
}

impl PartialParams {
    /// Creates σ-partial parameters.
    ///
    /// # Panics
    /// Panics unless `0 < σ ≤ 1`.
    pub fn new(base: TindParams, sigma: f64) -> Self {
        assert!(sigma > 0.0 && sigma <= 1.0, "σ must be in (0, 1], got {sigma}");
        PartialParams { base, sigma }
    }

    /// Number of values of a `len`-sized set that must be found.
    #[inline]
    pub fn required_hits(&self, len: usize) -> usize {
        (self.sigma * len as f64).ceil() as usize
    }
}

/// Whether `Q[t]` is σ-partially δ-contained in `A` at `t`.
pub fn partial_contained_at(
    q: &AttributeHistory,
    a: &AttributeHistory,
    t: u32,
    params: &PartialParams,
    timeline: Timeline,
) -> bool {
    let qv = q.values_at(t);
    if qv.is_empty() {
        return true;
    }
    let window = timeline.delta_window(t, params.base.delta);
    let av = a.values_in(window);
    let hits = qv.iter().filter(|v| av.binary_search(v).is_ok()).count();
    hits >= params.required_hits(qv.len())
}

/// Exact violation weight of the σ-partial candidate, via the same
/// interval partition as Algorithm 2 (σ-containment is constant on the
/// same intervals, since both `Q`'s version and `A`'s window union are).
pub fn partial_violation_weight(
    q: &AttributeHistory,
    a: &AttributeHistory,
    params: &PartialParams,
    timeline: Timeline,
    early_exit: bool,
) -> f64 {
    let n = timeline.len();
    let starts = critical_starts(q, a, params.base.delta, timeline);
    let mut violation = 0.0;
    for (i, &s) in starts.iter().enumerate() {
        let e = starts.get(i + 1).map_or(n - 1, |&next| next - 1);
        if !partial_contained_at(q, a, s, params, timeline) {
            violation += params.base.weights.interval_weight(Interval::new(s, e));
            if early_exit && params.exceeds_budget(violation) {
                return violation;
            }
        }
    }
    violation
}

impl PartialParams {
    /// Budget check against the base ε.
    fn exceeds_budget(&self, violation: f64) -> bool {
        self.base.exceeds_budget(violation)
    }
}

/// Whether the σ-partial wεδ-tIND `Q ⊆ A` holds.
pub fn partial_validate(
    q: &AttributeHistory,
    a: &AttributeHistory,
    params: &PartialParams,
    timeline: Timeline,
) -> bool {
    params.base.within_budget(partial_violation_weight(q, a, params, timeline, true))
}

/// σ-partial tIND search over an index.
///
/// For σ = 1 this delegates to the exact Algorithm-1 pipeline. For σ < 1
/// the Bloom stages are unsound (a single missing required value no longer
/// disqualifies a candidate), so every non-reflexive candidate is
/// validated directly with [`partial_validate`] — which the paper's §6
/// anticipates: partial relaxations "will likely require different
/// methods". Early-exit validation keeps this a full scan of cheap checks
/// rather than a full scan of expensive ones.
pub fn partial_search(index: &TindIndex, query: AttrId, params: &PartialParams) -> SearchOutcome {
    if (params.sigma - 1.0).abs() < f64::EPSILON {
        return index.search(query, &params.base);
    }
    let dataset = index.dataset();
    let timeline = dataset.timeline();
    let q = dataset.attribute(query);
    let num_attrs = dataset.len();
    let mut stats = SearchStats { initial: num_attrs - 1, ..SearchStats::default() };
    stats.after_required = stats.initial;
    stats.after_slices = stats.initial;
    stats.after_exact = stats.initial;

    let mut candidates = BitVec::ones(num_attrs);
    candidates.clear(query as usize);

    let mut results = Vec::new();
    for c in candidates.iter_ones() {
        stats.validations_run += 1;
        if partial_validate(q, dataset.attribute(c as u32), params, timeline) {
            results.push(c as u32);
        }
    }
    stats.validated = results.len();
    SearchOutcome { results, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use std::sync::Arc;
    use tind_model::{DatasetBuilder, WeightFn};

    fn dataset() -> Arc<tind_model::Dataset> {
        let mut b = DatasetBuilder::new(Timeline::new(40));
        // Q uses "United States"; A uses "USA" — one divergent entity name
        // out of five (the §3.3 issue partial containment addresses).
        b.add_attribute(
            "q",
            &[(0, vec!["United States", "France", "Japan", "Brazil", "Kenya"])],
            39,
        );
        b.add_attribute(
            "a",
            &[(0, vec!["USA", "France", "Japan", "Brazil", "Kenya", "Chile"])],
            39,
        );
        b.add_attribute("unrelated", &[(0, vec!["red", "blue", "green"])], 39);
        Arc::new(b.build())
    }

    #[test]
    fn sigma_one_matches_exact_semantics() {
        let d = dataset();
        let tl = d.timeline();
        let exact = PartialParams::new(TindParams::strict(), 1.0);
        assert!(!partial_validate(d.attribute(0), d.attribute(1), &exact, tl));
        assert!(partial_validate(d.attribute(0), d.attribute(0), &exact, tl));
    }

    #[test]
    fn sigma_absorbs_entity_name_divergence() {
        let d = dataset();
        let tl = d.timeline();
        // 4 of 5 values match → σ = 0.8 suffices, σ = 0.9 does not.
        let loose = PartialParams::new(TindParams::strict(), 0.8);
        assert!(partial_validate(d.attribute(0), d.attribute(1), &loose, tl));
        let tight = PartialParams::new(TindParams::strict(), 0.9);
        assert!(!partial_validate(d.attribute(0), d.attribute(1), &tight, tl));
    }

    #[test]
    fn partial_weight_matches_naive_scan() {
        let d = dataset();
        let tl = d.timeline();
        let p = PartialParams::new(TindParams::weighted(0.0, 2, WeightFn::constant_one()), 0.7);
        let fast = partial_violation_weight(d.attribute(0), d.attribute(1), &p, tl, false);
        let naive: f64 = tl
            .iter()
            .filter(|&t| !partial_contained_at(d.attribute(0), d.attribute(1), t, &p, tl))
            .map(|t| p.base.weights.weight(t))
            .sum();
        assert!((fast - naive).abs() < 1e-9, "{fast} vs {naive}");
    }

    #[test]
    fn partial_search_finds_fuzzy_superset() {
        let d = dataset();
        let index = TindIndex::build(d.clone(), IndexConfig { m: 256, ..IndexConfig::default() });
        let p = PartialParams::new(TindParams::strict(), 0.8);
        let out = partial_search(&index, 0, &p);
        assert_eq!(out.results, vec![1]);
        // σ = 1 path delegates to exact search: no results here.
        let exact = PartialParams::new(TindParams::strict(), 1.0);
        assert!(partial_search(&index, 0, &exact).results.is_empty());
    }

    #[test]
    fn partial_search_is_a_superset_of_exact_search() {
        let d = dataset();
        let index = TindIndex::build(d.clone(), IndexConfig { m: 256, ..IndexConfig::default() });
        let base = TindParams::paper_default();
        let exact = index.search(0, &base).results;
        for sigma in [0.9, 0.7, 0.5] {
            let partial = partial_search(&index, 0, &PartialParams::new(base.clone(), sigma));
            for id in &exact {
                assert!(partial.results.contains(id), "σ={sigma} lost exact result {id}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "σ must be in (0, 1]")]
    fn rejects_invalid_sigma() {
        PartialParams::new(TindParams::strict(), 0.0);
    }

    #[test]
    fn required_hits_rounding() {
        let p = PartialParams::new(TindParams::strict(), 0.75);
        assert_eq!(p.required_hits(4), 3);
        assert_eq!(p.required_hits(5), 4); // ceil(3.75)
        assert_eq!(p.required_hits(0), 0);
        let exact = PartialParams::new(TindParams::strict(), 1.0);
        assert_eq!(exact.required_hits(7), 7);
    }
}
