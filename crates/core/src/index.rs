//! The chained Bloom-matrix index for tIND search (Section 4.2).
//!
//! A [`TindIndex`] bundles:
//!
//! * `M_T` — one Bloom filter per attribute over its **full-history** value
//!   set `A[T]`; queried with the required values `R_{ε,w}(Q)` for the
//!   initial pruning step (§4.2.1). Parameter-free.
//! * `M_{I_1..I_k}` — one Bloom matrix per selected time slice `I_j`, each
//!   column holding `A[I_j^δ]` for the *maximum* δ the index supports
//!   (§4.2.2). Violations detected here are genuine for any query
//!   `δ' ≤ δ`; queries with larger δ' skip the slices (§4.4).
//! * `M_R` (optional) — one Bloom filter per attribute over its required
//!   values under the index-time (ε, w); enables reverse search (§4.5) for
//!   queries with `ε' ≤ ε`.
//!
//! The exact value universes `A[T]` are cached alongside to discard Bloom
//! false positives before full validation (Algorithm 1, line 16).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tind_bloom::{BitVec, BloomColumnStrip, BloomMatrix, BloomMatrixBuilder};
use tind_model::{
    AttrId, AttributeHistory, Dataset, Interval, MemoryBudget, ValueSet, WeightFn,
};

use crate::params::TindParams;
use crate::required::required_values;
use crate::search::{self, SearchOutcome};
use crate::slices::{select_slices, SliceConfig};

/// Construction-time configuration of a [`TindIndex`].
#[derive(Debug, Clone)]
pub struct IndexConfig {
    /// Bloom filter size `m` in bits (matrix rows). Paper default for tIND
    /// search: 4096 (§5.4; 1024–2048 when the same index must also serve
    /// reverse queries).
    pub m: u32,
    /// Hash probes per value.
    pub k_hashes: u32,
    /// Time-slice selection; also carries the index-time (ε, w) used for
    /// slice sizing and the maximum supported δ.
    pub slices: SliceConfig,
    /// RNG seed for slice selection (reproducible builds).
    pub seed: u64,
    /// Whether to build `M_R` for reverse tIND search.
    pub build_reverse: bool,
}

impl Default for IndexConfig {
    /// The paper's best settings for forward tIND search: `m = 4096`,
    /// `k = 16` random slices, sized for ε = 3 days / constant weights,
    /// maximum δ = 7 days (§5.1, §5.4).
    fn default() -> Self {
        IndexConfig {
            m: 4096,
            k_hashes: 2,
            slices: SliceConfig::search_default(3.0, WeightFn::constant_one(), 7),
            seed: 0x7e1d_0001,
            build_reverse: false,
        }
    }
}

impl IndexConfig {
    /// The paper's best settings when the index must serve reverse queries:
    /// `m = 512`, `k = 2` weighted-random slices with disjoint expansions
    /// (§5.1, §5.4), `M_R` enabled.
    pub fn reverse_default() -> Self {
        IndexConfig {
            m: 512,
            k_hashes: 2,
            slices: SliceConfig::reverse_default(3.0, WeightFn::constant_one(), 7),
            seed: 0x7e1d_0002,
            build_reverse: true,
        }
    }
}

/// Options controlling how [`TindIndex::build_with`] parallelizes
/// construction.
///
/// The determinism contract: the produced index is **bit-identical** to the
/// sequential [`TindIndex::build`] at any thread count and under any memory
/// budget. Slice selection (the only seeded randomness) runs on the calling
/// thread before workers start, and column hashing is a pure function of
/// `(config, attribute)`, so the work can be sliced and merged in any
/// order.
#[derive(Debug, Clone, Default)]
pub struct BuildOptions {
    /// Worker threads; `0` picks the machine's available parallelism.
    pub threads: usize,
    /// Optional memory budget. The first worker always runs (sequential
    /// construction is the floor); each extra worker must afford its
    /// column-strip scratch, so a tight budget degrades the build toward
    /// sequential instead of failing.
    pub memory_budget: Option<MemoryBudget>,
    /// Emit a progress line to stderr every this many completed column
    /// blocks; `0` is silent.
    pub progress_every: usize,
}

/// One indexed time slice: the interval, its δ-expansion, and the Bloom
/// matrix over every attribute's values within the expansion.
#[derive(Debug, Clone)]
pub struct TimeSlice {
    /// The slice interval `I_j`.
    pub interval: Interval,
    /// `I_j^δ`, the value window indexed per attribute.
    pub expanded: Interval,
    /// `m × |D|` matrix; column `j` holds `h(A_j[I^δ])`.
    pub matrix: BloomMatrix,
}

/// Structural index diagnostics; see [`TindIndex::diagnostics`].
#[derive(Debug, Clone, PartialEq)]
pub struct IndexDiagnostics {
    /// Number of indexed attributes.
    pub num_attributes: usize,
    /// Number of time slices.
    pub num_slices: usize,
    /// Bloom filter size in bits.
    pub m: u32,
    /// Fraction of set bits in `M_T` (filter load factor).
    pub m_t_load: f64,
    /// Mean load factor across time-slice matrices.
    pub mean_slice_load: f64,
    /// Fraction of the timeline covered by slice intervals.
    pub slice_coverage: f64,
    /// Total Bloom-matrix bytes.
    pub bloom_bytes: usize,
}

impl std::fmt::Display for IndexDiagnostics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "attributes:      {}", self.num_attributes)?;
        writeln!(f, "bloom size m:    {} bits", self.m)?;
        writeln!(f, "M_T load:        {:.1}%", self.m_t_load * 100.0)?;
        writeln!(f, "slices:          {}", self.num_slices)?;
        writeln!(f, "mean slice load: {:.1}%", self.mean_slice_load * 100.0)?;
        writeln!(f, "slice coverage:  {:.1}% of timeline", self.slice_coverage * 100.0)?;
        write!(f, "bloom memory:    {:.1} MiB", self.bloom_bytes as f64 / (1024.0 * 1024.0))
    }
}

/// One quarantined shard's footprint in a [`ShardMask`]: the shard id and
/// the attribute range whose index columns it carried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskedShard {
    /// Shard id within the store generation.
    pub shard: usize,
    /// First attribute covered by the shard.
    pub attr_start: u32,
    /// One past the last attribute covered by the shard.
    pub attr_end: u32,
}

/// Attribute-availability mask carried by an index loaded **degraded** from
/// a sharded store (`core::store`) in which some shards were quarantined.
///
/// A quarantined shard leaves its word columns zeroed in every Bloom matrix
/// and its value universes empty. Zero columns are *not* a safe fallback —
/// an all-zero column looks like "contains nothing" and would be silently
/// pruned from superset candidates — so the mask is consulted by the search
/// layers instead: masked attributes are excluded from candidate sets up
/// front, and a masked *query* attribute is the caller's signal to answer
/// `shard_unavailable` rather than fabricate an empty result.
#[derive(Debug, Clone)]
pub struct ShardMask {
    shards_total: usize,
    quarantined: Vec<MaskedShard>,
    bits: BitVec,
}

impl ShardMask {
    /// Builds a mask over `num_attrs` attributes from the quarantined
    /// shards of a `shards_total`-shard store.
    pub fn new(num_attrs: usize, shards_total: usize, quarantined: Vec<MaskedShard>) -> Self {
        let mut bits = BitVec::zeros(num_attrs);
        for q in &quarantined {
            for attr in q.attr_start..q.attr_end.min(num_attrs as u32) {
                bits.set(attr as usize);
            }
        }
        ShardMask { shards_total, quarantined, bits }
    }

    /// Whether attribute `id`'s index columns are unavailable.
    pub fn is_masked(&self, id: AttrId) -> bool {
        self.bits.get(id as usize)
    }

    /// The quarantined shards, ascending by shard id.
    pub fn quarantined(&self) -> &[MaskedShard] {
        &self.quarantined
    }

    /// Total shards in the store generation the index was loaded from.
    pub fn shards_total(&self) -> usize {
        self.shards_total
    }

    /// Fraction of shards that loaded cleanly, in `[0, 1]`.
    pub fn live_fraction(&self) -> f64 {
        if self.shards_total == 0 {
            return 1.0;
        }
        1.0 - self.quarantined.len() as f64 / self.shards_total as f64
    }

    /// Number of masked attributes.
    pub fn masked_attrs(&self) -> usize {
        self.bits.count_ones()
    }

    /// The raw mask bits (bit `a` set ⇔ attribute `a` unavailable).
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }
}

/// The tIND search index over a dataset.
#[derive(Debug, Clone)]
pub struct TindIndex {
    pub(crate) dataset: Arc<Dataset>,
    pub(crate) config: IndexConfig,
    pub(crate) m_t: BloomMatrix,
    pub(crate) time_slices: Vec<TimeSlice>,
    pub(crate) universes: Vec<ValueSet>,
    pub(crate) m_r: Option<BloomMatrix>,
    /// Present iff the index was loaded degraded from a sharded store;
    /// `None` means every attribute is live (the only state non-store
    /// construction paths ever produce).
    pub(crate) masked: Option<Arc<ShardMask>>,
}

impl TindIndex {
    /// Builds the index; deterministic given `config.seed`.
    pub fn build(dataset: Arc<Dataset>, config: IndexConfig) -> Self {
        let _build_span = tind_obs::span("core.index.build");
        let num_attrs = dataset.len();
        let timeline = dataset.timeline();

        let mt_span = tind_obs::span("core.index.m_t");
        let mut universes: Vec<ValueSet> = Vec::with_capacity(num_attrs);
        let mut mt_builder = BloomMatrixBuilder::new(config.m, num_attrs, config.k_hashes);
        for (id, hist) in dataset.iter() {
            let universe = hist.value_universe();
            mt_builder.insert_column(id as usize, &universe);
            universes.push(universe);
        }
        let m_t = mt_builder.build();
        drop(mt_span);

        let slices_span = tind_obs::span("core.index.slices");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let intervals = select_slices(&dataset, &config.slices, &mut rng);
        let time_slices = intervals
            .into_iter()
            .map(|interval| {
                let expanded = interval.expand(config.slices.max_delta, timeline);
                let mut b = BloomMatrixBuilder::new(config.m, num_attrs, config.k_hashes);
                for (id, hist) in dataset.iter() {
                    let values = hist.values_in(expanded);
                    if !values.is_empty() {
                        b.insert_column(id as usize, &values);
                    }
                }
                TimeSlice { interval, expanded, matrix: b.build() }
            })
            .collect();
        drop(slices_span);

        let _mr_span = tind_obs::span("core.index.m_r");
        let m_r = config.build_reverse.then(|| {
            let sizing = TindParams::weighted(
                config.slices.sizing_eps,
                0,
                config.slices.sizing_weights.clone(),
            );
            let mut b = BloomMatrixBuilder::new(config.m, num_attrs, config.k_hashes);
            for (id, hist) in dataset.iter() {
                let req = required_values(hist, &sizing, timeline);
                if !req.is_empty() {
                    b.insert_column(id as usize, &req);
                }
            }
            b.build()
        });

        TindIndex { dataset, config, m_t, time_slices, universes, m_r, masked: None }
    }

    /// Builds the index over a worker pool; output is bit-identical to
    /// [`TindIndex::build`] (see [`BuildOptions`] for the contract).
    ///
    /// Work is split into 64-column strips of each target matrix (`M_T`,
    /// every `M_{I_j}`, `M_R`) so workers never share a cache line of the
    /// final matrices: each strip owns a disjoint word column and is merged
    /// positionally once computed.
    pub fn build_with(dataset: Arc<Dataset>, config: IndexConfig, options: &BuildOptions) -> Self {
        let _build_span = tind_obs::span("core.index.build");
        let num_attrs = dataset.len();
        let timeline = dataset.timeline();

        // Slice selection consumes the seeded RNG on the calling thread
        // before any worker exists — the interval sequence, the only
        // randomized part of construction, cannot depend on thread count.
        let mut rng = StdRng::seed_from_u64(config.seed);
        let intervals = select_slices(&dataset, &config.slices, &mut rng);
        let num_slices = intervals.len();
        let expanded: Vec<Interval> =
            intervals.iter().map(|i| i.expand(config.slices.max_delta, timeline)).collect();
        let sizing = config.build_reverse.then(|| {
            TindParams::weighted(config.slices.sizing_eps, 0, config.slices.sizing_weights.clone())
        });

        // A work unit is one 64-column strip of one target matrix; targets
        // are M_T (0), the slices (1..=num_slices), then M_R.
        let blocks = num_attrs.div_ceil(64);
        let num_targets = 1 + num_slices + usize::from(config.build_reverse);
        let total_units = num_targets * blocks;

        let requested = if options.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            options.threads
        }
        .clamp(1, total_units.max(1));
        // Per-worker scratch: one m-row strip of words plus value-set slack.
        let scratch = config.m as usize * 8 + 64 * 1024;
        let (threads, _charges) =
            crate::allpairs::grant_workers(requested, scratch, options.memory_budget.as_ref());
        tind_obs::gauge("index.build.workers_requested").set(requested as f64);
        tind_obs::gauge("index.build.workers_granted").set(threads as f64);

        // Shared merge target. `merge_strip` ORs disjoint word columns, so
        // the order in which workers land their strips cannot change a
        // single bit of the result.
        struct MergeState {
            mt: BloomMatrixBuilder,
            slices: Vec<BloomMatrixBuilder>,
            mr: Option<BloomMatrixBuilder>,
            universes: Vec<ValueSet>,
        }
        let merge = Mutex::new(MergeState {
            mt: BloomMatrixBuilder::new(config.m, num_attrs, config.k_hashes),
            slices: (0..num_slices)
                .map(|_| BloomMatrixBuilder::new(config.m, num_attrs, config.k_hashes))
                .collect(),
            mr: config
                .build_reverse
                .then(|| BloomMatrixBuilder::new(config.m, num_attrs, config.k_hashes)),
            universes: vec![ValueSet::new(); num_attrs],
        });

        let cursor = AtomicUsize::new(0);
        let finished = AtomicUsize::new(0);
        {
            // Each worker owns one strip buffer for its whole run and
            // merges it as soon as a unit is rendered — no per-unit
            // allocation, no staging of `total_units` strips.
            let strips_rendered = tind_obs::counter("index.strips_rendered");
            let run_worker = || {
                let mut strip = BloomColumnStrip::new(config.m, config.k_hashes);
                loop {
                    let unit = cursor.fetch_add(1, Ordering::Relaxed);
                    if unit >= total_units {
                        break;
                    }
                    let _strip_span = tind_obs::span("core.index.strip");
                    let target = unit / blocks;
                    let block = unit % blocks;
                    let lo = block * 64;
                    let hi = (lo + 64).min(num_attrs);
                    strip.clear();
                    let mut unis = (target == 0).then(|| Vec::with_capacity(hi - lo));
                    for id in lo..hi {
                        let hist = dataset.attribute(id as AttrId);
                        let lane = id - lo;
                        if let Some(unis) = unis.as_mut() {
                            let universe = hist.value_universe();
                            strip.insert_lane(lane, &universe);
                            unis.push(universe);
                        } else if target <= num_slices {
                            let values = hist.values_in(expanded[target - 1]);
                            if !values.is_empty() {
                                strip.insert_lane(lane, &values);
                            }
                        } else {
                            let sizing = sizing.as_ref().expect("M_R unit implies reverse sizing");
                            let req = required_values(hist, sizing, timeline);
                            if !req.is_empty() {
                                strip.insert_lane(lane, &req);
                            }
                        }
                    }
                    {
                        let mut m = merge.lock();
                        if let Some(unis) = unis {
                            m.mt.merge_strip(block, &strip);
                            for (offset, u) in unis.into_iter().enumerate() {
                                m.universes[lo + offset] = u;
                            }
                        } else if target <= num_slices {
                            m.slices[target - 1].merge_strip(block, &strip);
                        } else {
                            m.mr
                                .as_mut()
                                .expect("M_R strip implies builder")
                                .merge_strip(block, &strip);
                        }
                    }
                    strips_rendered.incr();
                    let done = finished.fetch_add(1, Ordering::Relaxed) + 1;
                    if options.progress_every > 0 && done % options.progress_every == 0 {
                        eprintln!("index build: {done}/{total_units} column blocks");
                    }
                }
            };
            if threads <= 1 {
                run_worker();
            } else {
                crossbeam::scope(|scope| {
                    for _ in 0..threads {
                        scope.spawn(|_| run_worker());
                    }
                })
                .expect("index build worker panicked");
            }
        }

        let MergeState { mt, slices, mr, universes } = merge.into_inner();
        let m_t = mt.build();
        let time_slices = intervals
            .into_iter()
            .zip(expanded)
            .zip(slices)
            .map(|((interval, expanded), b)| TimeSlice { interval, expanded, matrix: b.build() })
            .collect();
        let m_r = mr.map(BloomMatrixBuilder::build);

        TindIndex { dataset, config, m_t, time_slices, universes, m_r, masked: None }
    }

    /// The indexed dataset.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.dataset
    }

    /// The construction configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// The full-history matrix `M_T`.
    pub fn m_t(&self) -> &BloomMatrix {
        &self.m_t
    }

    /// The required-values matrix `M_R`, if built.
    pub fn m_r(&self) -> Option<&BloomMatrix> {
        self.m_r.as_ref()
    }

    /// The indexed time slices.
    pub fn time_slices(&self) -> &[TimeSlice] {
        &self.time_slices
    }

    /// Cached exact value universe `A[T]` of an attribute.
    pub fn universe(&self, id: AttrId) -> &ValueSet {
        &self.universes[id as usize]
    }

    /// The shard-availability mask, present only when the index was loaded
    /// degraded from a sharded store with quarantined shards.
    pub fn shard_mask(&self) -> Option<&ShardMask> {
        self.masked.as_deref()
    }

    /// Whether attribute `id`'s index columns are unavailable (its store
    /// shard was quarantined). Always `false` for indexes not loaded from
    /// a degraded store.
    pub fn is_masked(&self, id: AttrId) -> bool {
        self.masked.as_ref().is_some_and(|m| m.is_masked(id))
    }

    /// The maximum query δ the time slices support.
    pub fn max_delta(&self) -> u32 {
        self.config.slices.max_delta
    }

    /// The ε the index was sized for (also the maximum reverse-query ε).
    pub fn sizing_eps(&self) -> f64 {
        self.config.slices.sizing_eps
    }

    /// Total heap footprint of the Bloom matrices in bytes — the
    /// `(k+1)·|D|·m/8` trade-off of §4.2.2 (plus `M_R` when present).
    pub fn bloom_bytes(&self) -> usize {
        self.m_t.heap_bytes()
            + self.time_slices.iter().map(|s| s.matrix.heap_bytes()).sum::<usize>()
            + self.m_r.as_ref().map_or(0, BloomMatrix::heap_bytes)
    }

    /// Structural diagnostics: matrix load factors and slice coverage.
    /// Useful for sizing `m` (overloaded filters prune poorly) and judging
    /// slice placement.
    pub fn diagnostics(&self) -> IndexDiagnostics {
        let load = |m: &BloomMatrix| {
            let total_bits = m.m() as usize * m.num_cols();
            if total_bits == 0 {
                return 0.0;
            }
            let set: usize = (0..m.num_cols()).map(|c| m.column_filter(c).count_ones()).sum();
            set as f64 / total_bits as f64
        };
        let timeline = self.dataset.timeline();
        let covered: u32 = self.time_slices.iter().map(|s| s.interval.len()).sum();
        IndexDiagnostics {
            num_attributes: self.dataset.len(),
            num_slices: self.time_slices.len(),
            m: self.config.m,
            m_t_load: load(&self.m_t),
            mean_slice_load: if self.time_slices.is_empty() {
                0.0
            } else {
                self.time_slices.iter().map(|s| load(&s.matrix)).sum::<f64>()
                    / self.time_slices.len() as f64
            },
            slice_coverage: f64::from(covered) / f64::from(timeline.len()),
            bloom_bytes: self.bloom_bytes(),
        }
    }

    /// tIND search (Definition 3.7): all `A ∈ D` with `Q ⊆_{w,ε,δ} A`,
    /// where `Q` is the indexed attribute `query`. The reflexive result is
    /// excluded.
    pub fn search(&self, query: AttrId, params: &TindParams) -> SearchOutcome {
        search::run_search(self, self.dataset.attribute(query), Some(query), params)
    }

    /// tIND search for an external query history. The history must be
    /// interned against this dataset's dictionary.
    pub fn search_history(&self, query: &AttributeHistory, params: &TindParams) -> SearchOutcome {
        search::run_search(self, query, None, params)
    }

    /// tIND search with individual pruning stages toggled — results are
    /// always identical to [`TindIndex::search`]; only runtime differs
    /// (the basis of the ablation benches).
    pub fn search_with_options(
        &self,
        query: AttrId,
        params: &TindParams,
        options: &search::SearchOptions,
    ) -> SearchOutcome {
        search::run_search_with(self, self.dataset.attribute(query), Some(query), params, options)
    }

    /// Batched tIND search: one [`TindIndex::search`]-equivalent outcome
    /// per query. Stage-1 pruning walks each `M_T` row once for the whole
    /// batch in word-blocked strips, and the remaining per-query stages fan
    /// out over a worker pool. Results and stats are identical to calling
    /// [`TindIndex::search`] per query.
    pub fn search_batch(&self, queries: &[AttrId], params: &TindParams) -> Vec<SearchOutcome> {
        self.search_batch_with(queries, params, &search::BatchOptions::default())
            .outcomes
            .into_iter()
            .map(|o| o.expect("no cancellation configured"))
            .collect()
    }

    /// [`TindIndex::search_batch`] with explicit thread, cancellation, and
    /// memory-budget control.
    pub fn search_batch_with(
        &self,
        queries: &[AttrId],
        params: &TindParams,
        options: &search::BatchOptions,
    ) -> search::BatchOutcome {
        search::run_search_batch(self, queries, params, options)
    }

    /// Reverse tIND search (Definition 3.8): all `A ∈ D` with
    /// `A ⊆_{w,ε,δ} Q` (§4.5). The reflexive result is excluded.
    pub fn reverse_search(&self, query: AttrId, params: &TindParams) -> SearchOutcome {
        crate::reverse::run_reverse(self, self.dataset.attribute(query), Some(query), params)
    }

    /// Reverse tIND search for an external query history.
    pub fn reverse_search_history(
        &self,
        query: &AttributeHistory,
        params: &TindParams,
    ) -> SearchOutcome {
        crate::reverse::run_reverse(self, query, None, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tind_model::{DatasetBuilder, Timeline};

    fn dataset() -> Arc<Dataset> {
        let mut b = DatasetBuilder::new(Timeline::new(60));
        b.add_attribute("sub", &[(0, vec!["a", "b"])], 59);
        b.add_attribute("super", &[(0, vec!["a", "b", "c"])], 59);
        b.add_attribute("other", &[(0, vec!["x", "y"])], 59);
        Arc::new(b.build())
    }

    #[test]
    fn build_produces_expected_shapes() {
        let d = dataset();
        let cfg = IndexConfig { m: 256, ..IndexConfig::default() };
        let idx = TindIndex::build(d.clone(), cfg);
        assert_eq!(idx.m_t().num_cols(), 3);
        assert_eq!(idx.m_t().m(), 256);
        assert!(idx.m_r().is_none());
        assert!(!idx.time_slices().is_empty());
        assert!(idx.time_slices().len() <= 16);
        assert_eq!(idx.universe(1), &vec![
            d.dictionary().get("a").unwrap(),
            d.dictionary().get("b").unwrap(),
            d.dictionary().get("c").unwrap()
        ]);
        assert!(idx.bloom_bytes() > 0);
    }

    #[test]
    fn build_is_deterministic_per_seed() {
        let d = dataset();
        let idx1 = TindIndex::build(d.clone(), IndexConfig::default());
        let idx2 = TindIndex::build(d.clone(), IndexConfig::default());
        let i1: Vec<Interval> = idx1.time_slices().iter().map(|s| s.interval).collect();
        let i2: Vec<Interval> = idx2.time_slices().iter().map(|s| s.interval).collect();
        assert_eq!(i1, i2);
    }

    #[test]
    fn slices_are_expanded_by_max_delta() {
        let d = dataset();
        let idx = TindIndex::build(d.clone(), IndexConfig::default());
        let tl = d.timeline();
        for s in idx.time_slices() {
            assert_eq!(s.expanded, s.interval.expand(idx.max_delta(), tl));
        }
    }

    #[test]
    fn diagnostics_are_sane() {
        let d = dataset();
        let idx = TindIndex::build(d.clone(), IndexConfig { m: 256, ..IndexConfig::default() });
        let diag = idx.diagnostics();
        assert_eq!(diag.num_attributes, 3);
        assert_eq!(diag.m, 256);
        assert!(diag.m_t_load > 0.0 && diag.m_t_load < 0.5, "load {}", diag.m_t_load);
        assert!(diag.slice_coverage > 0.0 && diag.slice_coverage <= 1.0);
        assert_eq!(diag.bloom_bytes, idx.bloom_bytes());
        let rendered = diag.to_string();
        assert!(rendered.contains("M_T load"));
    }

    #[test]
    fn parallel_build_is_byte_identical_to_sequential() {
        let d = dataset();
        for cfg in
            [IndexConfig { m: 256, ..IndexConfig::default() }, IndexConfig::reverse_default()]
        {
            let baseline = crate::persist::encode_index(&TindIndex::build(d.clone(), cfg.clone()));
            for threads in [1, 2, 7] {
                let opts = BuildOptions { threads, ..BuildOptions::default() };
                let par = TindIndex::build_with(d.clone(), cfg.clone(), &opts);
                assert!(
                    baseline == crate::persist::encode_index(&par),
                    "threads {threads} diverged from the sequential build"
                );
            }
        }
    }

    #[test]
    fn zero_memory_budget_build_is_still_identical() {
        let d = dataset();
        let cfg = IndexConfig { m: 256, ..IndexConfig::default() };
        let baseline = crate::persist::encode_index(&TindIndex::build(d.clone(), cfg.clone()));
        let opts = BuildOptions {
            threads: 8,
            memory_budget: Some(MemoryBudget::new(0)),
            ..BuildOptions::default()
        };
        let par = TindIndex::build_with(d.clone(), cfg, &opts);
        assert!(baseline == crate::persist::encode_index(&par));
    }

    #[test]
    fn reverse_config_builds_m_r() {
        let d = dataset();
        let idx = TindIndex::build(d.clone(), IndexConfig::reverse_default());
        assert!(idx.m_r().is_some());
        assert_eq!(idx.m_r().unwrap().m(), 512);
    }
}
