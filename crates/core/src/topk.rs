//! Top-k tIND search.
//!
//! Related work on set containment frames discovery as a *top-k* problem
//! (Zhu et al.'s domain search and its successors [23, 24]): instead of a
//! hard ε threshold, return the k right-hand sides with the **smallest
//! violation weight** for a query. This composes naturally with the tIND
//! index through iterative deepening:
//!
//! 1. run an ordinary ε-bounded search at a small ε;
//! 2. if at least k results validate, the global top-k is among them
//!    (anything not returned violates by *more* than ε, hence more than
//!    every returned result) — rank by exact violation weight and done;
//! 3. otherwise double ε and repeat, up to the total timeline weight
//!    (at which point every attribute qualifies and ranking is global).

use tind_model::{AttrId, WeightFn};

use crate::index::TindIndex;
use crate::params::TindParams;
use crate::validate::violation_weight;

/// One ranked result: the right-hand side and its exact violation weight.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedInd {
    /// The right-hand side attribute.
    pub rhs: AttrId,
    /// Exact violation weight of `query ⊆_{w,·,δ} rhs`.
    pub violation: f64,
}

/// Finds the `k` attributes with the smallest violation weight for the
/// query under (δ, w). Results are sorted by ascending violation, ties by
/// id. Fewer than `k` results are returned only when the dataset holds
/// fewer than `k` other attributes.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use tind_core::topk::top_k_search;
/// use tind_core::{IndexConfig, TindIndex};
/// use tind_model::{DatasetBuilder, Timeline, WeightFn};
///
/// let mut b = DatasetBuilder::new(Timeline::new(10));
/// b.add_attribute("q", &[(0, vec!["a"])], 9);
/// b.add_attribute("perfect", &[(0, vec!["a", "b"])], 9);
/// b.add_attribute("late", &[(0, vec!["z"]), (4, vec!["a"])], 9);
/// let index = TindIndex::build(Arc::new(b.build()), IndexConfig::default());
///
/// let top = top_k_search(&index, 0, 2, 0, &WeightFn::constant_one());
/// assert_eq!(top[0].rhs, 1); // zero violation
/// assert_eq!(top[1].rhs, 2); // 4 violated days
/// assert!((top[1].violation - 4.0).abs() < 1e-9);
/// ```
pub fn top_k_search(
    index: &TindIndex,
    query: AttrId,
    k: usize,
    delta: u32,
    weights: &WeightFn,
) -> Vec<RankedInd> {
    let dataset = index.dataset();
    let timeline = dataset.timeline();
    if k == 0 || dataset.len() <= 1 {
        return Vec::new();
    }
    let total_weight = weights.total(timeline);

    let mut eps = 1.0f64.min(total_weight);
    loop {
        let params = TindParams::weighted(eps, delta, weights.clone());
        let outcome = index.search(query, &params);
        if outcome.results.len() >= k || eps >= total_weight {
            let mut ranked: Vec<RankedInd> = outcome
                .results
                .into_iter()
                .map(|rhs| RankedInd {
                    rhs,
                    violation: violation_weight(
                        dataset.attribute(query),
                        dataset.attribute(rhs),
                        &params,
                        timeline,
                        false,
                    ),
                })
                .collect();
            ranked.sort_by(|a, b| {
                a.violation
                    .partial_cmp(&b.violation)
                    .expect("violations are finite")
                    .then(a.rhs.cmp(&b.rhs))
            });
            ranked.truncate(k);
            return ranked;
        }
        eps = (eps * 4.0).min(total_weight);
    }
}

/// Brute-force reference for [`top_k_search`].
pub fn brute_force_top_k(
    index: &TindIndex,
    query: AttrId,
    k: usize,
    delta: u32,
    weights: &WeightFn,
) -> Vec<RankedInd> {
    let dataset = index.dataset();
    let timeline = dataset.timeline();
    let params = TindParams::weighted(f64::MAX / 4.0, delta, weights.clone());
    let mut all: Vec<RankedInd> = dataset
        .iter()
        .filter(|(id, _)| *id != query)
        .map(|(rhs, a)| RankedInd {
            rhs,
            violation: violation_weight(dataset.attribute(query), a, &params, timeline, false),
        })
        .collect();
    all.sort_by(|a, b| {
        a.violation
            .partial_cmp(&b.violation)
            .expect("violations are finite")
            .then(a.rhs.cmp(&b.rhs))
    });
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use std::sync::Arc;
    use tind_model::{Dataset, DatasetBuilder, Timeline};

    fn dataset() -> Arc<Dataset> {
        let mut b = DatasetBuilder::new(Timeline::new(50));
        b.add_attribute("q", &[(0, vec!["a", "b"])], 49);
        // perfect: violation 0.
        b.add_attribute("perfect", &[(0, vec!["a", "b", "c"])], 49);
        // late: misses "b" for the first 10 days → violation 10.
        b.add_attribute("late", &[(0, vec!["a"]), (10, vec!["a", "b"])], 49);
        // later: misses "b" for 25 days → violation 25.
        b.add_attribute("later", &[(0, vec!["a"]), (25, vec!["a", "b"])], 49);
        // never: violation 50.
        b.add_attribute("never", &[(0, vec!["x"])], 49);
        Arc::new(b.build())
    }

    fn index() -> TindIndex {
        TindIndex::build(dataset(), IndexConfig { m: 256, ..IndexConfig::default() })
    }

    #[test]
    fn ranks_by_violation() {
        let idx = index();
        let w = WeightFn::constant_one();
        let top = top_k_search(&idx, 0, 3, 0, &w);
        let names: Vec<&str> =
            top.iter().map(|r| idx.dataset().attribute(r.rhs).name()).collect();
        assert_eq!(names, vec!["perfect", "late", "later"]);
        assert!((top[0].violation - 0.0).abs() < 1e-9);
        assert!((top[1].violation - 10.0).abs() < 1e-9);
        assert!((top[2].violation - 25.0).abs() < 1e-9);
    }

    #[test]
    fn matches_brute_force_for_all_k() {
        let idx = index();
        let w = WeightFn::constant_one();
        for k in 0..=5 {
            for delta in [0u32, 3, 8] {
                let fast = top_k_search(&idx, 0, k, delta, &w);
                let brute = brute_force_top_k(&idx, 0, k, delta, &w);
                assert_eq!(fast, brute, "k={k} δ={delta}");
            }
        }
    }

    #[test]
    fn k_larger_than_dataset_returns_everything() {
        let idx = index();
        let top = top_k_search(&idx, 0, 100, 0, &WeightFn::constant_one());
        assert_eq!(top.len(), 4, "all non-reflexive attributes ranked");
        assert!(top.windows(2).all(|w| w[0].violation <= w[1].violation));
    }

    #[test]
    fn delta_reshuffles_the_ranking() {
        let idx = index();
        let w = WeightFn::constant_one();
        // δ = 10 heals "late" completely (window reaches the day-10 fix),
        // making it tie with "perfect" at violation 0.
        let top = top_k_search(&idx, 0, 2, 10, &w);
        assert!((top[0].violation - 0.0).abs() < 1e-9);
        assert!((top[1].violation - 0.0).abs() < 1e-9);
    }

    #[test]
    fn decay_weights_are_supported() {
        let idx = index();
        let tl = idx.dataset().timeline();
        let w = WeightFn::exponential(0.9, tl);
        let fast = top_k_search(&idx, 0, 3, 0, &w);
        let brute = brute_force_top_k(&idx, 0, 3, 0, &w);
        assert_eq!(fast, brute);
        // Under decay, the early-day violations shrink dramatically:
        // "later" weighs 25 under constant weights but < 1 under a=0.9.
        assert!(fast[2].violation < 1.0, "old violations should decay: {fast:?}");
    }
}
