//! Time-slice interval selection (Section 4.4).
//!
//! Slice *length* is sized so that the summed weight of the interval
//! strictly exceeds the ε the index is built for (`w(I) > ε`, §4.4.1) —
//! otherwise a slice could only ever record partial violations and never
//! prune on its own. Slice *starting times* are chosen either uniformly at
//! random or weighted by estimated pruning power
//! `p(I) = Σ_A |A[I]| / |I|` (§4.4.2). Selected slices are pairwise
//! disjoint; optionally their δ-expansions are kept disjoint too, which the
//! reverse search requires (§4.5).

use rand::{Rng, RngExt};
use tind_model::{Dataset, Interval, Timeline, Timestamp, WeightFn};

/// How slice starting times are chosen (§4.4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceStrategy {
    /// Uniformly random starts. Best for larger `k` (Figure 13): the extra
    /// variance avoids redundant slices.
    Random,
    /// Starts sampled proportionally to estimated pruning power. Best for
    /// small `k`.
    WeightedRandom,
}

/// Configuration for slice selection.
#[derive(Debug, Clone)]
pub struct SliceConfig {
    /// Number of time slices `k`.
    pub k: usize,
    /// Start-time selection strategy.
    pub strategy: SliceStrategy,
    /// ε used for length sizing: each slice satisfies `w(I) > sizing_eps`.
    pub sizing_eps: f64,
    /// Weight function used for length sizing.
    pub sizing_weights: WeightFn,
    /// Maximum δ queries will use; slice value windows are expanded by it.
    pub max_delta: u32,
    /// If true, even the δ-expanded windows `I^δ` are kept disjoint
    /// (required to reuse the slices for reverse search, §4.5).
    pub expanded_disjoint: bool,
    /// Granularity at which candidate starts are enumerated for the
    /// weighted strategy (1 = every timestamp).
    pub start_stride: u32,
    /// Number of attributes sampled when estimating pruning power.
    pub attr_sample: usize,
}

impl SliceConfig {
    /// Slice configuration matching the paper's defaults for tIND search:
    /// `k = 16`, random starts, sizing from the given (ε, w).
    pub fn search_default(sizing_eps: f64, sizing_weights: WeightFn, max_delta: u32) -> Self {
        SliceConfig {
            k: 16,
            strategy: SliceStrategy::Random,
            sizing_eps,
            sizing_weights,
            max_delta,
            expanded_disjoint: false,
            start_stride: 1,
            attr_sample: 256,
        }
    }

    /// The paper's best configuration for reverse search: `k = 2`,
    /// weighted-random starts, δ-expanded windows disjoint.
    pub fn reverse_default(sizing_eps: f64, sizing_weights: WeightFn, max_delta: u32) -> Self {
        SliceConfig {
            k: 2,
            strategy: SliceStrategy::WeightedRandom,
            sizing_eps,
            sizing_weights,
            max_delta,
            expanded_disjoint: true,
            start_stride: 1,
            attr_sample: 256,
        }
    }
}

/// Whether `candidate` may be added to the pairwise-disjoint set `chosen`,
/// honoring `expanded_disjoint`.
fn is_compatible(candidate: Interval, chosen: &[Interval], cfg: &SliceConfig, timeline: Timeline) -> bool {
    let probe = if cfg.expanded_disjoint {
        candidate.expand(cfg.max_delta, timeline)
    } else {
        candidate
    };
    chosen.iter().all(|&c| {
        let existing = if cfg.expanded_disjoint { c.expand(cfg.max_delta, timeline) } else { c };
        !probe.overlaps(&existing)
    })
}

/// Sizes the slice starting at `start`, or `None` if the remaining timeline
/// cannot exceed the sizing ε.
fn slice_at(start: Timestamp, cfg: &SliceConfig, timeline: Timeline) -> Option<Interval> {
    cfg.sizing_weights.interval_exceeding(start, cfg.sizing_eps, timeline)
}

/// Estimated pruning power `p(I) = Σ_A |A[I]| / |I|` over a deterministic
/// attribute sample (§4.4.2).
pub fn pruning_power(dataset: &Dataset, interval: Interval, attr_sample: usize) -> f64 {
    let n = dataset.len();
    if n == 0 {
        return 0.0;
    }
    let step = (n / attr_sample.max(1)).max(1);
    let mut distinct_sum = 0usize;
    let mut sampled = 0usize;
    let mut i = 0;
    while i < n {
        distinct_sum += dataset.attribute(i as u32).distinct_count_in(interval);
        sampled += 1;
        i += step;
    }
    // Scale the sample back up so powers are comparable across strides.
    let scale = n as f64 / sampled as f64;
    distinct_sum as f64 * scale / f64::from(interval.len())
}

/// Selects up to `cfg.k` disjoint time slices for `dataset`.
///
/// Returns fewer than `k` slices when the timeline cannot fit more disjoint
/// intervals of the required length; an empty vector means the index will
/// consist of `M_T` alone.
pub fn select_slices<R: Rng>(dataset: &Dataset, cfg: &SliceConfig, rng: &mut R) -> Vec<Interval> {
    match cfg.strategy {
        SliceStrategy::Random => select_random(dataset.timeline(), cfg, rng),
        SliceStrategy::WeightedRandom => select_weighted(dataset, cfg, rng),
    }
}

fn select_random<R: Rng>(timeline: Timeline, cfg: &SliceConfig, rng: &mut R) -> Vec<Interval> {
    let mut chosen: Vec<Interval> = Vec::with_capacity(cfg.k);
    if cfg.k == 0 {
        return chosen;
    }
    let max_attempts = cfg.k * 64 + 128;
    let mut attempts = 0;
    while chosen.len() < cfg.k && attempts < max_attempts {
        attempts += 1;
        let start = rng.random_range(0..timeline.len());
        let Some(candidate) = slice_at(start, cfg, timeline) else { continue };
        if is_compatible(candidate, &chosen, cfg, timeline) {
            chosen.push(candidate);
        }
    }
    chosen.sort_unstable();
    chosen
}

fn select_weighted<R: Rng>(dataset: &Dataset, cfg: &SliceConfig, rng: &mut R) -> Vec<Interval> {
    let timeline = dataset.timeline();
    let mut chosen: Vec<Interval> = Vec::with_capacity(cfg.k);
    if cfg.k == 0 {
        return chosen;
    }
    // Enumerate candidate starts at the configured stride and weigh them by
    // pruning power.
    let stride = cfg.start_stride.max(1);
    let mut candidates: Vec<(Interval, f64)> = Vec::new();
    let mut start = 0u32;
    while start < timeline.len() {
        if let Some(interval) = slice_at(start, cfg, timeline) {
            let p = pruning_power(dataset, interval, cfg.attr_sample);
            if p > 0.0 {
                candidates.push((interval, p));
            }
        }
        start = start.saturating_add(stride);
    }
    // Iterative weighted sampling without replacement; incompatible draws
    // are zeroed out and sampling continues.
    let mut total: f64 = candidates.iter().map(|&(_, p)| p).sum();
    while chosen.len() < cfg.k && total > 0.0 {
        let mut r = rng.random::<f64>() * total;
        let mut picked = None;
        for (idx, &(interval, p)) in candidates.iter().enumerate() {
            if p <= 0.0 {
                continue;
            }
            r -= p;
            if r <= 0.0 {
                picked = Some((idx, interval));
                break;
            }
        }
        // Float underflow may leave r slightly positive after the last
        // candidate; pick the final positive-weight candidate then.
        let (idx, interval) = match picked {
            Some(x) => x,
            None => match candidates.iter().enumerate().rev().find(|(_, &(_, p))| p > 0.0) {
                Some((idx, &(interval, _))) => (idx, interval),
                None => break,
            },
        };
        total -= candidates[idx].1;
        candidates[idx].1 = 0.0;
        if is_compatible(interval, &chosen, cfg, timeline) {
            chosen.push(interval);
        }
    }
    chosen.sort_unstable();
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tind_model::DatasetBuilder;

    fn dataset(n: u32) -> Dataset {
        let mut b = DatasetBuilder::new(Timeline::new(n));
        // A busy attribute living only in the early timeline (each version
        // has fresh values) and a quiet one spanning everything.
        let busy: Vec<(Timestamp, Vec<String>)> = (0..10u32)
            .map(|i| (i * 3, (0..6).map(|v| format!("b{i}-{v}")).collect()))
            .filter(|(t, _)| *t < n - 1)
            .collect();
        b.add_attribute("busy", &busy, (n - 1).min(29));
        b.add_attribute("quiet", &[(0, vec!["q".to_string()])], n - 1);
        b.build()
    }

    fn cfg(k: usize, strategy: SliceStrategy) -> SliceConfig {
        SliceConfig {
            k,
            strategy,
            sizing_eps: 3.0,
            sizing_weights: WeightFn::constant_one(),
            max_delta: 2,
            expanded_disjoint: false,
            start_stride: 1,
            attr_sample: 16,
        }
    }

    #[test]
    fn random_slices_are_disjoint_and_sized() {
        let d = dataset(200);
        let mut rng = StdRng::seed_from_u64(7);
        let c = cfg(8, SliceStrategy::Random);
        let slices = select_slices(&d, &c, &mut rng);
        assert_eq!(slices.len(), 8);
        for w in slices.windows(2) {
            assert!(w[0].end < w[1].start, "slices must be disjoint and sorted");
        }
        for s in &slices {
            assert!(c.sizing_weights.interval_weight(*s) > c.sizing_eps, "w(I) > ε violated");
        }
    }

    #[test]
    fn weighted_slices_prefer_busy_regions() {
        let d = dataset(300);
        // The busy attribute dies at t = 29; intervals beyond have ~7x less
        // pruning power. Weighted selection must hit the busy region far
        // more often than its ~11% share of starting positions.
        let weighted = cfg(1, SliceStrategy::WeightedRandom);
        let random = cfg(1, SliceStrategy::Random);
        let (mut w_hits, mut r_hits) = (0, 0);
        for seed in 0..30 {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = select_slices(&d, &weighted, &mut rng);
            assert_eq!(s.len(), 1);
            if s[0].start <= 33 {
                w_hits += 1;
            }
            let mut rng = StdRng::seed_from_u64(seed);
            let s = select_slices(&d, &random, &mut rng);
            if s[0].start <= 33 {
                r_hits += 1;
            }
        }
        assert!(
            w_hits >= 10 && w_hits > 2 * r_hits.max(1),
            "weighted {w_hits}/30 vs random {r_hits}/30"
        );
    }

    #[test]
    fn expanded_disjointness_spaces_slices() {
        let d = dataset(200);
        let mut c = cfg(6, SliceStrategy::Random);
        c.expanded_disjoint = true;
        c.max_delta = 5;
        let mut rng = StdRng::seed_from_u64(3);
        let slices = select_slices(&d, &c, &mut rng);
        let tl = d.timeline();
        for w in slices.windows(2) {
            assert!(
                !w[0].expand(5, tl).overlaps(&w[1].expand(5, tl)),
                "expanded windows must not overlap"
            );
        }
    }

    #[test]
    fn short_timeline_yields_fewer_slices() {
        // Timeline of 10, sizing needs w(I) > 3 → intervals of 4; at most 2
        // disjoint ones fit.
        let d = dataset(10);
        let mut rng = StdRng::seed_from_u64(1);
        let slices = select_slices(&d, &cfg(16, SliceStrategy::Random), &mut rng);
        assert!(slices.len() <= 2, "got {}", slices.len());
    }

    #[test]
    fn zero_k_yields_no_slices() {
        let d = dataset(50);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(select_slices(&d, &cfg(0, SliceStrategy::Random), &mut rng).is_empty());
        assert!(select_slices(&d, &cfg(0, SliceStrategy::WeightedRandom), &mut rng).is_empty());
    }

    #[test]
    fn weighted_exhausts_gracefully() {
        let d = dataset(12);
        let mut rng = StdRng::seed_from_u64(9);
        // Ask for far more slices than fit; must terminate with what fits.
        let slices = select_slices(&d, &cfg(50, SliceStrategy::WeightedRandom), &mut rng);
        assert!(!slices.is_empty());
        assert!(slices.len() <= 3);
    }

    #[test]
    fn pruning_power_scales_with_distinct_values() {
        let d = dataset(300);
        let busy = pruning_power(&d, Interval::new(0, 9), 16);
        let quiet = pruning_power(&d, Interval::new(200, 209), 16);
        assert!(busy > quiet, "busy {busy} should exceed quiet {quiet}");
    }

    #[test]
    fn decay_weights_make_older_slices_longer() {
        let d = dataset(400);
        let tl = d.timeline();
        let mut c = cfg(4, SliceStrategy::Random);
        c.sizing_weights = WeightFn::exponential(0.995, tl);
        c.sizing_eps = 0.5;
        let mut rng = StdRng::seed_from_u64(11);
        let slices = select_slices(&d, &c, &mut rng);
        assert!(!slices.is_empty());
        for s in &slices {
            assert!(c.sizing_weights.interval_weight(*s) > 0.5);
        }
    }
}
