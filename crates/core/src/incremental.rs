//! Incremental index maintenance for evolving datasets.
//!
//! The paper indexes a fixed extraction of Wikipedia history, but its
//! related work (Shaabani et al.) highlights the practical need to keep
//! dependency information current as data keeps changing. This module adds
//! a main+delta design on top of [`TindIndex`]:
//!
//! * the **base** is an immutable `TindIndex` over a dataset snapshot;
//! * a **delta** holds new attributes and *superseding* versions of
//!   existing attributes (attribute histories are append-only in practice:
//!   an update extends a history with new versions);
//! * queries run against the base index with superseded attributes masked
//!   out, then brute-force over the small delta — results are exactly what
//!   a full rebuild would return (asserted in the tests);
//! * once the delta exceeds a threshold, [`IncrementalIndex::compact`]
//!   merges everything into a fresh base index.
//!
//! New value strings are interned into a dictionary extension so ids stay
//! consistent with the base (Bloom hashes are id-stable, §4.1).

use std::sync::Arc;

use tind_model::hash::FastMap;
use tind_model::{AttrId, AttributeHistory, Dataset, DatasetBuilder, Dictionary, ValueId};

use crate::index::{IndexConfig, TindIndex};
use crate::params::TindParams;
use crate::search::SearchStats;
use crate::validate;

/// Result of an incremental search: attribute names (delta attributes have
/// no stable id until compaction).
#[derive(Debug, Clone)]
pub struct IncrementalOutcome {
    /// Names of attributes satisfying the dependency, sorted.
    pub results: Vec<String>,
    /// Pruning statistics of the base-index portion plus delta
    /// validations.
    pub stats: SearchStats,
}

/// A tIND index that accepts updates between compactions.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use tind_core::incremental::IncrementalIndex;
/// use tind_core::{IndexConfig, TindParams};
/// use tind_model::{DatasetBuilder, HistoryBuilder, Timeline};
///
/// let mut b = DatasetBuilder::new(Timeline::new(30));
/// b.add_attribute("games", &[(0, vec!["red"])], 29);
/// let mut index = IncrementalIndex::build(Arc::new(b.build()), IndexConfig::default());
///
/// // A new attribute arrives later.
/// let red = index.intern("red");
/// let mut hb = HistoryBuilder::new("catalog");
/// hb.push(0, vec![red]);
/// index.upsert(hb.finish(29));
///
/// let hits = index.search("games", &TindParams::strict()).unwrap();
/// assert_eq!(hits.results, vec!["catalog".to_string()]);
/// ```
#[derive(Debug)]
pub struct IncrementalIndex {
    base: TindIndex,
    /// Dictionary extension covering base values plus newly interned ones.
    dictionary: Dictionary,
    /// New or superseding attributes, keyed by name.
    delta: Vec<AttributeHistory>,
    delta_by_name: FastMap<String, usize>,
    /// Base attribute ids masked out because a delta entry supersedes them.
    superseded: FastMap<AttrId, usize>,
    /// Delta size (attributes) that triggers automatic compaction.
    compact_threshold: usize,
    config: IndexConfig,
}

/// Where an attribute lives in an [`IncrementalIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Location {
    /// Indexed in the base.
    Base(AttrId),
    /// Pending in the delta.
    Delta(usize),
}

impl IncrementalIndex {
    /// Wraps an existing dataset in an incremental index.
    pub fn build(dataset: Arc<Dataset>, config: IndexConfig) -> Self {
        let dictionary = dataset.dictionary().clone();
        let base = TindIndex::build(dataset, config.clone());
        IncrementalIndex {
            base,
            dictionary,
            delta: Vec::new(),
            delta_by_name: FastMap::default(),
            superseded: FastMap::default(),
            compact_threshold: 256,
            config,
        }
    }

    /// Sets the delta size that triggers automatic compaction (default
    /// 256).
    pub fn set_compact_threshold(&mut self, threshold: usize) {
        self.compact_threshold = threshold.max(1);
    }

    /// Interns a value string, returning an id consistent with the base.
    pub fn intern(&mut self, value: &str) -> ValueId {
        self.dictionary.intern(value)
    }

    /// The current base index.
    pub fn base(&self) -> &TindIndex {
        &self.base
    }

    /// Number of pending delta attributes.
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    /// Total number of live attributes (base minus superseded plus delta).
    pub fn len(&self) -> usize {
        self.base.dataset().len() - self.superseded.len() + self.delta.len()
    }

    /// Whether the index holds no attributes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Locates an attribute by name (delta supersedes base).
    pub fn locate(&self, name: &str) -> Option<Location> {
        if let Some(&i) = self.delta_by_name.get(name) {
            return Some(Location::Delta(i));
        }
        self.base
            .dataset()
            .attribute_by_name(name)
            .filter(|(id, _)| !self.superseded.contains_key(id))
            .map(|(id, _)| Location::Base(id))
    }

    /// The history behind a [`Location`].
    pub fn history(&self, location: Location) -> &AttributeHistory {
        match location {
            Location::Base(id) => self.base.dataset().attribute(id),
            Location::Delta(i) => &self.delta[i],
        }
    }

    /// Inserts a new attribute or supersedes the same-named existing one.
    /// Values must have been interned through [`IncrementalIndex::intern`]
    /// (or stem from the base dictionary). Triggers compaction when the
    /// delta exceeds the threshold.
    ///
    /// # Panics
    /// Panics if the history extends beyond the base timeline — the
    /// observation window is fixed at build time (weight functions and
    /// slice sizing depend on it).
    pub fn upsert(&mut self, history: AttributeHistory) {
        assert!(
            self.base.dataset().timeline().contains(history.last_observed()),
            "history '{}' extends beyond the indexed timeline",
            history.name()
        );
        let name = history.name().to_owned();
        if let Some(&i) = self.delta_by_name.get(&name) {
            self.delta[i] = history;
        } else {
            if let Some((id, _)) = self.base.dataset().attribute_by_name(&name) {
                self.superseded.insert(id, self.delta.len());
            }
            self.delta_by_name.insert(name, self.delta.len());
            self.delta.push(history);
        }
        if self.delta.len() > self.compact_threshold {
            self.compact();
        }
    }

    /// Convenience: extends an existing attribute with one appended
    /// version at `start` (must follow its current last version) and a new
    /// `last_observed`.
    ///
    /// # Panics
    /// Panics if the attribute is unknown or `start` does not extend it.
    pub fn append_version(&mut self, name: &str, start: u32, values: Vec<ValueId>, last_observed: u32) {
        let location = self
            .locate(name)
            .unwrap_or_else(|| panic!("attribute '{name}' not found"));
        let current = self.history(location);
        let mut builder = tind_model::HistoryBuilder::new(name);
        for v in current.versions() {
            builder.push(v.start, v.values.clone());
        }
        builder.push(start, values);
        self.upsert(builder.finish(last_observed));
    }

    /// tIND search (Definition 3.7) over base plus delta; exactly what a
    /// full rebuild would return. Results are attribute *names* (delta
    /// attributes have no stable [`AttrId`] until compaction), sorted.
    pub fn search(&self, name: &str, params: &TindParams) -> Option<IncrementalOutcome> {
        let location = self.locate(name)?;
        let q = self.history(location);
        let timeline = self.base.dataset().timeline();

        // Base: masked index search.
        let base_outcome = match location {
            Location::Base(id) => self.base.search(id, params),
            Location::Delta(_) => self.base.search_history(q, params),
        };
        let mut stats = base_outcome.stats.clone();
        let mut results: Vec<String> = base_outcome
            .results
            .into_iter()
            .filter(|id| !self.superseded.contains_key(id))
            .map(|id| self.base.dataset().attribute(id).name().to_owned())
            .collect();

        // Delta: brute force (the delta is small by construction).
        for (i, candidate) in self.delta.iter().enumerate() {
            if Location::Delta(i) == location {
                continue;
            }
            stats.validations_run += 1;
            if validate::validate(q, candidate, params, timeline) {
                results.push(candidate.name().to_owned());
            }
        }
        results.sort_unstable();
        stats.validated = results.len();
        Some(IncrementalOutcome { results, stats })
    }

    /// Merges base and delta into a fresh base index.
    pub fn compact(&mut self) {
        let old = self.base.dataset();
        let mut builder = DatasetBuilder::new(old.timeline());
        // Preserve the dictionary (ids must stay stable).
        *builder.dictionary_mut() = self.dictionary.clone();
        for (id, h) in old.iter() {
            if self.superseded.contains_key(&id) {
                continue;
            }
            builder.add_history(h.clone());
        }
        for h in self.delta.drain(..) {
            builder.add_history(h);
        }
        self.delta_by_name.clear();
        self.superseded.clear();
        let dataset = Arc::new(builder.build());
        self.base = TindIndex::build(dataset, self.config.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tind_model::{HistoryBuilder, Timeline};

    fn base_dataset() -> Arc<Dataset> {
        let mut b = DatasetBuilder::new(Timeline::new(100));
        b.add_attribute("games", &[(0, vec!["red", "blue"])], 99);
        b.add_attribute("catalog", &[(0, vec!["red", "blue", "gold"])], 99);
        b.add_attribute("cities", &[(0, vec!["pallet"])], 99);
        Arc::new(b.build())
    }

    fn incremental() -> IncrementalIndex {
        IncrementalIndex::build(base_dataset(), IndexConfig { m: 256, ..IndexConfig::default() })
    }

    /// Reference: rebuild a full dataset from the incremental state and
    /// search it.
    fn rebuild_and_search(inc: &IncrementalIndex, name: &str, params: &TindParams) -> Vec<String> {
        let old = inc.base.dataset();
        let mut b = DatasetBuilder::new(old.timeline());
        *b.dictionary_mut() = inc.dictionary.clone();
        for (id, h) in old.iter() {
            if !inc.superseded.contains_key(&id) {
                b.add_history(h.clone());
            }
        }
        for h in &inc.delta {
            b.add_history(h.clone());
        }
        let dataset = Arc::new(b.build());
        let index = TindIndex::build(dataset.clone(), IndexConfig { m: 256, ..IndexConfig::default() });
        let (qid, _) = dataset.attribute_by_name(name).expect("query exists");
        let mut names: Vec<String> = index
            .search(qid, params)
            .results
            .into_iter()
            .map(|id| dataset.attribute(id).name().to_owned())
            .collect();
        names.sort_unstable();
        names
    }

    #[test]
    fn fresh_incremental_equals_base() {
        let inc = incremental();
        let p = TindParams::strict();
        let out = inc.search("games", &p).expect("query exists");
        assert_eq!(out.results, vec!["catalog".to_string()]);
        assert_eq!(inc.len(), 3);
        assert_eq!(inc.delta_len(), 0);
    }

    #[test]
    fn inserting_new_attribute_is_searchable_both_ways() {
        let mut inc = incremental();
        let red = inc.intern("red");
        let blue = inc.intern("blue");
        let silver = inc.intern("silver");
        let mut hb = HistoryBuilder::new("museum");
        hb.push(0, vec![red, blue, silver]);
        inc.upsert(hb.finish(99));

        let p = TindParams::strict();
        // New attribute as RHS.
        let out = inc.search("games", &p).expect("games");
        assert_eq!(out.results, vec!["catalog".to_string(), "museum".to_string()]);
        // New attribute as LHS.
        let out = inc.search("museum", &p).expect("museum");
        assert!(out.results.is_empty(), "silver not contained anywhere: {:?}", out.results);
        // Matches a full rebuild.
        assert_eq!(out.results, rebuild_and_search(&inc, "museum", &p));
    }

    #[test]
    fn superseding_changes_results() {
        let mut inc = incremental();
        let p = TindParams::paper_default();
        assert_eq!(inc.search("games", &p).expect("games").results, vec!["catalog".to_string()]);

        // "catalog" loses "blue" late in the timeline → strict/paper-eps
        // containment of games breaks for the last 20 days.
        let red = inc.intern("red");
        let gold = inc.intern("gold");
        let blue = inc.intern("blue");
        let mut hb = HistoryBuilder::new("catalog");
        hb.push(0, vec![red, blue, gold]);
        hb.push(80, vec![red, gold]);
        inc.upsert(hb.finish(99));
        assert_eq!(inc.len(), 3, "supersede must not grow the index");

        let got = inc.search("games", &p).expect("games").results;
        assert!(got.is_empty(), "superseded catalog no longer qualifies: {got:?}");
        assert_eq!(got, rebuild_and_search(&inc, "games", &p));
    }

    #[test]
    fn append_version_extends_history() {
        let mut inc = incremental();
        let red = inc.intern("red");
        let blue = inc.intern("blue");
        let ruby = inc.intern("ruby");
        inc.append_version("games", 50, vec![red, blue, ruby], 99);
        let games = inc.history(inc.locate("games").expect("exists"));
        assert_eq!(games.versions().len(), 2);
        assert_eq!(games.values_at(60).len(), 3);

        // catalog lacks "ruby" → strict containment now fails.
        let p = TindParams::strict();
        let out = inc.search("games", &p).expect("games");
        assert!(out.results.is_empty());
        assert_eq!(out.results, rebuild_and_search(&inc, "games", &p));
    }

    #[test]
    fn compaction_preserves_results() {
        let mut inc = incremental();
        let red = inc.intern("red");
        let mut hb = HistoryBuilder::new("tiny");
        hb.push(10, vec![red]);
        inc.upsert(hb.finish(60));
        let p = TindParams::paper_default();
        let before = inc.search("tiny", &p).expect("tiny").results;
        assert!(!before.is_empty(), "red is everywhere");
        inc.compact();
        assert_eq!(inc.delta_len(), 0);
        let after = inc.search("tiny", &p).expect("tiny").results;
        assert_eq!(before, after);
    }

    #[test]
    fn auto_compaction_triggers_at_threshold() {
        let mut inc = incremental();
        inc.set_compact_threshold(2);
        let red = inc.intern("red");
        for i in 0..4 {
            let mut hb = HistoryBuilder::new(format!("n{i}"));
            hb.push(0, vec![red]);
            inc.upsert(hb.finish(99));
        }
        assert!(inc.delta_len() <= 2, "delta {} exceeds threshold", inc.delta_len());
        assert_eq!(inc.len(), 7);
        // All four additions are queryable via the (possibly compacted) index.
        let out = inc.search("n3", &TindParams::strict()).expect("n3");
        assert!(out.results.contains(&"games".to_string()));
    }

    #[test]
    #[should_panic(expected = "beyond the indexed timeline")]
    fn rejects_history_past_timeline() {
        let mut inc = incremental();
        let red = inc.intern("red");
        let mut hb = HistoryBuilder::new("late");
        hb.push(0, vec![red]);
        inc.upsert(hb.finish(100));
    }

    #[test]
    fn locate_prefers_delta() {
        let mut inc = incremental();
        assert_eq!(inc.locate("games"), Some(Location::Base(0)));
        assert_eq!(inc.locate("nonexistent"), None);
        let red = inc.intern("red");
        let mut hb = HistoryBuilder::new("games");
        hb.push(0, vec![red]);
        inc.upsert(hb.finish(99));
        assert_eq!(inc.locate("games"), Some(Location::Delta(0)));
    }
}
