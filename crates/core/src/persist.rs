//! Index persistence: build once, query many sessions.
//!
//! Index construction over a large dataset takes orders of magnitude
//! longer than a single query, so the CLI supports saving a built
//! [`TindIndex`] to disk. The file embeds a fingerprint of the dataset it
//! was built over; loading verifies the fingerprint so a stale index can
//! never silently answer queries for different data.

use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tind_bloom::BloomMatrix;
use tind_model::binio::{
    check_magic, dataset_fingerprint, get_varint, get_weight_fn, put_varint, put_weight_fn,
    BinIoError,
};
use tind_model::checksum;
use tind_model::{Dataset, Interval, ValueId, ValueSet};

use crate::index::{IndexConfig, TimeSlice, TindIndex};
use crate::slices::{SliceConfig, SliceStrategy};

/// Magic bytes identifying a serialized index, including a format version.
/// Version 2 appended the CRC-32 integrity trailer (see
/// [`tind_model::checksum`]).
pub const INDEX_MAGIC: &[u8; 8] = b"TINDIX\x00\x02";

pub(crate) fn corrupt(msg: impl Into<String>) -> BinIoError {
    BinIoError::Corrupt(msg.into())
}

pub(crate) fn put_interval(buf: &mut BytesMut, i: Interval) {
    put_varint(buf, u64::from(i.start));
    put_varint(buf, u64::from(i.end - i.start));
}

pub(crate) fn get_interval(buf: &mut Bytes) -> Result<Interval, BinIoError> {
    let start = u32::try_from(get_varint(buf)?).map_err(|_| corrupt("interval start overflow"))?;
    let len = u32::try_from(get_varint(buf)?).map_err(|_| corrupt("interval length overflow"))?;
    Ok(Interval::new(start, start + len))
}

pub(crate) fn put_value_set(buf: &mut BytesMut, set: &[ValueId]) {
    put_varint(buf, set.len() as u64);
    let mut prev = 0u64;
    for &v in set {
        put_varint(buf, u64::from(v) - prev);
        prev = u64::from(v);
    }
}

pub(crate) fn get_value_set(buf: &mut Bytes) -> Result<ValueSet, BinIoError> {
    let len = get_varint(buf)? as usize;
    let mut out = Vec::with_capacity(len);
    let mut acc = 0u64;
    for i in 0..len {
        let d = get_varint(buf)?;
        if i > 0 && d == 0 {
            return Err(corrupt("duplicate value in set"));
        }
        acc += d;
        out.push(u32::try_from(acc).map_err(|_| corrupt("value id overflow"))?);
    }
    Ok(out)
}

/// Encodes an [`IndexConfig`] in the exact byte layout the monolithic index
/// file uses; shared with the sharded store manifest (`core::store`) so the
/// two formats stay byte-compatible on the config section.
pub(crate) fn put_config(buf: &mut BytesMut, cfg: &IndexConfig) {
    put_varint(buf, u64::from(cfg.m));
    put_varint(buf, u64::from(cfg.k_hashes));
    put_varint(buf, cfg.seed);
    buf.put_u8(u8::from(cfg.build_reverse));
    let s = &cfg.slices;
    put_varint(buf, s.k as u64);
    buf.put_u8(match s.strategy {
        SliceStrategy::Random => 0,
        SliceStrategy::WeightedRandom => 1,
    });
    buf.put_f64(s.sizing_eps);
    put_weight_fn(buf, &s.sizing_weights);
    put_varint(buf, u64::from(s.max_delta));
    buf.put_u8(u8::from(s.expanded_disjoint));
    put_varint(buf, u64::from(s.start_stride));
    put_varint(buf, s.attr_sample as u64);
}

/// Decodes an [`IndexConfig`] written by [`put_config`].
pub(crate) fn get_config(buf: &mut Bytes) -> Result<IndexConfig, BinIoError> {
    let m = u32::try_from(get_varint(buf)?).map_err(|_| corrupt("m overflow"))?;
    let k_hashes = u32::try_from(get_varint(buf)?).map_err(|_| corrupt("k overflow"))?;
    let seed = get_varint(buf)?;
    if !buf.has_remaining() {
        return Err(corrupt("truncated config"));
    }
    let build_reverse = buf.get_u8() != 0;
    let k = get_varint(buf)? as usize;
    if !buf.has_remaining() {
        return Err(corrupt("truncated strategy"));
    }
    let strategy = match buf.get_u8() {
        0 => SliceStrategy::Random,
        1 => SliceStrategy::WeightedRandom,
        other => return Err(corrupt(format!("unknown slice strategy {other}"))),
    };
    if buf.remaining() < 8 {
        return Err(corrupt("truncated sizing eps"));
    }
    let sizing_eps = buf.get_f64();
    let sizing_weights = get_weight_fn(buf)?;
    let max_delta = u32::try_from(get_varint(buf)?).map_err(|_| corrupt("δ overflow"))?;
    if !buf.has_remaining() {
        return Err(corrupt("truncated disjoint flag"));
    }
    let expanded_disjoint = buf.get_u8() != 0;
    let start_stride = u32::try_from(get_varint(buf)?).map_err(|_| corrupt("stride overflow"))?;
    let attr_sample = get_varint(buf)? as usize;
    Ok(IndexConfig {
        m,
        k_hashes,
        seed,
        build_reverse,
        slices: SliceConfig {
            k,
            strategy,
            sizing_eps,
            sizing_weights,
            max_delta,
            expanded_disjoint,
            start_stride,
            attr_sample,
        },
    })
}

/// Serializes `index` into a byte buffer.
pub fn encode_index(index: &TindIndex) -> Bytes {
    let mut buf = BytesMut::with_capacity(index.bloom_bytes() + (1 << 16));
    buf.put_slice(INDEX_MAGIC);
    buf.put_u64_le(dataset_fingerprint(index.dataset()));
    put_config(&mut buf, index.config());

    // Structures.
    index.m_t.encode(&mut buf);
    put_varint(&mut buf, index.time_slices.len() as u64);
    for slice in &index.time_slices {
        put_interval(&mut buf, slice.interval);
        put_interval(&mut buf, slice.expanded);
        slice.matrix.encode(&mut buf);
    }
    put_varint(&mut buf, index.universes.len() as u64);
    for u in &index.universes {
        put_value_set(&mut buf, u);
    }
    match &index.m_r {
        Some(m) => {
            buf.put_u8(1);
            m.encode(&mut buf);
        }
        None => buf.put_u8(0),
    }
    checksum::append_trailer(&mut buf);
    buf.freeze()
}

/// Verifies the container integrity of a serialized index — magic header,
/// format version, and CRC-32 trailer — without binding it to a dataset.
/// Returns the embedded dataset fingerprint. Used by `tind verify`, which
/// has the file but not necessarily the dataset it was built over.
pub fn verify_index_container(bytes: &Bytes) -> Result<u64, BinIoError> {
    check_magic(bytes, INDEX_MAGIC, "index")?;
    let mut buf = checksum::verify_and_strip(bytes.clone())?;
    buf.advance(INDEX_MAGIC.len());
    if buf.remaining() < 8 {
        return Err(corrupt("truncated fingerprint"));
    }
    Ok(buf.get_u64_le())
}

/// Deserializes an index and re-binds it to `dataset`, verifying the
/// embedded fingerprint.
pub fn decode_index(bytes: Bytes, dataset: Arc<Dataset>) -> Result<TindIndex, BinIoError> {
    check_magic(&bytes, INDEX_MAGIC, "index")?;
    let mut buf = checksum::verify_and_strip(bytes)?;
    buf.advance(INDEX_MAGIC.len());
    if buf.remaining() < 8 {
        return Err(corrupt("truncated fingerprint"));
    }
    let fingerprint = buf.get_u64_le();
    if fingerprint != dataset_fingerprint(&dataset) {
        return Err(corrupt(
            "index fingerprint does not match the dataset (stale or mismatched files)",
        ));
    }

    let config = get_config(&mut buf)?;

    let m_t = BloomMatrix::decode(&mut buf)?;
    let num_slices = get_varint(&mut buf)? as usize;
    let mut time_slices = Vec::with_capacity(num_slices);
    for _ in 0..num_slices {
        let interval = get_interval(&mut buf)?;
        let expanded = get_interval(&mut buf)?;
        let matrix = BloomMatrix::decode(&mut buf)?;
        time_slices.push(TimeSlice { interval, expanded, matrix });
    }
    let num_universes = get_varint(&mut buf)? as usize;
    if num_universes != dataset.len() {
        return Err(corrupt("universe count does not match dataset"));
    }
    let mut universes = Vec::with_capacity(num_universes);
    for _ in 0..num_universes {
        universes.push(get_value_set(&mut buf)?);
    }
    if !buf.has_remaining() {
        return Err(corrupt("truncated m_r flag"));
    }
    let m_r = match buf.get_u8() {
        0 => None,
        1 => Some(BloomMatrix::decode(&mut buf)?),
        other => return Err(corrupt(format!("bad m_r flag {other}"))),
    };
    if buf.has_remaining() {
        return Err(corrupt("trailing bytes after index"));
    }
    if m_t.num_cols() != dataset.len() {
        return Err(corrupt("matrix width does not match dataset"));
    }
    Ok(TindIndex { dataset, config, m_t, time_slices, universes, m_r, masked: None })
}

/// Writes `index` to the file at `path`.
pub fn write_index_file(index: &TindIndex, path: &std::path::Path) -> Result<(), BinIoError> {
    std::fs::write(path, encode_index(index))?;
    Ok(())
}

/// Reads an index from `path`, binding it to `dataset`.
///
/// The CRC-32 trailer is verified first by streaming the file through a
/// fixed 64 KiB buffer ([`checksum::stream_verify_file`]), so a truncated
/// or corrupted multi-GB index is rejected after one sequential pass
/// without ever allocating its full size; only a clean file is then read
/// into memory and decoded.
pub fn read_index_file(
    path: &std::path::Path,
    dataset: Arc<Dataset>,
) -> Result<TindIndex, BinIoError> {
    checksum::stream_verify_file(path)?;
    let raw = std::fs::read(path)?;
    decode_index(Bytes::from(raw), dataset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TindParams;
    use tind_model::{DatasetBuilder, Timeline};

    fn dataset() -> Arc<Dataset> {
        let mut b = DatasetBuilder::new(Timeline::new(80));
        b.add_attribute("q", &[(0, vec!["a", "b"]), (40, vec!["a", "b", "c"])], 79);
        b.add_attribute("big", &[(0, vec!["a", "b", "c", "d"])], 79);
        b.add_attribute("other", &[(5, vec!["x", "y"])], 60);
        Arc::new(b.build())
    }

    #[test]
    fn roundtrip_preserves_search_results() {
        let d = dataset();
        for config in [IndexConfig::default(), IndexConfig::reverse_default()] {
            let index = TindIndex::build(d.clone(), config);
            let bytes = encode_index(&index);
            let loaded = decode_index(bytes, d.clone()).expect("decodes");
            assert_eq!(loaded.m_t().m(), index.m_t().m());
            assert_eq!(loaded.time_slices().len(), index.time_slices().len());
            assert_eq!(loaded.m_r().is_some(), index.m_r().is_some());
            let p = TindParams::paper_default();
            for q in 0..d.len() as u32 {
                assert_eq!(loaded.search(q, &p).results, index.search(q, &p).results);
                assert_eq!(
                    loaded.reverse_search(q, &p).results,
                    index.reverse_search(q, &p).results
                );
            }
        }
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let d = dataset();
        let index = TindIndex::build(d.clone(), IndexConfig { m: 128, ..IndexConfig::default() });
        let bytes = encode_index(&index);
        let mut b2 = DatasetBuilder::new(Timeline::new(80));
        b2.add_attribute("different", &[(0, vec!["z"])], 79);
        let other = Arc::new(b2.build());
        let err = decode_index(bytes, other).expect_err("must reject");
        assert!(err.to_string().contains("fingerprint"));
    }

    #[test]
    fn truncation_is_rejected() {
        let d = dataset();
        let index = TindIndex::build(d.clone(), IndexConfig { m: 128, ..IndexConfig::default() });
        let bytes = encode_index(&index);
        for cut in [4usize, 16, bytes.len() / 2, bytes.len() - 1] {
            let t = bytes.slice(0..cut);
            assert!(decode_index(t, d.clone()).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn truncated_file_fails_fast_with_offset() {
        // The streaming pre-verify must reject a truncated index file with
        // a typed checksum error naming the cut point — without the decode
        // path ever seeing the bytes.
        let d = dataset();
        let index = TindIndex::build(d.clone(), IndexConfig { m: 256, ..IndexConfig::default() });
        let dir = std::env::temp_dir().join("tind-core-persist-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("truncated.tidx");
        let full = encode_index(&index);
        for cut in [full.len() / 3, full.len() / 2, full.len() - 1] {
            std::fs::write(&path, &full[..cut]).expect("write fixture");
            let err = read_index_file(&path, d.clone()).expect_err("truncation rejected");
            match err {
                BinIoError::Checksum { offset, .. } => {
                    assert_eq!(
                        offset,
                        (cut - checksum::TRAILER_LEN) as u64,
                        "offset names the streamed payload length at cut {cut}"
                    );
                }
                other => panic!("cut {cut}: expected checksum error, got {other}"),
            }
        }
        // Shorter than the trailer itself: typed corrupt, not a panic.
        std::fs::write(&path, b"ab").expect("write fixture");
        assert!(matches!(
            read_index_file(&path, d.clone()),
            Err(BinIoError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_roundtrip() {
        let d = dataset();
        let index = TindIndex::build(d.clone(), IndexConfig { m: 128, ..IndexConfig::default() });
        let dir = std::env::temp_dir().join("tind-core-persist-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("index.tidx");
        write_index_file(&index, &path).expect("write");
        let loaded = read_index_file(&path, d.clone()).expect("read");
        assert_eq!(loaded.config().m, 128);
        std::fs::remove_file(&path).ok();
    }
}
