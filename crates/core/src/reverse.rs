//! Reverse tIND search: find all `A` with `A ⊆_{w,ε,δ} Q` (Section 4.5).
//!
//! The forward machinery is reused with two adjustments:
//!
//! * `M_T` is useless in this direction — `A ⊆ Q` says nothing about
//!   `A[T] ⊆ Q[T]`. Instead the dedicated matrix `M_R` indexes each
//!   attribute's *required values* under the index-time (ε, w); the query's
//!   full universe is then matched in the **subset** direction. Sound only
//!   for query ε' ≤ index ε with the same weight function; otherwise the
//!   stage is skipped (every attribute stays a candidate).
//! * Time slices are queried in the subset direction against the query
//!   window expanded by a *further* δ (`A[I^δ] ⊆ Q[I^{2δ}]`). A detected
//!   violation cannot be attributed to a specific version of `A`, so only
//!   the **minimum** single-version weight within `I^δ` is added — weaker
//!   pruning than forward search, which is why the paper recommends only
//!   `k = 2` slices for reverse queries (Figure 14). Slices are only used
//!   if their δ-expansions were kept disjoint at build time.

use tind_bloom::BitVec;
use tind_model::hash::FastMap;
use tind_model::{AttrId, AttributeHistory};

use crate::index::TindIndex;
use crate::params::{TindParams, EPS_TOLERANCE};
use crate::required::required_values;
use crate::search::{SearchOutcome, SearchStats};
use crate::validate;
use crate::validate::{QueryPlan, ValidationScratch};

/// Executes reverse tIND search for `q` against the index.
pub(crate) fn run_reverse(
    index: &TindIndex,
    q: &AttributeHistory,
    exclude: Option<AttrId>,
    params: &TindParams,
) -> SearchOutcome {
    let _query_span = tind_obs::span("core.reverse.query");
    let dataset = index.dataset();
    let timeline = dataset.timeline();
    let num_attrs = dataset.len();
    let mut stats = SearchStats {
        initial: num_attrs - usize::from(exclude.is_some()),
        ..SearchStats::default()
    };

    let mut candidates = BitVec::ones(num_attrs);
    if let Some(x) = exclude {
        candidates.clear(x as usize);
    }
    // Attributes masked by a quarantined store shard have all-zero M_R
    // columns and empty universes; like forward search, they must leave
    // the candidate set before stage 1 can misread zero as "empty set".
    if let Some(mask) = index.shard_mask() {
        candidates.andnot_assign_words(mask.bits().words());
    }

    let q_universe = q.value_universe();

    // One prefix-sum table serves both the stage-2 minimum-weight bounds
    // and every stage-4 plan — O(1) interval weights regardless of the
    // weight function.
    let mut val_scratch = ValidationScratch::new();
    let table = val_scratch.weight_table(&params.weights, timeline);

    // Stage 1: required values of the candidates vs the query universe, in
    // the subset direction via M_R.
    let m_r_usable = index.m_r().is_some()
        && params.eps <= index.sizing_eps() + EPS_TOLERANCE
        && params.weights == index.config().slices.sizing_weights;
    if m_r_usable {
        let _stage1 = tind_obs::span("core.reverse.stage1");
        let m_r = index.m_r().expect("checked above");
        let qf = m_r.query_filter(&q_universe);
        m_r.narrow_to_subsets(&qf, &mut candidates);
    }
    stats.after_required = candidates.count_ones();

    // Stage 2: subset-direction time-slice checks with minimum-weight
    // violation lower bounds.
    stats.slices_used =
        params.slices_usable(index.max_delta()) && index.config().slices.expanded_disjoint;
    if stats.slices_used && !candidates.is_zero() {
        let _stage2 = tind_obs::span("core.reverse.stage2");
        // Probe mode mirrors forward search: once few candidates remain,
        // test their columns individually (O(m) each) instead of AND-NOTing
        // every zero row of the query filter across all of |D|.
        let probe_threshold = (num_attrs / 8).max(8);
        let mut violations: FastMap<u32, f64> = FastMap::default();
        let mut scratch = BitVec::zeros(num_attrs);
        for slice in index.time_slices() {
            // The query side is expanded by the query δ beyond the indexed
            // window: A[I^δ] ⊆ Q[I^{δ+δ'}] must hold for a valid tIND.
            let qwin = slice.expanded.expand(params.delta, timeline);
            let qvals = q.values_in(qwin);
            let qf = slice.matrix.query_filter(&qvals);
            let alive = candidates.count_ones();
            if alive <= probe_threshold {
                scratch.clear_all();
                for c in candidates.iter_ones() {
                    if slice.matrix.column_within_filter(c, &qf) {
                        scratch.set(c);
                    }
                }
            } else {
                scratch.copy_from(&candidates);
                slice.matrix.narrow_to_subsets(&qf, &mut scratch);
            }
            let mut pruned_any = false;
            for c in candidates.iter_ones() {
                if scratch.get(c) {
                    continue;
                }
                let a = dataset.attribute(c as u32);
                // Minimum weight over the single-version subintervals of
                // the indexed window: the only violation weight we can
                // guarantee without knowing which version violated.
                let mut min_w = f64::INFINITY;
                for vi in a.version_range_in(slice.expanded) {
                    if let Some(validity) = a.version_validity(vi).intersect(&slice.expanded) {
                        min_w = min_w.min(table.interval_weight(validity));
                    }
                }
                if !min_w.is_finite() {
                    // A is unobservable in the window; its empty set cannot
                    // have violated — Bloom artifact, ignore.
                    continue;
                }
                let v = violations.entry(c as u32).or_insert(0.0);
                *v += min_w;
                if params.exceeds_budget(*v) {
                    pruned_any = true;
                }
            }
            if pruned_any {
                for (&c, &v) in &violations {
                    if params.exceeds_budget(v) {
                        candidates.clear(c as usize);
                    }
                }
                if candidates.is_zero() {
                    break;
                }
            }
        }
    }
    stats.after_slices = candidates.count_ones();

    // Stage 3: exact check — the candidate's required values (under the
    // query parameters) must appear somewhere in Q's history.
    {
        let _stage3 = tind_obs::span("core.reverse.stage3");
        let survivors: Vec<usize> = candidates.iter_ones().collect();
        for c in survivors {
            let req = required_values(dataset.attribute(c as u32), params, timeline);
            if !tind_model::value::is_subset(&req, &q_universe) {
                candidates.clear(c);
            }
        }
    }
    stats.after_exact = candidates.count_ones();

    // Stage 4: full validation, with the candidate on the left-hand side.
    // The plan side changes per pair (the candidate is the LHS), so a plan
    // is built per candidate — but the scratch and the weight table are
    // shared across all of them.
    let stage4 = tind_obs::span("core.reverse.stage4");
    let started = std::time::Instant::now();
    let before = val_scratch.counters();
    let mut results = Vec::new();
    for c in candidates.iter_ones() {
        stats.validations_run += 1;
        let a = dataset.attribute(c as u32);
        let plan = QueryPlan::with_table(a, params, timeline, table.clone());
        if plan.validate(q, &mut val_scratch) {
            results.push(c as u32);
        }
    }
    let exits = val_scratch.counters().since(&before);
    stats.early_valid_exits = exits.proved_valid_early as usize;
    stats.early_invalid_exits = exits.proved_invalid_early as usize;
    stats.validate_nanos = started.elapsed().as_nanos() as u64;
    stats.validated = results.len();
    drop(stage4);
    crate::search::record_search_metrics(&stats);
    SearchOutcome { results, stats }
}

/// Brute-force reference for reverse search.
pub fn brute_force_reverse(
    index: &TindIndex,
    q: &AttributeHistory,
    exclude: Option<AttrId>,
    params: &TindParams,
) -> Vec<AttrId> {
    let dataset = index.dataset();
    let timeline = dataset.timeline();
    dataset
        .iter()
        .filter(|(id, _)| Some(*id) != exclude)
        .filter(|(_, a)| validate::validate(a, q, params, timeline))
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{IndexConfig, TindIndex};
    use std::sync::Arc;
    use tind_model::{Dataset, DatasetBuilder, Timeline, WeightFn};

    fn dataset() -> Arc<Dataset> {
        let mut b = DatasetBuilder::new(Timeline::new(80));
        b.add_attribute(
            "catalog",
            &[(0, vec!["red", "blue", "gold", "ruby", "crystal"])],
            79,
        );
        b.add_attribute("games", &[(0, vec!["red", "blue"]), (40, vec!["red", "blue", "gold"])], 79);
        b.add_attribute("one", &[(0, vec!["ruby"])], 79);
        b.add_attribute("alien", &[(0, vec!["mario"])], 79);
        // Briefly dirty subset: contains a foreign value for 2 timestamps.
        b.add_attribute(
            "dirty",
            &[(0, vec!["red"]), (10, vec!["red", "mario"]), (12, vec!["red"])],
            79,
        );
        Arc::new(b.build())
    }

    fn index(d: &Arc<Dataset>) -> TindIndex {
        TindIndex::build(d.clone(), IndexConfig::reverse_default())
    }

    #[test]
    fn strict_reverse_finds_clean_subsets() {
        let d = dataset();
        let idx = index(&d);
        let out = idx.reverse_search(0, &TindParams::strict());
        assert_eq!(out.results, vec![1, 2], "games and one are strict subsets of catalog");
    }

    #[test]
    fn eps_reverse_admits_briefly_dirty_subsets() {
        let d = dataset();
        let idx = index(&d);
        // "dirty" carries 'mario' for 2 timestamps; ε = 2 absorbs it.
        let p = TindParams::weighted(2.0, 0, WeightFn::constant_one());
        let out = idx.reverse_search(0, &p);
        assert_eq!(out.results, vec![1, 2, 4]);
    }

    #[test]
    fn reverse_matches_brute_force() {
        let d = dataset();
        let idx = index(&d);
        for qid in 0..d.len() as u32 {
            for p in [
                TindParams::strict(),
                TindParams::paper_default(),
                TindParams::weighted(2.0, 1, WeightFn::constant_one()),
            ] {
                let fast = idx.reverse_search(qid, &p).results;
                let brute = brute_force_reverse(&idx, d.attribute(qid), Some(qid), &p);
                assert_eq!(fast, brute, "reverse query {qid} params {p:?}");
            }
        }
    }

    #[test]
    fn unusable_m_r_falls_back_without_losing_results() {
        let d = dataset();
        let idx = index(&d);
        // ε above the index's sizing ε: M_R stage must be skipped.
        let p = TindParams::weighted(50.0, 0, WeightFn::constant_one());
        assert!(p.eps > idx.sizing_eps());
        let out = idx.reverse_search(0, &p);
        assert_eq!(out.stats.after_required, out.stats.initial, "no M_R pruning");
        let brute = brute_force_reverse(&idx, d.attribute(0), Some(0), &p);
        assert_eq!(out.results, brute);
    }

    #[test]
    fn forward_index_without_m_r_still_answers_reverse() {
        let d = dataset();
        let idx = TindIndex::build(d.clone(), IndexConfig { m: 512, ..IndexConfig::default() });
        assert!(idx.m_r().is_none());
        let p = TindParams::paper_default();
        let out = idx.reverse_search(0, &p);
        let brute = brute_force_reverse(&idx, d.attribute(0), Some(0), &p);
        assert_eq!(out.results, brute);
    }

    #[test]
    fn reverse_stats_monotone() {
        let d = dataset();
        let idx = index(&d);
        let s = idx.reverse_search(0, &TindParams::paper_default()).stats;
        assert!(s.after_required <= s.initial);
        assert!(s.after_slices <= s.after_required);
        assert!(s.after_exact <= s.after_slices);
        assert!(s.validated <= s.after_exact);
    }
}
