//! tIND search with candidate pruning (Section 4.2, Algorithm 1).
//!
//! Pipeline for a query attribute `Q`:
//!
//! 1. **Required values vs `M_T`** — any candidate missing a value that `Q`
//!    carries for more than ε total weight is pruned.
//! 2. **Time slices** — for every slice `I_j` and every distinct version of
//!    `Q` within it, candidates whose slice filter cannot contain the
//!    version accumulate the version's (query-weighted) violation; once a
//!    candidate's tracked violation strictly exceeds ε it is pruned.
//!    Skipped entirely when the query's δ exceeds the index's maximum δ
//!    (slice evidence would no longer be sound, §4.4).
//! 3. **Exact Bloom-false-positive filtering** — surviving candidates are
//!    re-checked against the exact cached universes (Algorithm 1, line 16).
//! 4. **Validation** — Algorithm 2 on each remaining candidate.
//!
//! Note one deliberate deviation from the paper's pseudocode: Algorithm 1
//! prunes at `VIO[c] ≥ ε`, but a candidate whose true violation weight is
//! *exactly* ε is still valid under Definition 3.6 ("at most ε"). We prune
//! only at `VIO[c] > ε` to guarantee zero false negatives.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use tind_bloom::{BitVec, BloomFilter};
use tind_model::hash::FastMap;
use tind_model::{AttrId, AttributeHistory, MemoryBudget, ValueId, ValueSet};

use crate::allpairs::{grant_workers, WORKER_SCRATCH_BYTES_PER_ATTR};
use crate::cancel::CancelToken;
use crate::index::TindIndex;
use crate::params::TindParams;
use crate::required::required_values;
use crate::validate;
use crate::validate::{PlanSource, QueryPlan, ValidationScratch};

/// Cached handles into the metrics registry — resolved once, then each
/// query pays only relaxed atomic adds (see DESIGN.md §7 for the names).
struct SearchMetrics {
    queries: &'static tind_obs::Counter,
    validations: &'static tind_obs::Counter,
    early_valid: &'static tind_obs::Counter,
    early_invalid: &'static tind_obs::Counter,
    pruned_required: &'static tind_obs::Counter,
    pruned_slices: &'static tind_obs::Counter,
    pruned_exact: &'static tind_obs::Counter,
    pairs_valid: &'static tind_obs::Counter,
    candidates_validated: &'static tind_obs::Histogram,
}

fn search_metrics() -> &'static SearchMetrics {
    static METRICS: std::sync::OnceLock<SearchMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| SearchMetrics {
        queries: tind_obs::counter("search.queries"),
        validations: tind_obs::counter("search.validations"),
        early_valid: tind_obs::counter("search.early_valid_exits"),
        early_invalid: tind_obs::counter("search.early_invalid_exits"),
        pruned_required: tind_obs::counter("search.pruned.required"),
        pruned_slices: tind_obs::counter("search.pruned.slices"),
        pruned_exact: tind_obs::counter("search.pruned.exact"),
        pairs_valid: tind_obs::counter("search.pairs_valid"),
        candidates_validated: tind_obs::histogram("search.candidates_validated"),
    })
}

/// Mirror one query's pruning funnel into the global registry.
pub(crate) fn record_search_metrics(stats: &SearchStats) {
    let m = search_metrics();
    m.queries.incr();
    m.validations.add(stats.validations_run as u64);
    m.early_valid.add(stats.early_valid_exits as u64);
    m.early_invalid.add(stats.early_invalid_exits as u64);
    m.pruned_required.add((stats.initial - stats.after_required) as u64);
    m.pruned_slices.add((stats.after_required - stats.after_slices) as u64);
    m.pruned_exact.add((stats.after_slices - stats.after_exact) as u64);
    m.pairs_valid.add(stats.validated as u64);
    m.candidates_validated.record(stats.after_exact as u64);
}

/// Counters describing how the candidate set narrowed per stage; the basis
/// of the pruning-power experiments.
#[derive(Debug, Clone, Default)]
pub struct SearchStats {
    /// `|D|` (minus the excluded self, if any).
    pub initial: usize,
    /// Candidates surviving the required-values pass over `M_T`.
    pub after_required: usize,
    /// Candidates surviving time-slice violation tracking.
    pub after_slices: usize,
    /// Candidates surviving exact (non-Bloom) subset re-checks.
    pub after_exact: usize,
    /// Candidates that passed full validation — `|results|`.
    pub validated: usize,
    /// Whether the time slices were usable (query δ ≤ index δ).
    pub slices_used: bool,
    /// Number of full (Algorithm 2) validations executed.
    pub validations_run: usize,
    /// Validations that ended via the prove-valid early exit (violation
    /// plus remaining suffix weight could no longer exceed ε).
    pub early_valid_exits: usize,
    /// Validations that ended via the prove-invalid early exit (violation
    /// alone already exceeded ε).
    pub early_invalid_exits: usize,
    /// Wall-clock nanoseconds spent in stage 4 (plan build + validations).
    /// Excluded from equality: timing is never deterministic.
    pub validate_nanos: u64,
}

/// Equality over the deterministic counters only — `validate_nanos` is
/// wall-clock noise and deliberately ignored, so batch-vs-sequential
/// equivalence tests can compare whole stats structs.
impl PartialEq for SearchStats {
    fn eq(&self, other: &Self) -> bool {
        self.initial == other.initial
            && self.after_required == other.after_required
            && self.after_slices == other.after_slices
            && self.after_exact == other.after_exact
            && self.validated == other.validated
            && self.slices_used == other.slices_used
            && self.validations_run == other.validations_run
            && self.early_valid_exits == other.early_valid_exits
            && self.early_invalid_exits == other.early_invalid_exits
    }
}

impl Eq for SearchStats {}

/// Result of a (reverse) tIND search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Ids of attributes satisfying the dependency, ascending.
    pub results: Vec<AttrId>,
    /// Per-stage pruning statistics.
    pub stats: SearchStats,
}

/// Toggles for the individual pruning stages — used by the ablation
/// benches to measure each stage's contribution. Disabling stages never
/// changes results (validation is authoritative), only runtime.
#[derive(Debug, Clone, Copy)]
pub struct SearchOptions {
    /// Stage 1: required values vs `M_T`.
    pub use_required_values: bool,
    /// Stage 2: time-slice violation tracking.
    pub use_time_slices: bool,
    /// Stage 3: exact re-check against cached universes.
    pub use_exact_filter: bool,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions { use_required_values: true, use_time_slices: true, use_exact_filter: true }
    }
}

/// Options for [`TindIndex::search_batch_with`].
#[derive(Clone, Default)]
pub struct BatchOptions {
    /// Worker threads for the per-query stages; `0` picks the machine's
    /// available parallelism.
    pub threads: usize,
    /// Optional cooperative cancellation, polled at query boundaries.
    pub cancel: Option<CancelToken>,
    /// Optional memory budget for worker scratch; extra workers beyond the
    /// first are shed when the budget cannot cover them (same degradation
    /// rule as all-pairs discovery).
    pub memory_budget: Option<MemoryBudget>,
    /// Optional plan cache consulted at the stage-4 plan-build seam:
    /// hits skip the weight-table accumulation and change-point scan for
    /// repeat `(query, parameters)` pairs. Results and statistics are
    /// identical with or without one attached.
    pub plans: Option<Arc<dyn PlanSource>>,
    /// Optional trace context: when set, the batched stage-1 pass and
    /// each query's stage 2–4 kernels record trace spans parented to it
    /// (the serve daemon passes its coalesced-wave span here). Purely
    /// observational — results and statistics are identical either way.
    pub trace: Option<tind_obs::TraceContext>,
    /// Per-query stage toggles, applied to every query of the batch.
    pub search: SearchOptions,
}

impl std::fmt::Debug for BatchOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchOptions")
            .field("threads", &self.threads)
            .field("cancel", &self.cancel)
            .field("memory_budget", &self.memory_budget)
            .field("plans", &self.plans.is_some())
            .field("trace", &self.trace)
            .field("search", &self.search)
            .finish()
    }
}

/// Result of a batched tIND search.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// One outcome per query, in input order; `None` only for queries
    /// skipped by cancellation.
    pub outcomes: Vec<Option<SearchOutcome>>,
    /// Whether cancellation stopped the batch before every query finished.
    pub cancelled: bool,
    /// Worker threads actually used after memory-budget shedding.
    pub threads_used: usize,
}

/// Executes tIND search for `q` against the index. `exclude` removes the
/// reflexive result when `q` is itself an indexed attribute.
pub(crate) fn run_search(
    index: &TindIndex,
    q: &AttributeHistory,
    exclude: Option<AttrId>,
    params: &TindParams,
) -> SearchOutcome {
    run_search_with(index, q, exclude, params, &SearchOptions::default())
}

/// [`run_search`] with stage toggles (one-shot scratch).
pub(crate) fn run_search_with(
    index: &TindIndex,
    q: &AttributeHistory,
    exclude: Option<AttrId>,
    params: &TindParams,
    options: &SearchOptions,
) -> SearchOutcome {
    let mut scratch = ValidationScratch::new();
    run_search_scratch(index, q, exclude, params, options, &mut scratch, None)
}

/// [`run_search_with`] against a caller-owned [`ValidationScratch`] — the
/// entry point for loops that issue many queries from one worker thread
/// (all-pairs, batch search) and want zero per-query allocation in stage 4.
pub(crate) fn run_search_scratch(
    index: &TindIndex,
    q: &AttributeHistory,
    exclude: Option<AttrId>,
    params: &TindParams,
    options: &SearchOptions,
    scratch: &mut ValidationScratch,
    trace: Option<tind_obs::TraceContext>,
) -> SearchOutcome {
    let _query_span = tind_obs::span("core.search.query");
    let query_trace = tind_obs::TraceSpan::start(trace, "core.search.query");
    let trace = query_trace.child_ctx();
    let timeline = index.dataset().timeline();
    let mut candidates = initial_candidates(index, exclude);

    // Stage 1: required values against M_T.
    let required = required_values(q, params, timeline);
    if options.use_required_values && !required.is_empty() {
        let _s1 = tind_obs::span("core.search.stage1");
        let _t1 = tind_obs::TraceSpan::start(trace, "core.search.stage1");
        let qf = index.m_t().query_filter(&required);
        index.m_t().narrow_to_supersets(&qf, &mut candidates);
    }

    finish_search(index, q, exclude, params, options, &required, candidates, scratch, None, trace)
}

/// The full candidate set before any pruning (minus the reflexive self,
/// minus any attributes masked by a quarantined store shard).
///
/// Masked attributes must be excluded *here*, not discovered later: their
/// matrix columns are all-zero, which stage 1 would misread as "contains
/// nothing" and silently prune — a false negative dressed up as an answer.
/// Dropping them from the candidate set up front keeps every stage honest,
/// and the caller reports the excluded range via the shard mask.
pub(crate) fn initial_candidates(index: &TindIndex, exclude: Option<AttrId>) -> BitVec {
    let mut candidates = BitVec::ones(index.dataset().len());
    if let Some(x) = exclude {
        candidates.clear(x as usize);
    }
    if let Some(mask) = index.shard_mask() {
        candidates.andnot_assign_words(mask.bits().words());
    }
    candidates
}

/// Stages 2–4 of Algorithm 1, shared by the per-query and batched paths.
/// `candidates` arrives already narrowed by the stage-1 required-values
/// pass (or untouched when that stage is disabled).
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish_search(
    index: &TindIndex,
    q: &AttributeHistory,
    exclude: Option<AttrId>,
    params: &TindParams,
    options: &SearchOptions,
    required: &[ValueId],
    mut candidates: BitVec,
    scratch: &mut ValidationScratch,
    plans: Option<&dyn PlanSource>,
    trace: Option<tind_obs::TraceContext>,
) -> SearchOutcome {
    let dataset = index.dataset();
    let timeline = dataset.timeline();
    let num_attrs = dataset.len();
    let mut stats = SearchStats {
        initial: num_attrs - usize::from(exclude.is_some()),
        after_required: candidates.count_ones(),
        ..SearchStats::default()
    };

    // Stage 2: time-slice violation tracking.
    //
    // Two equivalent evaluation modes (both apply the same per-column
    // Bloom test, so results are identical):
    // * row mode — AND whole matrix rows into a scratch set; cost
    //   O(query-bits · |D|/64) regardless of how many candidates remain.
    // * probe mode — test each remaining candidate's column bits
    //   individually; cost O(candidates · |values| · k). Once `M_T` has
    //   narrowed the field to a handful, probing is far cheaper than
    //   touching full rows — this keeps large k affordable on large |D|.
    stats.slices_used = options.use_time_slices && params.slices_usable(index.max_delta());
    if stats.slices_used && !candidates.is_zero() {
        let _s2 = tind_obs::span("core.search.stage2");
        let _t2 = tind_obs::TraceSpan::start(trace, "core.search.stage2");
        let probe_threshold = (num_attrs / 64).max(8);
        let mut violations: FastMap<u32, f64> = FastMap::default();
        let mut scratch = BitVec::zeros(num_attrs);
        let mut alive = candidates.count_ones();
        'slices: for slice in index.time_slices() {
            let range = q.version_range_in(slice.interval);
            for vi in range {
                let Some(validity) = q.version_validity(vi).intersect(&slice.interval) else {
                    continue;
                };
                let values = &q.versions()[vi].values;
                if values.is_empty() {
                    continue;
                }
                let w = params.weights.interval_weight(validity);
                let mut pruned_any = false;
                if alive <= probe_threshold {
                    // Probe mode.
                    for c in candidates.iter_ones() {
                        if slice.matrix.column_may_contain_all(c, values) {
                            continue;
                        }
                        let v = violations.entry(c as u32).or_insert(0.0);
                        *v += w;
                        if params.exceeds_budget(*v) {
                            pruned_any = true;
                        }
                    }
                } else {
                    // Row mode: scratch = candidates ∧ slice-contained;
                    // anything cleared relative to `candidates` is a
                    // detected partial violation.
                    scratch.copy_from(&candidates);
                    let qf = slice.matrix.query_filter(values);
                    slice.matrix.narrow_to_supersets(&qf, &mut scratch);
                    for c in candidates.iter_ones() {
                        if scratch.get(c) {
                            continue;
                        }
                        let v = violations.entry(c as u32).or_insert(0.0);
                        *v += w;
                        if params.exceeds_budget(*v) {
                            pruned_any = true;
                        }
                    }
                }
                if pruned_any {
                    for (&c, &v) in &violations {
                        if params.exceeds_budget(v) && candidates.get(c as usize) {
                            candidates.clear(c as usize);
                            alive -= 1;
                        }
                    }
                    if candidates.is_zero() {
                        break 'slices;
                    }
                }
            }
        }
    }
    stats.after_slices = candidates.count_ones();

    // Stage 3: exact subset re-check of the required values against the
    // cached universes — discards Bloom false positives cheaply before the
    // expensive full validation (Algorithm 1, line 16).
    if options.use_exact_filter && !required.is_empty() {
        let _s3 = tind_obs::span("core.search.stage3");
        let _t3 = tind_obs::TraceSpan::start(trace, "core.search.stage3");
        let survivors: Vec<usize> = candidates.iter_ones().collect();
        for c in survivors {
            if !tind_model::value::is_subset(&required, index.universe(c as u32)) {
                candidates.clear(c);
            }
        }
    }
    stats.after_exact = candidates.count_ones();

    // Stage 4: full validation through the plan-based kernel — the plan is
    // built once for `q` and reused across every surviving candidate; the
    // scratch (and its cached weight table) persists across queries on the
    // same worker thread.
    let _s4 = tind_obs::span("core.search.stage4");
    let t4 = tind_obs::TraceSpan::start(trace, "core.search.stage4");
    let started = std::time::Instant::now();
    let plan = {
        let _plan_span = tind_obs::span("core.validate.plan_build");
        let _plan_trace = tind_obs::TraceSpan::start(t4.child_ctx(), "core.validate.plan_build");
        // Indexed queries (`exclude` carries the query's own id) can reuse
        // cached plan artifacts; external-history queries always build
        // fresh — there is no stable identity to key them by.
        let cached = plans
            .zip(exclude)
            .and_then(|(src, qid)| src.get(qid, params, timeline))
            .and_then(|a| QueryPlan::from_artifacts(q, params, timeline, &a));
        match cached {
            Some(plan) => plan,
            None => {
                let table = scratch.weight_table(&params.weights, timeline);
                let plan = QueryPlan::with_table(q, params, timeline, table);
                if let (Some(src), Some(qid)) = (plans, exclude) {
                    src.put(qid, params, timeline, plan.artifacts());
                }
                plan
            }
        }
    };
    let before = scratch.counters();
    let mut results = Vec::new();
    for c in candidates.iter_ones() {
        stats.validations_run += 1;
        let a = dataset.attribute(c as u32);
        if plan.validate(a, scratch) {
            results.push(c as u32);
        }
    }
    let exits = scratch.counters().since(&before);
    stats.early_valid_exits = exits.proved_valid_early as usize;
    stats.early_invalid_exits = exits.proved_invalid_early as usize;
    stats.validate_nanos = started.elapsed().as_nanos() as u64;
    stats.validated = results.len();
    record_search_metrics(&stats);
    SearchOutcome { results, stats }
}

/// One query's staged state while a batch drains: the stage-1 output waits
/// in `input` until a worker claims it and replaces it with `outcome`.
struct BatchSlot {
    input: Option<(ValueSet, BitVec)>,
    outcome: Option<SearchOutcome>,
}

/// Batched tIND search (the kernel behind [`TindIndex::search_batch_with`]).
///
/// Stage 1 runs for the whole batch at once: every query's required values
/// are hashed exactly once, and `M_T` is walked row-by-row in word-blocked
/// strips, narrowing all candidate sets per row touch instead of re-reading
/// each row per query. Stages 2–4 stay per-query and fan out over a worker
/// pool with the all-pairs memory-budget degradation rule. Outcomes are
/// identical to running [`TindIndex::search`] per query, in input order.
pub(crate) fn run_search_batch(
    index: &TindIndex,
    queries: &[AttrId],
    params: &TindParams,
    options: &BatchOptions,
) -> BatchOutcome {
    let dataset = index.dataset();
    let timeline = dataset.timeline();

    // Batched stage 1.
    let batch_stage1 = tind_obs::span("core.search.batch_stage1");
    let batch_stage1_trace =
        tind_obs::TraceSpan::start(options.trace, "core.search.batch_stage1");
    let required: Vec<ValueSet> = queries
        .iter()
        .map(|&qid| required_values(dataset.attribute(qid), params, timeline))
        .collect();
    let mut candidates: Vec<BitVec> =
        queries.iter().map(|&qid| initial_candidates(index, Some(qid))).collect();
    if options.search.use_required_values {
        // An empty required set hashes to a filter with no set rows, which
        // narrows nothing — matching the per-query `!required.is_empty()`
        // guard.
        let filters: Vec<BloomFilter> =
            required.iter().map(|r| index.m_t().query_filter(r)).collect();
        index.m_t().narrow_batch_to_supersets(&filters, &mut candidates);
    }
    drop(batch_stage1_trace);
    drop(batch_stage1);

    let requested = if options.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        options.threads
    }
    .clamp(1, queries.len().max(1));
    let scratch = dataset.len().saturating_mul(WORKER_SCRATCH_BYTES_PER_ATTR);
    let (threads, _charges) = grant_workers(requested, scratch, options.memory_budget.as_ref());

    let slots: Vec<Mutex<BatchSlot>> = required
        .into_iter()
        .zip(candidates)
        .map(|staged| Mutex::new(BatchSlot { input: Some(staged), outcome: None }))
        .collect();
    let cursor = AtomicUsize::new(0);
    let stopped = AtomicBool::new(false);
    let drain = || {
        // One scratch per worker thread: stage 4 of every query this
        // worker drains reuses the same dense window union and cached
        // weight table.
        let mut scratch = ValidationScratch::new();
        loop {
            if options.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                stopped.store(true, Ordering::Relaxed);
                break;
            }
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= queries.len() {
                break;
            }
            let (required, candidates) =
                slots[i].lock().input.take().expect("each slot is claimed exactly once");
            let query_trace =
                tind_obs::TraceSpan::start(options.trace, "core.search.query");
            let outcome = finish_search(
                index,
                dataset.attribute(queries[i]),
                Some(queries[i]),
                params,
                &options.search,
                &required,
                candidates,
                &mut scratch,
                options.plans.as_deref(),
                query_trace.child_ctx(),
            );
            drop(query_trace);
            slots[i].lock().outcome = Some(outcome);
        }
    };
    if threads <= 1 {
        drain();
    } else {
        crossbeam::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| drain());
            }
        })
        .expect("batch search worker panicked");
    }

    let outcomes: Vec<Option<SearchOutcome>> =
        slots.into_iter().map(|s| s.into_inner().outcome).collect();
    let cancelled =
        stopped.load(Ordering::Relaxed) && outcomes.iter().any(Option::is_none);
    BatchOutcome { outcomes, cancelled, threads_used: threads }
}

/// Brute-force reference: validates `q` against every attribute. Used to
/// verify the index never loses a result.
pub fn brute_force_search(
    index: &TindIndex,
    q: &AttributeHistory,
    exclude: Option<AttrId>,
    params: &TindParams,
) -> Vec<AttrId> {
    let dataset = index.dataset();
    let timeline = dataset.timeline();
    dataset
        .iter()
        .filter(|(id, _)| Some(*id) != exclude)
        .filter(|(_, a)| validate::validate(q, a, params, timeline))
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use std::sync::Arc;
    use tind_model::{Dataset, DatasetBuilder, Timeline, WeightFn};

    fn pokemonish() -> Arc<Dataset> {
        let mut b = DatasetBuilder::new(Timeline::new(100));
        // Q: list of games, grows over time.
        b.add_attribute(
            "games",
            &[
                (0, vec!["red", "blue"]),
                (30, vec!["red", "blue", "gold"]),
                (60, vec!["red", "blue", "gold", "ruby"]),
            ],
            99,
        );
        // Superset that follows with delay 5.
        b.add_attribute(
            "all-titles",
            &[
                (0, vec!["red", "blue", "pinball"]),
                (35, vec!["red", "blue", "gold", "pinball"]),
                (65, vec!["red", "blue", "gold", "ruby", "pinball"]),
            ],
            99,
        );
        // Perfect superset, always in sync.
        b.add_attribute(
            "catalog",
            &[
                (0, vec!["red", "blue", "gold", "ruby", "crystal"]),
            ],
            99,
        );
        // Disjoint attribute.
        b.add_attribute("cities", &[(0, vec!["pallet", "viridian"])], 99);
        // Subset of Q (should appear only in reverse search).
        b.add_attribute("early-games", &[(0, vec!["red"])], 99);
        Arc::new(b.build())
    }

    fn index(d: &Arc<Dataset>) -> TindIndex {
        let cfg = IndexConfig { m: 1024, ..IndexConfig::default() };
        crate::index::TindIndex::build(d.clone(), cfg)
    }

    #[test]
    fn strict_search_finds_only_synced_superset() {
        let d = pokemonish();
        let idx = index(&d);
        let out = idx.search(0, &TindParams::strict());
        assert_eq!(out.results, vec![2], "only 'catalog' holds strictly");
        assert_eq!(out.stats.validated, 1);
        assert!(out.stats.after_required <= out.stats.initial);
    }

    #[test]
    fn delta_search_also_finds_delayed_superset() {
        let d = pokemonish();
        let idx = index(&d);
        // Delay is 5 timestamps; δ = 5, ε = 0.
        let p = TindParams::weighted(0.0, 5, WeightFn::constant_one());
        let out = idx.search(0, &p);
        assert_eq!(out.results, vec![1, 2]);
    }

    #[test]
    fn eps_search_absorbs_delay_weight() {
        let d = pokemonish();
        let idx = index(&d);
        // Two delays of 5 timestamps each = 10 violated days; ε = 10, δ = 0.
        let p = TindParams::weighted(10.0, 0, WeightFn::constant_one());
        let out = idx.search(0, &p);
        assert_eq!(out.results, vec![1, 2]);
        let tight = TindParams::weighted(9.0, 0, WeightFn::constant_one());
        assert_eq!(idx.search(0, &tight).results, vec![2]);
    }

    #[test]
    fn search_matches_brute_force_on_all_attributes() {
        let d = pokemonish();
        let idx = index(&d);
        for qid in 0..d.len() as u32 {
            for p in [
                TindParams::strict(),
                TindParams::paper_default(),
                TindParams::weighted(20.0, 3, WeightFn::constant_one()),
                TindParams::weighted(0.05, 2, WeightFn::uniform_normalized(d.timeline())),
            ] {
                let fast = idx.search(qid, &p).results;
                let brute =
                    brute_force_search(&idx, d.attribute(qid), Some(qid), &p);
                assert_eq!(fast, brute, "query {qid} params {p:?}");
            }
        }
    }

    #[test]
    fn query_delta_above_index_max_skips_slices_but_stays_correct() {
        let d = pokemonish();
        let idx = index(&d);
        let p = TindParams::weighted(0.0, 40, WeightFn::constant_one());
        assert!(p.delta > idx.max_delta());
        let out = idx.search(0, &p);
        assert!(!out.stats.slices_used);
        let brute = brute_force_search(&idx, d.attribute(0), Some(0), &p);
        assert_eq!(out.results, brute);
    }

    #[test]
    fn external_history_query() {
        let d = pokemonish();
        let idx = index(&d);
        // Build an external query using the same dictionary ids.
        let red = d.dictionary().get("red").unwrap();
        let blue = d.dictionary().get("blue").unwrap();
        let mut hb = tind_model::HistoryBuilder::new("external");
        hb.push(0, vec![red, blue]);
        let h = hb.finish(99);
        let out = idx.search_history(&h, &TindParams::strict());
        // {red, blue} held throughout: contained in games(0), all-titles(1),
        // catalog(2).
        assert_eq!(out.results, vec![0, 1, 2]);
    }

    #[test]
    fn stats_stages_are_monotone() {
        let d = pokemonish();
        let idx = index(&d);
        let out = idx.search(0, &TindParams::paper_default());
        let s = &out.stats;
        assert!(s.after_required <= s.initial);
        assert!(s.after_slices <= s.after_required);
        assert!(s.after_exact <= s.after_slices);
        assert!(s.validated <= s.after_exact);
        assert_eq!(s.validations_run, s.after_exact);
        assert!(s.early_valid_exits + s.early_invalid_exits <= s.validations_run);
    }

    #[test]
    fn stats_equality_ignores_wall_clock() {
        let mut a = SearchStats { validations_run: 3, validate_nanos: 10, ..Default::default() };
        let b = SearchStats { validations_run: 3, validate_nanos: 99, ..Default::default() };
        assert_eq!(a, b, "timing must not participate in equality");
        a.early_valid_exits = 1;
        assert_ne!(a, b, "early-exit counters do participate");
    }

    #[test]
    fn stage_toggles_never_change_results() {
        let d = pokemonish();
        let idx = index(&d);
        let p = TindParams::paper_default();
        let baseline = idx.search(0, &p).results;
        for (req, slices, exact) in [
            (false, true, true),
            (true, false, true),
            (true, true, false),
            (false, false, false),
        ] {
            let options = SearchOptions {
                use_required_values: req,
                use_time_slices: slices,
                use_exact_filter: exact,
            };
            let out = idx.search_with_options(0, &p, &options);
            assert_eq!(out.results, baseline, "options {options:?} changed results");
            if !req && !slices && !exact {
                assert_eq!(
                    out.stats.validations_run,
                    out.stats.initial,
                    "with all stages off, everything reaches validation"
                );
            }
        }
    }

    #[test]
    fn batch_search_matches_per_query_search() {
        let d = pokemonish();
        let idx = index(&d);
        // Duplicate query ids are allowed: each gets its own slot.
        let queries: Vec<AttrId> = (0..d.len() as u32).chain([0]).collect();
        for p in [TindParams::strict(), TindParams::paper_default()] {
            let batch = idx.search_batch(&queries, &p);
            assert_eq!(batch.len(), queries.len());
            for (&qid, out) in queries.iter().zip(&batch) {
                let single = idx.search(qid, &p);
                assert_eq!(out.results, single.results, "query {qid} params {p:?}");
                assert_eq!(out.stats, single.stats, "query {qid} params {p:?}");
            }
        }
    }

    #[test]
    fn batch_thread_counts_agree() {
        let d = pokemonish();
        let idx = index(&d);
        let queries: Vec<AttrId> = (0..d.len() as u32).collect();
        let p = TindParams::paper_default();
        let base = idx.search_batch(&queries, &p);
        for threads in [1, 2, 7] {
            let opts = BatchOptions { threads, ..BatchOptions::default() };
            let got = idx.search_batch_with(&queries, &p, &opts);
            assert!(!got.cancelled);
            for (a, b) in base.iter().zip(&got.outcomes) {
                let b = b.as_ref().expect("uncancelled batch completes every query");
                assert_eq!(a.results, b.results);
                assert_eq!(a.stats, b.stats);
            }
        }
    }

    #[test]
    fn batch_stage_toggles_never_change_results() {
        let d = pokemonish();
        let idx = index(&d);
        let queries: Vec<AttrId> = (0..d.len() as u32).collect();
        let p = TindParams::paper_default();
        let baseline: Vec<Vec<AttrId>> =
            idx.search_batch(&queries, &p).into_iter().map(|o| o.results).collect();
        let opts = BatchOptions {
            search: SearchOptions {
                use_required_values: false,
                use_time_slices: false,
                use_exact_filter: false,
            },
            ..BatchOptions::default()
        };
        let unpruned = idx.search_batch_with(&queries, &p, &opts);
        for (base, out) in baseline.iter().zip(&unpruned.outcomes) {
            assert_eq!(base, &out.as_ref().unwrap().results);
        }
    }

    /// Minimal [`PlanSource`] for the equivalence test: keyed like the
    /// serve cache — (query, ε bits, δ) — with `w` verified on hit.
    #[derive(Default)]
    struct TestPlans {
        map: std::sync::Mutex<FastMap<(AttrId, u64, u32), crate::validate::PlanArtifacts>>,
        hits: AtomicUsize,
        misses: AtomicUsize,
    }

    impl PlanSource for TestPlans {
        fn get(
            &self,
            query: AttrId,
            params: &TindParams,
            timeline: tind_model::Timeline,
        ) -> Option<crate::validate::PlanArtifacts> {
            let key = (query, params.eps.to_bits(), params.delta);
            match self.map.lock().unwrap().get(&key) {
                Some(a) if a.matches(params, timeline) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Some(a.clone())
                }
                _ => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    None
                }
            }
        }

        fn put(
            &self,
            query: AttrId,
            params: &TindParams,
            _timeline: tind_model::Timeline,
            artifacts: crate::validate::PlanArtifacts,
        ) {
            let key = (query, params.eps.to_bits(), params.delta);
            self.map.lock().unwrap().insert(key, artifacts);
        }
    }

    #[test]
    fn plan_source_never_changes_results_or_stats() {
        let d = pokemonish();
        let idx = index(&d);
        let queries: Vec<AttrId> = (0..d.len() as u32).collect();
        let plans = Arc::new(TestPlans::default());
        for p in [TindParams::strict(), TindParams::paper_default()] {
            let baseline = idx.search_batch(&queries, &p);
            let opts = BatchOptions {
                plans: Some(plans.clone() as Arc<dyn PlanSource>),
                ..BatchOptions::default()
            };
            // First pass fills the cache, second pass hits it; both must
            // be indistinguishable from the uncached baseline.
            for pass in 0..2 {
                let got = idx.search_batch_with(&queries, &p, &opts);
                assert!(!got.cancelled);
                for (a, b) in baseline.iter().zip(&got.outcomes) {
                    let b = b.as_ref().unwrap();
                    assert_eq!(a.results, b.results, "pass {pass} params {p:?}");
                    assert_eq!(a.stats, b.stats, "pass {pass} params {p:?}");
                }
            }
        }
        assert!(plans.hits.load(Ordering::Relaxed) > 0, "second pass must hit");
        assert!(plans.misses.load(Ordering::Relaxed) > 0, "first pass must miss");
    }

    #[test]
    fn pre_cancelled_batch_returns_no_outcomes() {
        let d = pokemonish();
        let idx = index(&d);
        let token = CancelToken::new();
        token.cancel();
        let opts = BatchOptions { cancel: Some(token), ..BatchOptions::default() };
        let out = idx.search_batch_with(&[0, 1, 2], &TindParams::strict(), &opts);
        assert!(out.cancelled);
        assert!(out.outcomes.iter().all(Option::is_none));
    }

    #[test]
    fn zero_memory_budget_degrades_batch_to_one_worker() {
        let d = pokemonish();
        let idx = index(&d);
        let opts = BatchOptions {
            threads: 8,
            memory_budget: Some(MemoryBudget::new(0)),
            ..BatchOptions::default()
        };
        let out = idx.search_batch_with(&[0, 1], &TindParams::strict(), &opts);
        assert_eq!(out.threads_used, 1, "zero budget sheds every extra worker");
        assert!(!out.cancelled);
        assert!(out.outcomes.iter().all(Option::is_some));
    }

    #[test]
    fn empty_batch_is_fine() {
        let d = pokemonish();
        let idx = index(&d);
        assert!(idx.search_batch(&[], &TindParams::strict()).is_empty());
    }

    #[test]
    fn self_is_excluded() {
        let d = pokemonish();
        let idx = index(&d);
        for qid in 0..d.len() as u32 {
            let out = idx.search(qid, &TindParams::paper_default());
            assert!(!out.results.contains(&qid));
        }
    }
}
