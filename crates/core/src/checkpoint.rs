//! Checkpointed all-pairs discovery state.
//!
//! A full all-pairs run at paper scale takes hours (§5.2); losing all of
//! it to a panic, OOM kill, or operator interrupt is not acceptable for a
//! production service. A [`Checkpoint`] persists the exact set of
//! completed query ids together with the pairs, poisoned queries, and
//! validation counts they produced, so a restarted run can skip finished
//! work and still produce **byte-identical** output: per-query search is
//! deterministic and the final pair list is sorted, so any
//! completed-query subset resumes to the same result.
//!
//! The on-disk format follows the workspace conventions: hand-rolled
//! varint encoding (`tind_model::binio`), an 8-byte magic-plus-version
//! header, a dataset fingerprint guard like `persist.rs` — plus a digest
//! of the (ε, δ, w) parameters, since resuming under different parameters
//! would silently mix incompatible results — and a CRC-32 trailer
//! ([`tind_model::checksum`]) so truncated or bit-rotted checkpoints are
//! rejected with a typed error. Writes go through a temp file + rename so
//! a crash mid-write never destroys the previous good checkpoint.

use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tind_model::binio::{
    check_magic, dataset_fingerprint, get_varint, put_varint, put_weight_fn, BinIoError,
};
use tind_model::checksum;
use tind_model::{AttrId, Dataset};

use crate::params::TindParams;

/// Magic bytes identifying a serialized checkpoint, including a format
/// version.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"TINDCP\x00\x01";

fn corrupt(msg: impl Into<String>) -> BinIoError {
    BinIoError::Corrupt(msg.into())
}

/// A digest of the search parameters a run was started with. Resuming
/// requires identical parameters; otherwise completed and pending queries
/// would be answered under different definitions.
pub fn params_digest(params: &TindParams) -> u64 {
    let mut buf = BytesMut::new();
    buf.put_f64(params.eps);
    put_varint(&mut buf, u64::from(params.delta));
    put_weight_fn(&mut buf, &params.weights);
    tind_model::hash::hash_bytes(&buf)
}

/// Persistent snapshot of an all-pairs run's progress.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Fingerprint of the dataset the run was started over.
    pub dataset_fingerprint: u64,
    /// Digest of the (ε, δ, w) parameters (see [`params_digest`]).
    pub params_digest: u64,
    /// Total number of query attributes in the run.
    pub total_queries: usize,
    /// Query ids whose search finished (successfully or poisoned),
    /// sorted ascending.
    pub completed: Vec<AttrId>,
    /// Subset of `completed` whose search panicked and was quarantined,
    /// sorted ascending.
    pub poisoned: Vec<AttrId>,
    /// Pairs discovered by the completed queries, sorted.
    pub pairs: Vec<(AttrId, AttrId)>,
    /// Algorithm-2 validations accumulated by the completed queries.
    pub validations_run: usize,
}

impl Checkpoint {
    /// An empty checkpoint for a fresh run over `dataset`.
    pub fn fresh(dataset: &Dataset, params: &TindParams) -> Self {
        Checkpoint {
            dataset_fingerprint: dataset_fingerprint(dataset),
            params_digest: params_digest(params),
            total_queries: dataset.len(),
            completed: Vec::new(),
            poisoned: Vec::new(),
            pairs: Vec::new(),
            validations_run: 0,
        }
    }

    /// Whether every query has completed.
    pub fn is_complete(&self) -> bool {
        self.completed.len() == self.total_queries
    }

    /// Verifies that this checkpoint belongs to `dataset` searched under
    /// `params`; a mismatch means the operator pointed a resume at the
    /// wrong file, and blindly continuing would corrupt the result set.
    pub fn verify_matches(
        &self,
        dataset: &Dataset,
        params: &TindParams,
    ) -> Result<(), BinIoError> {
        if self.dataset_fingerprint != dataset_fingerprint(dataset) {
            return Err(corrupt(
                "checkpoint fingerprint does not match the dataset (wrong or stale checkpoint)",
            ));
        }
        if self.params_digest != params_digest(params) {
            return Err(corrupt(
                "checkpoint was created under different search parameters (ε, δ, or weights)",
            ));
        }
        if self.total_queries != dataset.len() {
            return Err(corrupt("checkpoint query count does not match the dataset"));
        }
        Ok(())
    }

    /// Serializes the checkpoint.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64 + 4 * self.completed.len() + 8 * self.pairs.len());
        buf.put_slice(CHECKPOINT_MAGIC);
        buf.put_u64_le(self.dataset_fingerprint);
        buf.put_u64_le(self.params_digest);
        put_varint(&mut buf, self.total_queries as u64);
        put_varint(&mut buf, self.validations_run as u64);
        put_id_set(&mut buf, &self.completed);
        put_id_set(&mut buf, &self.poisoned);
        put_varint(&mut buf, self.pairs.len() as u64);
        let mut prev_lhs = 0u64;
        for &(lhs, rhs) in &self.pairs {
            put_varint(&mut buf, u64::from(lhs) - prev_lhs);
            prev_lhs = u64::from(lhs);
            put_varint(&mut buf, u64::from(rhs));
        }
        checksum::append_trailer(&mut buf);
        buf.freeze()
    }

    /// Deserializes a checkpoint written by [`Checkpoint::encode`],
    /// verifying magic, version, and checksum trailer.
    pub fn decode(bytes: Bytes) -> Result<Checkpoint, BinIoError> {
        check_magic(&bytes, CHECKPOINT_MAGIC, "checkpoint")?;
        let mut buf = checksum::verify_and_strip(bytes)?;
        buf.advance(CHECKPOINT_MAGIC.len());
        if buf.remaining() < 16 {
            return Err(corrupt("truncated checkpoint header"));
        }
        let dataset_fingerprint = buf.get_u64_le();
        let params_digest = buf.get_u64_le();
        let total_queries = get_varint(&mut buf)? as usize;
        let validations_run = get_varint(&mut buf)? as usize;
        let completed = get_id_set(&mut buf, total_queries)?;
        let poisoned = get_id_set(&mut buf, total_queries)?;
        let num_pairs = get_varint(&mut buf)? as usize;
        let mut pairs = Vec::with_capacity(num_pairs.min(1 << 20));
        let mut prev = (0u64, 0u64);
        for _ in 0..num_pairs {
            let lhs = prev.0 + get_varint(&mut buf)?;
            let rhs = get_varint(&mut buf)?;
            if (lhs, rhs) <= prev && !pairs.is_empty() {
                return Err(corrupt("checkpoint pairs out of order"));
            }
            if lhs >= total_queries as u64 || rhs >= total_queries as u64 {
                return Err(corrupt("checkpoint pair id outside dataset"));
            }
            prev = (lhs, rhs);
            pairs.push((lhs as AttrId, rhs as AttrId));
        }
        if buf.has_remaining() {
            return Err(corrupt("trailing bytes after checkpoint"));
        }
        for &p in &poisoned {
            if completed.binary_search(&p).is_err() {
                return Err(corrupt("poisoned query not marked completed"));
            }
        }
        Ok(Checkpoint {
            dataset_fingerprint,
            params_digest,
            total_queries,
            completed,
            poisoned,
            pairs,
            validations_run,
        })
    }

    /// Atomically writes the checkpoint to `path` (temp file + rename, so
    /// an interrupted write never clobbers the previous checkpoint).
    pub fn write_file(&self, path: &Path) -> Result<(), BinIoError> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.encode())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads a checkpoint from `path`.
    pub fn read_file(path: &Path) -> Result<Checkpoint, BinIoError> {
        let raw = std::fs::read(path)?;
        Checkpoint::decode(Bytes::from(raw))
    }
}

/// Encodes a sorted, duplicate-free id set (count + delta varints).
fn put_id_set(buf: &mut BytesMut, ids: &[AttrId]) {
    put_varint(buf, ids.len() as u64);
    let mut prev = 0u64;
    for &id in ids {
        put_varint(buf, u64::from(id) - prev);
        prev = u64::from(id);
    }
}

/// Decodes a sorted id set, rejecting duplicates and out-of-range ids.
fn get_id_set(buf: &mut Bytes, total: usize) -> Result<Vec<AttrId>, BinIoError> {
    let len = get_varint(buf)? as usize;
    if len > total {
        return Err(corrupt("id set larger than dataset"));
    }
    let mut out = Vec::with_capacity(len);
    let mut acc = 0u64;
    for i in 0..len {
        let d = get_varint(buf)?;
        if i > 0 && d == 0 {
            return Err(corrupt("duplicate id in checkpoint set"));
        }
        acc += d;
        if acc >= total as u64 {
            return Err(corrupt("checkpoint id outside dataset"));
        }
        out.push(acc as AttrId);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tind_model::{DatasetBuilder, Timeline};

    fn dataset() -> Arc<Dataset> {
        let mut b = DatasetBuilder::new(Timeline::new(40));
        b.add_attribute("a", &[(0, vec!["1"])], 39);
        b.add_attribute("b", &[(0, vec!["1", "2"])], 39);
        b.add_attribute("c", &[(0, vec!["1", "2", "3"])], 39);
        Arc::new(b.build())
    }

    fn sample_checkpoint() -> Checkpoint {
        let d = dataset();
        let mut cp = Checkpoint::fresh(&d, &TindParams::paper_default());
        cp.completed = vec![0, 2];
        cp.poisoned = vec![2];
        cp.pairs = vec![(0, 1), (0, 2)];
        cp.validations_run = 17;
        cp
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let cp = sample_checkpoint();
        let decoded = Checkpoint::decode(cp.encode()).expect("decodes");
        assert_eq!(decoded, cp);
    }

    #[test]
    fn file_roundtrip_is_atomic_on_path() {
        let dir = std::env::temp_dir().join("tind-core-checkpoint-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("run.tcp");
        let cp = sample_checkpoint();
        cp.write_file(&path).expect("writes");
        assert!(!path.with_extension("tmp").exists(), "temp file renamed away");
        assert_eq!(Checkpoint::read_file(&path).expect("reads"), cp);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_and_bit_flips_are_rejected() {
        let bytes = sample_checkpoint().encode();
        for cut in [0usize, 4, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(Checkpoint::decode(bytes.slice(0..cut)).is_err(), "cut at {cut}");
        }
        let clean = bytes.to_vec();
        for bit in (0..clean.len() * 8).step_by(7) {
            let mut bad = clean.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(Checkpoint::decode(Bytes::from(bad)).is_err(), "bit {bit}");
        }
    }

    #[test]
    fn mismatched_dataset_or_params_is_refused() {
        let d = dataset();
        let p = TindParams::paper_default();
        let cp = Checkpoint::fresh(&d, &p);
        cp.verify_matches(&d, &p).expect("matches itself");

        let mut other = DatasetBuilder::new(Timeline::new(40));
        other.add_attribute("x", &[(0, vec!["9"])], 39);
        let other = other.build();
        assert!(cp.verify_matches(&other, &p).is_err(), "wrong dataset refused");

        let p2 = TindParams::weighted(5.0, 7, tind_model::WeightFn::constant_one());
        assert!(cp.verify_matches(&d, &p2).is_err(), "wrong params refused");
    }

    #[test]
    fn params_digest_distinguishes_all_three_components() {
        let tl = Timeline::new(20);
        let base = TindParams::paper_default();
        let mut eps = base.clone();
        eps.eps = 4.0;
        let mut delta = base.clone();
        delta.delta = 8;
        let weights = TindParams::weighted(3.0, 7, tind_model::WeightFn::linear(tl));
        let d0 = params_digest(&base);
        assert_eq!(d0, params_digest(&base.clone()));
        assert_ne!(d0, params_digest(&eps));
        assert_ne!(d0, params_digest(&delta));
        assert_ne!(d0, params_digest(&weights));
    }

    #[test]
    fn semantic_garbage_is_rejected() {
        // Poisoned id not in completed.
        let mut cp = sample_checkpoint();
        cp.poisoned = vec![1];
        assert!(Checkpoint::decode(cp.encode()).is_err());
        // Pair id outside the dataset.
        let mut cp = sample_checkpoint();
        cp.pairs = vec![(0, 9)];
        assert!(Checkpoint::decode(cp.encode()).is_err());
    }
}
