//! tIND validation (Section 4.3, Algorithm 2).
//!
//! The naive validator checks δ-containment at every timestamp — `O(n)`
//! containment checks. Algorithm 2 instead partitions the timeline into
//! intervals within which (a) `Q` has a single version and (b) the
//! δ-window union `A[[t-δ, t+δ]]` is provably constant, so one containment
//! check per interval suffices. Interval boundaries are the change points of
//! `Q` plus each change point of `A` shifted by ±δ (the `V_A^δ` of the
//! paper). A sliding window over `A`'s versions makes the sequence of
//! checks amortized linear in the number of versions.

use tind_model::hash::FastMap;
use tind_model::{AttributeHistory, Interval, Timeline, Timestamp, ValueId};

use crate::params::TindParams;

/// Whether `Q[t] ⊆ A[[t-δ, t+δ]]` (Definition 3.4). Direct evaluation;
/// meant for spot checks and documentation, not hot loops.
pub fn delta_contained_at(
    q: &AttributeHistory,
    a: &AttributeHistory,
    t: Timestamp,
    delta: u32,
    timeline: Timeline,
) -> bool {
    let qv = q.values_at(t);
    if qv.is_empty() {
        return true;
    }
    let window = timeline.delta_window(t, delta);
    let av = a.values_in(window);
    tind_model::value::is_subset(qv, &av)
}

/// Reference validator: sums violation weights timestamp by timestamp.
/// Quadratic-ish and allocation-heavy — used to cross-check Algorithm 2 in
/// tests and nowhere else.
pub fn naive_violation_weight(
    q: &AttributeHistory,
    a: &AttributeHistory,
    params: &TindParams,
    timeline: Timeline,
) -> f64 {
    timeline
        .iter()
        .filter(|&t| !delta_contained_at(q, a, t, params.delta, timeline))
        .map(|t| params.weights.weight(t))
        .sum()
}

/// Reference validity check via [`naive_violation_weight`].
pub fn naive_validate(
    q: &AttributeHistory,
    a: &AttributeHistory,
    params: &TindParams,
    timeline: Timeline,
) -> bool {
    params.within_budget(naive_violation_weight(q, a, params, timeline))
}

/// Sliding union of `A`'s versions over a monotonically advancing window.
///
/// Tracks, for every value, in how many window-overlapping versions it
/// occurs; a value is in the union while its count is positive.
struct WindowUnion<'a> {
    a: &'a AttributeHistory,
    counts: FastMap<ValueId, u32>,
    /// Version index range currently overlapping the window.
    lo: usize,
    hi: usize,
}

impl<'a> WindowUnion<'a> {
    fn new(a: &'a AttributeHistory) -> Self {
        WindowUnion { a, counts: FastMap::default(), lo: 0, hi: 0 }
    }

    /// Advances the window to `[ws, we]`. Both bounds must be monotonically
    /// non-decreasing across calls.
    fn advance(&mut self, ws: Timestamp, we: Timestamp) {
        let versions = self.a.versions();
        // Admit versions that start within the new window end.
        while self.hi < versions.len() && versions[self.hi].start <= we {
            for &v in &versions[self.hi].values {
                *self.counts.entry(v).or_insert(0) += 1;
            }
            self.hi += 1;
        }
        // Retire versions whose validity ended before the new window start.
        while self.lo < self.hi && self.a.version_validity(self.lo).end < ws {
            for &v in &versions[self.lo].values {
                match self.counts.get_mut(&v) {
                    Some(c) if *c > 1 => *c -= 1,
                    Some(_) => {
                        self.counts.remove(&v);
                    }
                    None => unreachable!("retiring a value that was never admitted"),
                }
            }
            self.lo += 1;
        }
    }

    /// Whether every value of `set` is in the current union. An `A` that is
    /// entirely unobservable in the window yields an empty union.
    fn contains_all(&self, set: &[ValueId]) -> bool {
        if set.len() > self.counts.len() {
            return false;
        }
        set.iter().all(|v| self.counts.contains_key(v))
    }
}

/// The interval partition of Algorithm 2: boundaries where δ-containment may
/// change. Returns sorted, deduplicated interval start points (always
/// beginning with 0); interval `i` spans `[starts[i], starts[i+1] - 1]`,
/// the final one ending at `n - 1`.
pub fn critical_starts(
    q: &AttributeHistory,
    a: &AttributeHistory,
    delta: u32,
    timeline: Timeline,
) -> Vec<Timestamp> {
    let n = timeline.len();
    let mut starts: Vec<Timestamp> = Vec::with_capacity(q.versions().len() + 2 * a.versions().len() + 3);
    starts.push(0);
    // Q's version structure changes at its change points (incl. its
    // disappearance at last_observed + 1).
    starts.extend(q.change_points(n));
    // A's window union changes when a change point enters (t = c - δ) or a
    // previous run fully leaves (t = c + δ) the window.
    for c in a.change_points(n) {
        starts.push(c.saturating_sub(delta));
        let enter = c.saturating_add(delta);
        if enter < n {
            starts.push(enter);
        }
    }
    starts.retain(|&t| t < n);
    starts.sort_unstable();
    starts.dedup();
    starts
}

/// Computes the exact violation weight of the candidate `Q ⊆_{w,ε,δ} A`
/// via Algorithm 2. If `early_exit` is true, returns as soon as the budget
/// is provably exceeded (the returned value is then only a lower bound).
pub fn violation_weight(
    q: &AttributeHistory,
    a: &AttributeHistory,
    params: &TindParams,
    timeline: Timeline,
    early_exit: bool,
) -> f64 {
    let n = timeline.len();
    let starts = critical_starts(q, a, params.delta, timeline);
    let mut window = WindowUnion::new(a);
    let mut violation = 0.0;
    for (i, &s) in starts.iter().enumerate() {
        let e = starts.get(i + 1).map_or(n - 1, |&next| next - 1);
        let qv = q.values_at(s);
        if qv.is_empty() {
            continue; // unobservable or genuinely empty Q never violates
        }
        let ws = s.saturating_sub(params.delta);
        let we = s.saturating_add(params.delta).min(n - 1);
        window.advance(ws, we);
        if !window.contains_all(qv) {
            violation += params.weights.interval_weight(Interval::new(s, e));
            if early_exit && params.exceeds_budget(violation) {
                return violation;
            }
        }
    }
    violation
}

/// Whether `Q ⊆_{w,ε,δ} A` holds (Definition 3.6), via Algorithm 2.
///
/// # Examples
///
/// ```
/// use tind_core::validate::validate;
/// use tind_core::TindParams;
/// use tind_model::{DatasetBuilder, Timeline, WeightFn};
///
/// let tl = Timeline::new(20);
/// let mut b = DatasetBuilder::new(tl);
/// b.add_attribute("q", &[(0, vec!["x"]), (5, vec!["x", "new"])], 19);
/// b.add_attribute("a", &[(0, vec!["x"]), (8, vec!["x", "new"])], 19); // 3 days late
/// let d = b.build();
///
/// // Strictly, the 3-day lag violates containment ...
/// assert!(!validate(d.attribute(0), d.attribute(1), &TindParams::strict(), tl));
/// // ... but δ = 3 heals it (Definition 3.4/3.5).
/// let relaxed = TindParams::weighted(0.0, 3, WeightFn::constant_one());
/// assert!(validate(d.attribute(0), d.attribute(1), &relaxed, tl));
/// ```
pub fn validate(
    q: &AttributeHistory,
    a: &AttributeHistory,
    params: &TindParams,
    timeline: Timeline,
) -> bool {
    params.within_budget(violation_weight(q, a, params, timeline, true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tind_model::{DatasetBuilder, WeightFn};

    /// One attribute spec: (name, versions, last_observed).
    type AttrSpec<'a> = (&'a str, &'a [(Timestamp, &'a [&'a str])], Timestamp);

    /// Figure 2's running example, re-created: Q with versions over a short
    /// timeline, candidates with and without violations.
    fn build(timeline_len: u32, specs: &[AttrSpec<'_>]) -> (tind_model::Dataset, Timeline) {
        let tl = Timeline::new(timeline_len);
        let mut b = DatasetBuilder::new(tl);
        for (name, versions, last) in specs {
            let versions: Vec<(Timestamp, Vec<&str>)> =
                versions.iter().map(|(t, vs)| (*t, vs.to_vec())).collect();
            b.add_attribute(name, &versions, *last);
        }
        (b.build(), tl)
    }

    #[test]
    fn strict_tind_requires_containment_everywhere() {
        let (d, tl) = build(
            10,
            &[
                ("q", &[(0, &["a", "b"])], 9),
                ("good", &[(0, &["a", "b", "c"])], 9),
                ("bad", &[(0, &["a", "b"]), (5, &["a"])], 9),
            ],
        );
        let p = TindParams::strict();
        assert!(validate(d.attribute(0), d.attribute(1), &p, tl));
        assert!(!validate(d.attribute(0), d.attribute(2), &p, tl));
        assert!(naive_validate(d.attribute(0), d.attribute(1), &p, tl));
        assert!(!naive_validate(d.attribute(0), d.attribute(2), &p, tl));
    }

    #[test]
    fn eps_budget_tolerates_brief_errors() {
        // "bad" is missing "b" for timestamps 5..=9 (5 violations).
        let (d, tl) = build(
            10,
            &[("q", &[(0, &["a", "b"])], 9), ("bad", &[(0, &["a", "b"]), (5, &["a"])], 9)],
        );
        let q = d.attribute(0);
        let a = d.attribute(1);
        assert!((naive_violation_weight(q, a, &TindParams::strict(), tl) - 5.0).abs() < 1e-9);
        let lenient = TindParams::weighted(5.0, 0, WeightFn::constant_one());
        assert!(validate(q, a, &lenient, tl));
        let tight = TindParams::weighted(4.0, 0, WeightFn::constant_one());
        assert!(!validate(q, a, &tight, tl));
    }

    #[test]
    fn exact_budget_boundary_is_valid() {
        let (d, tl) = build(
            10,
            &[("q", &[(0, &["a"])], 9), ("a", &[(0, &[] as &[&str]), (3, &["a"])], 9)],
        );
        // Violated at t = 0, 1, 2 → weight 3.
        let p = TindParams::weighted(3.0, 0, WeightFn::constant_one());
        assert!(validate(d.attribute(0), d.attribute(1), &p, tl));
    }

    #[test]
    fn delta_heals_temporal_shifts() {
        // Q gains value "new" at t=5; A follows at t=7 (delay of 2).
        let (d, tl) = build(
            20,
            &[
                ("q", &[(0, &["x"]), (5, &["x", "new"])], 19),
                ("a", &[(0, &["x"]), (7, &["x", "new"])], 19),
            ],
        );
        let q = d.attribute(0);
        let a = d.attribute(1);
        // Without δ: violated at t = 5, 6.
        let strict = TindParams::strict();
        assert!(!validate(q, a, &strict, tl));
        assert!((naive_violation_weight(q, a, &strict, tl) - 2.0).abs() < 1e-9);
        // δ = 2 heals it: at t = 5, window [3,7] includes A[7] ∋ "new".
        let healed = TindParams::weighted(0.0, 2, WeightFn::constant_one());
        assert!(validate(q, a, &healed, tl));
        assert!(naive_validate(q, a, &healed, tl));
        // δ = 1 is not enough: at t = 5, window [4,6] misses it.
        let partial = TindParams::weighted(0.0, 1, WeightFn::constant_one());
        assert!(!validate(q, a, &partial, tl));
        assert!((naive_violation_weight(q, a, &partial, tl) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn delta_looks_backward_too() {
        // A had the value early and lost it; Q requires it later.
        let (d, tl) = build(
            20,
            &[
                ("q", &[(10, &["v"])], 10),
                ("a", &[(0, &["v"]), (8, &["w"])], 19),
            ],
        );
        let q = d.attribute(0);
        let a = d.attribute(1);
        // At t=10, window [10-3, 10+3] = [7,13] includes A[7] ∋ v.
        let p3 = TindParams::weighted(0.0, 3, WeightFn::constant_one());
        assert!(validate(q, a, &p3, tl));
        let p2 = TindParams::weighted(0.0, 2, WeightFn::constant_one());
        assert!(!validate(q, a, &p2, tl), "window [8,12] misses v (A changed at 8)");
    }

    #[test]
    fn unobservable_query_periods_never_violate() {
        let (d, tl) = build(
            30,
            &[("q", &[(10, &["z"])], 15), ("a", &[(10, &["z"])], 15)],
        );
        let p = TindParams::strict();
        assert!(validate(d.attribute(0), d.attribute(1), &p, tl));
        assert_eq!(naive_violation_weight(d.attribute(0), d.attribute(1), &p, tl), 0.0);
    }

    #[test]
    fn rhs_disappearance_causes_violations() {
        // A vanishes at t=5; Q continues to exist until 9.
        let (d, tl) = build(
            10,
            &[("q", &[(0, &["k"])], 9), ("a", &[(0, &["k"])], 4)],
        );
        let q = d.attribute(0);
        let a = d.attribute(1);
        let strict = TindParams::strict();
        // Violated at t = 5..=9.
        assert!((naive_violation_weight(q, a, &strict, tl) - 5.0).abs() < 1e-9);
        assert!(!validate(q, a, &strict, tl));
        // δ = 5 reaches back to A[4] from t = 9.
        let healed = TindParams::weighted(0.0, 5, WeightFn::constant_one());
        assert!(validate(q, a, &healed, tl));
    }

    #[test]
    fn exponential_weights_discount_old_violations() {
        let tl_len = 50;
        // Violation only at t = 0..=4 (A starts empty, gains value at 5).
        let (d, tl) = build(
            tl_len,
            &[("q", &[(0, &["v"])], 49), ("a", &[(0, &[] as &[&str]), (5, &["v"])], 49)],
        );
        let q = d.attribute(0);
        let a = d.attribute(1);
        let w = WeightFn::exponential(0.5, tl);
        // Old violations weigh ~nothing under decay.
        let decayed = TindParams::weighted(1e-9, 0, w);
        assert!(validate(q, a, &decayed, tl));
        // Same ε with constant weights fails (5 full violations).
        let flat = TindParams::weighted(1e-9, 0, WeightFn::constant_one());
        assert!(!validate(q, a, &flat, tl));
    }

    #[test]
    fn algorithm2_matches_naive_on_figure2_style_histories() {
        let (d, tl) = build(
            30,
            &[
                ("q", &[(0, &["ita", "pol"]), (8, &["ita", "pol", "usa"]), (15, &["ita"])], 25),
                ("a", &[(2, &["ita", "pol", "ger"]), (10, &["ita", "usa", "pol"]), (20, &["ita", "fra"])], 29),
            ],
        );
        let q = d.attribute(0);
        let a = d.attribute(1);
        for delta in [0u32, 1, 2, 5, 10, 40] {
            for eps in [0.0, 1.0, 3.0, 10.0] {
                let p = TindParams::weighted(eps, delta, WeightFn::constant_one());
                let fast = violation_weight(q, a, &p, tl, false);
                let naive = naive_violation_weight(q, a, &p, tl);
                assert!(
                    (fast - naive).abs() < 1e-9,
                    "δ={delta}: algorithm2 {fast} vs naive {naive}"
                );
                assert_eq!(validate(q, a, &p, tl), naive_validate(q, a, &p, tl));
            }
        }
    }

    #[test]
    fn critical_starts_are_sorted_unique_and_cover_zero() {
        let (d, tl) = build(
            30,
            &[("q", &[(3, &["a"]), (9, &["b"])], 20), ("a", &[(5, &["a"])], 25)],
        );
        let starts = critical_starts(d.attribute(0), d.attribute(1), 2, tl);
        assert_eq!(starts[0], 0);
        assert!(starts.windows(2).all(|w| w[0] < w[1]));
        assert!(starts.iter().all(|&t| t < 30));
        // Q's change points 3, 9, 21 present.
        for t in [3, 9, 21] {
            assert!(starts.contains(&t), "missing Q change point {t}");
        }
        // A's change points 5, 26 shifted by ±2.
        for t in [3, 7, 24, 28] {
            assert!(starts.contains(&t), "missing shifted A change point {t}");
        }
    }

    #[test]
    fn early_exit_returns_lower_bound() {
        let (d, tl) = build(
            100,
            &[("q", &[(0, &["v"])], 99), ("a", &[(0, &["other"])], 99)],
        );
        let p = TindParams::strict();
        let bounded = violation_weight(d.attribute(0), d.attribute(1), &p, tl, true);
        let exact = violation_weight(d.attribute(0), d.attribute(1), &p, tl, false);
        assert!(p.exceeds_budget(bounded));
        assert!((exact - 100.0).abs() < 1e-9);
        assert!(bounded <= exact);
    }

    #[test]
    fn reflexivity_holds_for_all_params() {
        let (d, tl) = build(
            20,
            &[("q", &[(2, &["a", "b"]), (9, &["c"])], 17)],
        );
        let q = d.attribute(0);
        for p in [
            TindParams::strict(),
            TindParams::paper_default(),
            TindParams::eps_relaxed(0.0, tl),
            TindParams::weighted(0.0, 3, WeightFn::exponential(0.9, tl)),
        ] {
            assert!(validate(q, q, &p, tl), "reflexivity failed for {p:?}");
        }
    }
}
