//! tIND validation (Section 4.3, Algorithm 2).
//!
//! The naive validator checks δ-containment at every timestamp — `O(n)`
//! containment checks. Algorithm 2 instead partitions the timeline into
//! intervals within which (a) `Q` has a single version and (b) the
//! δ-window union `A[[t-δ, t+δ]]` is provably constant, so one containment
//! check per interval suffices. Interval boundaries are the change points of
//! `Q` plus each change point of `A` shifted by ±δ (the `V_A^δ` of the
//! paper). A sliding window over `A`'s versions makes the sequence of
//! checks amortized linear in the number of versions.
//!
//! Three implementation tiers live here, from slow-and-obvious to fast:
//!
//! 1. [`naive_violation_weight`] — per-timestamp reference, tests only;
//! 2. [`violation_weight`] / [`validate`] — straightforward Algorithm 2
//!    with a per-pair hash-map window union; the mid-tier reference the
//!    differential suite pins the kernel against, and the convenient entry
//!    point for one-off validations;
//! 3. [`QueryPlan`] + [`ValidationScratch`] — the plan-based kernel the
//!    hot paths (`search`, `search_batch`, `reverse`, `nary`, `allpairs`)
//!    use. The plan is built once per query and reused across every
//!    candidate; the scratch is reused across pairs *and* queries on the
//!    same worker thread, so the per-pair cost is allocation-free: a
//!    three-way merge of presorted critical-start streams, a dense
//!    generation-stamped counting window, and O(1) prefix-sum weights
//!    ([`WeightTable`]) with a two-sided early exit (prove-invalid when
//!    the violation exceeds ε, prove-valid when violation plus the
//!    remaining suffix weight cannot reach ε).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tind_model::hash::FastMap;
use tind_model::{
    AttrId, AttributeHistory, Interval, Timeline, Timestamp, ValueId, WeightFn, WeightTable,
};

use crate::params::TindParams;

/// Process-wide count of quarantined window-union underflows. Always zero
/// unless an [`AttributeHistory`] invariant is broken (debug builds assert
/// instead of counting past the first).
static INVARIANT_BREACHES: AtomicU64 = AtomicU64::new(0);

/// Number of window-union underflows quarantined so far in this process
/// (see [`ValidationCounters::invariant_breaches`] for per-scratch counts).
pub fn invariant_breaches() -> u64 {
    INVARIANT_BREACHES.load(Ordering::Relaxed)
}

/// Records a window-union underflow — a retirement of a value that was
/// never admitted, which only a broken history ordering invariant (or a
/// non-monotone window advance) can produce. Debug builds fail fast with a
/// typed assertion; release builds count the breach and let the caller skip
/// the retirement, degrading that one pair instead of killing a worker.
#[cold]
fn window_underflow(v: ValueId) {
    INVARIANT_BREACHES.fetch_add(1, Ordering::Relaxed);
    debug_assert!(
        false,
        "window-union underflow: value {v} retired but never admitted \
         (broken AttributeHistory ordering invariant or non-monotone window)"
    );
}

/// Whether `Q[t] ⊆ A[[t-δ, t+δ]]` (Definition 3.4). Direct evaluation;
/// meant for spot checks and documentation, not hot loops.
pub fn delta_contained_at(
    q: &AttributeHistory,
    a: &AttributeHistory,
    t: Timestamp,
    delta: u32,
    timeline: Timeline,
) -> bool {
    let qv = q.values_at(t);
    if qv.is_empty() {
        return true;
    }
    let window = timeline.delta_window(t, delta);
    let av = a.values_in(window);
    tind_model::value::is_subset(qv, &av)
}

/// Reference validator: sums violation weights timestamp by timestamp.
/// Quadratic-ish and allocation-heavy — used to cross-check Algorithm 2 in
/// tests and nowhere else.
pub fn naive_violation_weight(
    q: &AttributeHistory,
    a: &AttributeHistory,
    params: &TindParams,
    timeline: Timeline,
) -> f64 {
    timeline
        .iter()
        .filter(|&t| !delta_contained_at(q, a, t, params.delta, timeline))
        .map(|t| params.weights.weight(t))
        .sum()
}

/// Reference validity check via [`naive_violation_weight`].
pub fn naive_validate(
    q: &AttributeHistory,
    a: &AttributeHistory,
    params: &TindParams,
    timeline: Timeline,
) -> bool {
    params.within_budget(naive_violation_weight(q, a, params, timeline))
}

/// Sliding union of `A`'s versions over a monotonically advancing window.
///
/// Tracks, for every value, in how many window-overlapping versions it
/// occurs; a value is in the union while its count is positive.
struct WindowUnion<'a> {
    a: &'a AttributeHistory,
    counts: FastMap<ValueId, u32>,
    /// Version index range currently overlapping the window.
    lo: usize,
    hi: usize,
}

impl<'a> WindowUnion<'a> {
    fn new(a: &'a AttributeHistory) -> Self {
        WindowUnion { a, counts: FastMap::default(), lo: 0, hi: 0 }
    }

    /// Advances the window to `[ws, we]`. Both bounds must be monotonically
    /// non-decreasing across calls.
    fn advance(&mut self, ws: Timestamp, we: Timestamp) {
        let versions = self.a.versions();
        // Admit versions that start within the new window end.
        while self.hi < versions.len() && versions[self.hi].start <= we {
            for &v in &versions[self.hi].values {
                *self.counts.entry(v).or_insert(0) += 1;
            }
            self.hi += 1;
        }
        // Retire versions whose validity ended before the new window start.
        while self.lo < self.hi && self.a.version_validity(self.lo).end < ws {
            for &v in &versions[self.lo].values {
                match self.counts.get_mut(&v) {
                    Some(c) if *c > 1 => *c -= 1,
                    Some(_) => {
                        self.counts.remove(&v);
                    }
                    None => window_underflow(v),
                }
            }
            self.lo += 1;
        }
    }

    /// Whether every value of `set` is in the current union. An `A` that is
    /// entirely unobservable in the window yields an empty union.
    fn contains_all(&self, set: &[ValueId]) -> bool {
        if set.len() > self.counts.len() {
            return false;
        }
        set.iter().all(|v| self.counts.contains_key(v))
    }
}

/// The interval partition of Algorithm 2: boundaries where δ-containment may
/// change. Returns sorted, deduplicated interval start points (always
/// beginning with 0); interval `i` spans `[starts[i], starts[i+1] - 1]`,
/// the final one ending at `n - 1`.
pub fn critical_starts(
    q: &AttributeHistory,
    a: &AttributeHistory,
    delta: u32,
    timeline: Timeline,
) -> Vec<Timestamp> {
    let n = timeline.len();
    let mut starts: Vec<Timestamp> = Vec::with_capacity(q.versions().len() + 2 * a.versions().len() + 3);
    starts.push(0);
    // Q's version structure changes at its change points (incl. its
    // disappearance at last_observed + 1).
    starts.extend(q.change_points(n));
    // A's window union changes when a change point enters (t = c - δ) or a
    // previous run fully leaves (t = c + δ) the window.
    for c in a.change_points(n) {
        starts.push(c.saturating_sub(delta));
        let enter = c.saturating_add(delta);
        if enter < n {
            starts.push(enter);
        }
    }
    starts.retain(|&t| t < n);
    starts.sort_unstable();
    starts.dedup();
    starts
}

/// Computes the exact violation weight of the candidate `Q ⊆_{w,ε,δ} A`
/// via Algorithm 2. If `early_exit` is true, returns as soon as the budget
/// is provably exceeded (the returned value is then only a lower bound).
pub fn violation_weight(
    q: &AttributeHistory,
    a: &AttributeHistory,
    params: &TindParams,
    timeline: Timeline,
    early_exit: bool,
) -> f64 {
    let n = timeline.len();
    let starts = critical_starts(q, a, params.delta, timeline);
    let mut window = WindowUnion::new(a);
    let mut violation = 0.0;
    for (i, &s) in starts.iter().enumerate() {
        let e = starts.get(i + 1).map_or(n - 1, |&next| next - 1);
        let qv = q.values_at(s);
        if qv.is_empty() {
            continue; // unobservable or genuinely empty Q never violates
        }
        let ws = s.saturating_sub(params.delta);
        let we = s.saturating_add(params.delta).min(n - 1);
        window.advance(ws, we);
        if !window.contains_all(qv) {
            violation += params.weights.interval_weight(Interval::new(s, e));
            if early_exit && params.exceeds_budget(violation) {
                return violation;
            }
        }
    }
    violation
}

/// Whether `Q ⊆_{w,ε,δ} A` holds (Definition 3.6), via Algorithm 2.
///
/// # Examples
///
/// ```
/// use tind_core::validate::validate;
/// use tind_core::TindParams;
/// use tind_model::{DatasetBuilder, Timeline, WeightFn};
///
/// let tl = Timeline::new(20);
/// let mut b = DatasetBuilder::new(tl);
/// b.add_attribute("q", &[(0, vec!["x"]), (5, vec!["x", "new"])], 19);
/// b.add_attribute("a", &[(0, vec!["x"]), (8, vec!["x", "new"])], 19); // 3 days late
/// let d = b.build();
///
/// // Strictly, the 3-day lag violates containment ...
/// assert!(!validate(d.attribute(0), d.attribute(1), &TindParams::strict(), tl));
/// // ... but δ = 3 heals it (Definition 3.4/3.5).
/// let relaxed = TindParams::weighted(0.0, 3, WeightFn::constant_one());
/// assert!(validate(d.attribute(0), d.attribute(1), &relaxed, tl));
/// ```
pub fn validate(
    q: &AttributeHistory,
    a: &AttributeHistory,
    params: &TindParams,
    timeline: Timeline,
) -> bool {
    params.within_budget(violation_weight(q, a, params, timeline, true))
}

/// Deterministic counters accumulated by a [`ValidationScratch`] across
/// every pair it validates. Callers snapshot before a batch of pairs and
/// diff afterwards ([`ValidationCounters::since`]) to attribute counts to
/// one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ValidationCounters {
    /// Pairs validated through the kernel.
    pub validations: u64,
    /// Pairs that ended via the prove-valid early exit: the accumulated
    /// violation plus the remaining suffix weight could no longer exceed ε.
    pub proved_valid_early: u64,
    /// Pairs that ended via the prove-invalid early exit: the accumulated
    /// violation alone already exceeded ε.
    pub proved_invalid_early: u64,
    /// Window-union underflows quarantined in release builds (see
    /// [`invariant_breaches`] for the process-wide count).
    pub invariant_breaches: u64,
}

impl ValidationCounters {
    /// Counter deltas since an earlier snapshot of the same scratch.
    pub fn since(&self, earlier: &ValidationCounters) -> ValidationCounters {
        ValidationCounters {
            validations: self.validations - earlier.validations,
            proved_valid_early: self.proved_valid_early - earlier.proved_valid_early,
            proved_invalid_early: self.proved_invalid_early - earlier.proved_invalid_early,
            invariant_breaches: self.invariant_breaches - earlier.invariant_breaches,
        }
    }
}

/// Reusable per-worker-thread state for the plan-based kernel: the dense
/// counting window union, a cached weight table, and running counters.
///
/// The window union is a pair of arrays indexed by dataset-dense
/// [`ValueId`]s: `counts[v]` is the number of window-overlapping versions
/// containing `v`, valid only while `stamp[v]` equals the current pair's
/// generation. Starting the next pair is a single generation bump — O(1),
/// not O(capacity) — and the `touched` list keeps the per-pair working set
/// explicit (only values actually admitted are ever re-zeroed, so a pair's
/// cost is bounded by what it touches, independent of the dictionary size).
///
/// A scratch left mid-pair by a panicking validation (the all-pairs worker
/// quarantine) is safe to reuse: the next pair's generation bump makes any
/// stale counts invisible.
#[derive(Debug, Default)]
pub struct ValidationScratch {
    counts: Vec<u32>,
    stamp: Vec<u32>,
    generation: u32,
    touched: Vec<ValueId>,
    union_len: usize,
    counters: ValidationCounters,
    cached_weights: Option<(WeightFn, Timeline, WeightTable)>,
}

impl ValidationScratch {
    /// An empty scratch; arrays grow on demand to the largest value id seen.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the running counters.
    pub fn counters(&self) -> ValidationCounters {
        self.counters
    }

    /// The prefix-sum table for `(weights, timeline)`, cached across calls:
    /// consecutive queries under the same parameters (the all-pairs and
    /// batch-search pattern) reuse one table instead of re-accumulating n
    /// sums per query.
    pub fn weight_table(&mut self, weights: &WeightFn, timeline: Timeline) -> WeightTable {
        match &self.cached_weights {
            Some((w, tl, table)) if w == weights && *tl == timeline => table.clone(),
            _ => {
                let table = weights.table(timeline);
                self.cached_weights = Some((weights.clone(), timeline, table.clone()));
                table
            }
        }
    }

    /// Grows the dense arrays to cover ids `< cap`.
    fn ensure_capacity(&mut self, cap: usize) {
        if self.counts.len() < cap {
            self.counts.resize(cap, 0);
            self.stamp.resize(cap, 0);
        }
    }

    /// Starts a fresh pair: O(1) via a generation bump (with an O(capacity)
    /// stamp reset once every `u32::MAX` pairs, amortized to nothing).
    fn begin_pair(&mut self) {
        self.touched.clear();
        self.union_len = 0;
        if self.generation == u32::MAX {
            self.stamp.fill(0);
            self.generation = 0;
        }
        self.generation += 1;
    }

    #[inline]
    fn admit(&mut self, v: ValueId) {
        let i = v as usize;
        if self.stamp[i] != self.generation {
            self.stamp[i] = self.generation;
            self.counts[i] = 0;
            self.touched.push(v);
        }
        if self.counts[i] == 0 {
            self.union_len += 1;
        }
        self.counts[i] += 1;
    }

    #[inline]
    fn retire(&mut self, v: ValueId) {
        let i = v as usize;
        if self.stamp[i] != self.generation || self.counts[i] == 0 {
            self.counters.invariant_breaches += 1;
            window_underflow(v);
            return;
        }
        self.counts[i] -= 1;
        if self.counts[i] == 0 {
            self.union_len -= 1;
        }
    }

    #[inline]
    fn in_union(&self, v: ValueId) -> bool {
        let i = v as usize;
        self.stamp[i] == self.generation && self.counts[i] > 0
    }

    /// Whether every value of the canonical `set` is in the current union.
    #[inline]
    fn contains_all(&self, set: &[ValueId]) -> bool {
        set.len() <= self.union_len && set.iter().all(|&v| self.in_union(v))
    }
}

/// Everything about a validation query `Q` that does not depend on the
/// candidate `A`, precomputed once and reused across candidates:
///
/// * `Q`'s contribution to the critical starts (its change points plus 0),
///   sorted and deduplicated up front;
/// * the value slice valid on each q-interval (no `values_at` binary
///   search per interval per pair);
/// * the prefix-sum [`WeightTable`] for O(1) interval and suffix weights.
///
/// Per candidate, [`QueryPlan::validate`] merges the plan's start stream
/// with `A`'s ±δ-shifted change points on the fly (three presorted streams,
/// no sort, no allocation) and slides the scratch's counting window over
/// `A`'s versions — amortized linear in the two version counts.
///
/// # Examples
///
/// ```
/// use tind_core::validate::{QueryPlan, ValidationScratch};
/// use tind_core::TindParams;
/// use tind_model::{DatasetBuilder, Timeline};
///
/// let tl = Timeline::new(20);
/// let mut b = DatasetBuilder::new(tl);
/// b.add_attribute("q", &[(0, vec!["x"])], 19);
/// b.add_attribute("yes", &[(0, vec!["x", "y"])], 19);
/// b.add_attribute("no", &[(0, vec!["z"])], 19);
/// let d = b.build();
///
/// let params = TindParams::strict();
/// let plan = QueryPlan::new(d.attribute(0), &params, tl);
/// let mut scratch = ValidationScratch::new();
/// assert!(plan.validate(d.attribute(1), &mut scratch));
/// assert!(!plan.validate(d.attribute(2), &mut scratch));
/// assert_eq!(scratch.counters().validations, 2);
/// ```
pub struct QueryPlan<'q> {
    q: &'q AttributeHistory,
    params: TindParams,
    timeline: Timeline,
    table: WeightTable,
    /// `Q`'s critical starts: 0 plus its change points, ascending, `< n`.
    /// Shared so [`QueryPlan::artifacts`] detaches them without a copy.
    q_starts: Arc<Vec<Timestamp>>,
    /// `q_values[i]` is `Q`'s value slice on `[q_starts[i], q_starts[i+1])`.
    q_values: Vec<&'q [ValueId]>,
    /// Dense-array capacity needed for `Q`'s side (max value id + 1).
    q_capacity: usize,
}

/// The query-only precomputation of a [`QueryPlan`], detached from the
/// plan's borrow of the query history so a cache can hold it across
/// requests: the prefix-sum weight table and the critical-start stream.
/// Rebuilding a plan from artifacts skips the O(timeline) table
/// accumulation and the change-point scan; only the per-start value-slice
/// lookups are redone against the live history, so plans built either way
/// are observationally identical.
///
/// Artifacts bind to the exact `(query history, weights, timeline)` they
/// were built from. [`QueryPlan::from_artifacts`] re-verifies the weights
/// and timeline; the *history* binding is the cache owner's contract —
/// evict every entry whose query attribute a dataset delta touched.
#[derive(Debug, Clone)]
pub struct PlanArtifacts {
    weights: WeightFn,
    timeline: Timeline,
    table: WeightTable,
    q_starts: Arc<Vec<Timestamp>>,
    q_capacity: usize,
}

impl PlanArtifacts {
    /// Whether these artifacts were built for `params.weights` over
    /// `timeline` — the two bindings a plan rebuild can verify itself.
    pub fn matches(&self, params: &TindParams, timeline: Timeline) -> bool {
        self.timeline == timeline && self.weights == params.weights
    }

    /// The timeline these artifacts were built over.
    pub fn timeline(&self) -> Timeline {
        self.timeline
    }
}

/// A plan cache consulted by the batched search path at the stage-4
/// plan-build seam (see [`crate::BatchOptions::plans`]): `get` before
/// building, `put` after a miss. Implementations own keying, eviction,
/// and delta-invalidation; verdicts and statistics are identical with or
/// without a source attached — only the plan-build work differs.
pub trait PlanSource: Send + Sync {
    /// Cached artifacts for `(query, params)` over `timeline`, if any.
    fn get(&self, query: AttrId, params: &TindParams, timeline: Timeline)
        -> Option<PlanArtifacts>;
    /// Offers freshly built artifacts for `(query, params)` over `timeline`.
    fn put(&self, query: AttrId, params: &TindParams, timeline: Timeline, artifacts: PlanArtifacts);
}

impl<'q> QueryPlan<'q> {
    /// Builds the plan for `q`, materializing a fresh weight table.
    pub fn new(q: &'q AttributeHistory, params: &TindParams, timeline: Timeline) -> Self {
        Self::with_table(q, params, timeline, params.weights.table(timeline))
    }

    /// Builds the plan for `q` around an existing `table` (built for
    /// `params.weights` over `timeline` — typically from
    /// [`ValidationScratch::weight_table`] so consecutive queries share it).
    pub fn with_table(
        q: &'q AttributeHistory,
        params: &TindParams,
        timeline: Timeline,
        table: WeightTable,
    ) -> Self {
        debug_assert_eq!(table.len(), timeline.len() as usize, "table built for another timeline");
        // The canonical-values invariant documented on
        // `AttributeHistory::values_at` is what lets `contains_all` probe
        // and size-compare without normalizing — enforce it per plan, not
        // per pair.
        debug_assert!(
            q.versions().iter().all(|v| v.values.windows(2).all(|w| w[0] < w[1])),
            "query versions must be canonical (sorted, deduplicated)"
        );
        let n = timeline.len();
        let mut q_starts = Vec::with_capacity(q.versions().len() + 2);
        q_starts.push(0);
        for c in q.change_points(n) {
            // Change points arrive strictly ascending; only the first can
            // collide with the leading 0.
            if c < n && c != *q_starts.last().expect("starts are never empty") {
                q_starts.push(c);
            }
        }
        let q_values: Vec<&[ValueId]> = q_starts.iter().map(|&s| q.values_at(s)).collect();
        let q_capacity = max_value_capacity(q);
        let q_starts = Arc::new(q_starts);
        QueryPlan { q, params: params.clone(), timeline, table, q_starts, q_values, q_capacity }
    }

    /// Rebuilds a plan for `q` from cached [`PlanArtifacts`]. Returns
    /// `None` when the artifacts were built for different weights or a
    /// different timeline (the caller then builds fresh). The caller must
    /// guarantee `q` is the same history the artifacts were built from.
    pub fn from_artifacts(
        q: &'q AttributeHistory,
        params: &TindParams,
        timeline: Timeline,
        artifacts: &PlanArtifacts,
    ) -> Option<QueryPlan<'q>> {
        if !artifacts.matches(params, timeline) {
            return None;
        }
        let q_values: Vec<&[ValueId]> =
            artifacts.q_starts.iter().map(|&s| q.values_at(s)).collect();
        Some(QueryPlan {
            q,
            params: params.clone(),
            timeline,
            table: artifacts.table.clone(),
            q_starts: Arc::clone(&artifacts.q_starts),
            q_values,
            q_capacity: artifacts.q_capacity,
        })
    }

    /// Detaches this plan's query-only precomputation for caching — see
    /// [`PlanArtifacts`]. Cheap: the table and starts are shared, not
    /// copied.
    pub fn artifacts(&self) -> PlanArtifacts {
        PlanArtifacts {
            weights: self.params.weights.clone(),
            timeline: self.timeline,
            table: self.table.clone(),
            q_starts: Arc::clone(&self.q_starts),
            q_capacity: self.q_capacity,
        }
    }

    /// The query this plan was built for.
    pub fn query(&self) -> &AttributeHistory {
        self.q
    }

    /// The parameters this plan was built for.
    pub fn params(&self) -> &TindParams {
        &self.params
    }

    /// Whether `Q ⊆_{w,ε,δ} A` holds, with the two-sided early exit.
    /// Verdicts are identical to [`validate`]; only the work differs.
    pub fn validate(&self, a: &AttributeHistory, scratch: &mut ValidationScratch) -> bool {
        self.run(a, scratch, true).0
    }

    /// The exact violation weight of `Q ⊆_{w,ε,δ} A` (no early exits),
    /// matching [`violation_weight`] with `early_exit = false`.
    pub fn violation_weight(&self, a: &AttributeHistory, scratch: &mut ValidationScratch) -> f64 {
        self.run(a, scratch, false).1
    }

    /// Algorithm 2 over the merged critical-start streams. Returns the
    /// verdict and the accumulated violation weight (exact only when
    /// `early_exit` is false or no exit fired).
    fn run(
        &self,
        a: &AttributeHistory,
        scratch: &mut ValidationScratch,
        early_exit: bool,
    ) -> (bool, f64) {
        let n = self.timeline.len();
        let delta = self.params.delta;
        scratch.counters.validations += 1;
        scratch.ensure_capacity(self.q_capacity.max(max_value_capacity(a)));
        scratch.begin_pair();

        // A's change stream: version starts plus its disappearance point,
        // strictly ascending. Consumed at two offsets (−δ and +δ) by the
        // merge below, mirroring `critical_starts` without materializing.
        let versions = a.versions();
        let a_changes = versions.len() + usize::from(a.last_observed() + 1 < n);
        let a_change =
            |i: usize| if i < versions.len() { versions[i].start } else { a.last_observed() + 1 };

        let mut qi = 0usize; // current q-interval: q_starts[qi] <= s
        let mut mi = 0usize; // head of the −δ-shifted stream
        let mut pi = 0usize; // head of the +δ-shifted stream
        let (mut lo, mut hi) = (0usize, 0usize); // window over A's versions
        let mut violation = 0.0f64;
        let mut s: Timestamp = 0;
        loop {
            // Pop every stream head at or before the current start, then
            // take the minimum surviving head as the next start. Heads at
            // or beyond n are never starts; streams ascend, so the first
            // such head exhausts its stream.
            while qi + 1 < self.q_starts.len() && self.q_starts[qi + 1] <= s {
                qi += 1;
            }
            while mi < a_changes && a_change(mi).saturating_sub(delta) <= s {
                mi += 1;
            }
            while pi < a_changes && a_change(pi).saturating_add(delta) <= s {
                pi += 1;
            }
            let mut next: Option<Timestamp> = None;
            if qi + 1 < self.q_starts.len() {
                next = Some(self.q_starts[qi + 1]);
            }
            if mi < a_changes {
                let h = a_change(mi).saturating_sub(delta);
                if h < n {
                    next = Some(next.map_or(h, |x| x.min(h)));
                }
            }
            if pi < a_changes {
                let h = a_change(pi).saturating_add(delta);
                if h < n {
                    next = Some(next.map_or(h, |x| x.min(h)));
                }
            }

            let qv = self.q_values[qi];
            if !qv.is_empty() {
                // Slide the window union to [s − δ, s + δ].
                let ws = s.saturating_sub(delta);
                let we = s.saturating_add(delta).min(n - 1);
                while hi < versions.len() && versions[hi].start <= we {
                    for &v in &versions[hi].values {
                        scratch.admit(v);
                    }
                    hi += 1;
                }
                while lo < hi && a.version_validity(lo).end < ws {
                    for &v in &versions[lo].values {
                        scratch.retire(v);
                    }
                    lo += 1;
                }
                if !scratch.contains_all(qv) {
                    let e = next.map_or(n - 1, |ns| ns - 1);
                    violation += self.table.interval_weight(Interval::new(s, e));
                    if early_exit && self.params.exceeds_budget(violation) {
                        scratch.counters.proved_invalid_early += 1;
                        return (false, violation);
                    }
                }
            }
            match next {
                Some(ns) => {
                    if early_exit && self.params.provably_within(violation, self.table.suffix_weight(ns))
                    {
                        scratch.counters.proved_valid_early += 1;
                        return (true, violation);
                    }
                    s = ns;
                }
                None => break,
            }
        }
        (self.params.within_budget(violation), violation)
    }
}

/// Dense-array capacity an attribute needs: its largest value id + 1.
/// Version value sets are canonical, so the largest id of each set is its
/// last element — O(versions), no allocation.
fn max_value_capacity(a: &AttributeHistory) -> usize {
    a.versions()
        .iter()
        .filter_map(|v| v.values.last())
        .map(|&m| m as usize + 1)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tind_model::{DatasetBuilder, WeightFn};

    /// One attribute spec: (name, versions, last_observed).
    type AttrSpec<'a> = (&'a str, &'a [(Timestamp, &'a [&'a str])], Timestamp);

    /// Figure 2's running example, re-created: Q with versions over a short
    /// timeline, candidates with and without violations.
    fn build(timeline_len: u32, specs: &[AttrSpec<'_>]) -> (tind_model::Dataset, Timeline) {
        let tl = Timeline::new(timeline_len);
        let mut b = DatasetBuilder::new(tl);
        for (name, versions, last) in specs {
            let versions: Vec<(Timestamp, Vec<&str>)> =
                versions.iter().map(|(t, vs)| (*t, vs.to_vec())).collect();
            b.add_attribute(name, &versions, *last);
        }
        (b.build(), tl)
    }

    #[test]
    fn strict_tind_requires_containment_everywhere() {
        let (d, tl) = build(
            10,
            &[
                ("q", &[(0, &["a", "b"])], 9),
                ("good", &[(0, &["a", "b", "c"])], 9),
                ("bad", &[(0, &["a", "b"]), (5, &["a"])], 9),
            ],
        );
        let p = TindParams::strict();
        assert!(validate(d.attribute(0), d.attribute(1), &p, tl));
        assert!(!validate(d.attribute(0), d.attribute(2), &p, tl));
        assert!(naive_validate(d.attribute(0), d.attribute(1), &p, tl));
        assert!(!naive_validate(d.attribute(0), d.attribute(2), &p, tl));
    }

    #[test]
    fn eps_budget_tolerates_brief_errors() {
        // "bad" is missing "b" for timestamps 5..=9 (5 violations).
        let (d, tl) = build(
            10,
            &[("q", &[(0, &["a", "b"])], 9), ("bad", &[(0, &["a", "b"]), (5, &["a"])], 9)],
        );
        let q = d.attribute(0);
        let a = d.attribute(1);
        assert!((naive_violation_weight(q, a, &TindParams::strict(), tl) - 5.0).abs() < 1e-9);
        let lenient = TindParams::weighted(5.0, 0, WeightFn::constant_one());
        assert!(validate(q, a, &lenient, tl));
        let tight = TindParams::weighted(4.0, 0, WeightFn::constant_one());
        assert!(!validate(q, a, &tight, tl));
    }

    #[test]
    fn exact_budget_boundary_is_valid() {
        let (d, tl) = build(
            10,
            &[("q", &[(0, &["a"])], 9), ("a", &[(0, &[] as &[&str]), (3, &["a"])], 9)],
        );
        // Violated at t = 0, 1, 2 → weight 3.
        let p = TindParams::weighted(3.0, 0, WeightFn::constant_one());
        assert!(validate(d.attribute(0), d.attribute(1), &p, tl));
    }

    #[test]
    fn delta_heals_temporal_shifts() {
        // Q gains value "new" at t=5; A follows at t=7 (delay of 2).
        let (d, tl) = build(
            20,
            &[
                ("q", &[(0, &["x"]), (5, &["x", "new"])], 19),
                ("a", &[(0, &["x"]), (7, &["x", "new"])], 19),
            ],
        );
        let q = d.attribute(0);
        let a = d.attribute(1);
        // Without δ: violated at t = 5, 6.
        let strict = TindParams::strict();
        assert!(!validate(q, a, &strict, tl));
        assert!((naive_violation_weight(q, a, &strict, tl) - 2.0).abs() < 1e-9);
        // δ = 2 heals it: at t = 5, window [3,7] includes A[7] ∋ "new".
        let healed = TindParams::weighted(0.0, 2, WeightFn::constant_one());
        assert!(validate(q, a, &healed, tl));
        assert!(naive_validate(q, a, &healed, tl));
        // δ = 1 is not enough: at t = 5, window [4,6] misses it.
        let partial = TindParams::weighted(0.0, 1, WeightFn::constant_one());
        assert!(!validate(q, a, &partial, tl));
        assert!((naive_violation_weight(q, a, &partial, tl) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn delta_looks_backward_too() {
        // A had the value early and lost it; Q requires it later.
        let (d, tl) = build(
            20,
            &[
                ("q", &[(10, &["v"])], 10),
                ("a", &[(0, &["v"]), (8, &["w"])], 19),
            ],
        );
        let q = d.attribute(0);
        let a = d.attribute(1);
        // At t=10, window [10-3, 10+3] = [7,13] includes A[7] ∋ v.
        let p3 = TindParams::weighted(0.0, 3, WeightFn::constant_one());
        assert!(validate(q, a, &p3, tl));
        let p2 = TindParams::weighted(0.0, 2, WeightFn::constant_one());
        assert!(!validate(q, a, &p2, tl), "window [8,12] misses v (A changed at 8)");
    }

    #[test]
    fn unobservable_query_periods_never_violate() {
        let (d, tl) = build(
            30,
            &[("q", &[(10, &["z"])], 15), ("a", &[(10, &["z"])], 15)],
        );
        let p = TindParams::strict();
        assert!(validate(d.attribute(0), d.attribute(1), &p, tl));
        assert_eq!(naive_violation_weight(d.attribute(0), d.attribute(1), &p, tl), 0.0);
    }

    #[test]
    fn rhs_disappearance_causes_violations() {
        // A vanishes at t=5; Q continues to exist until 9.
        let (d, tl) = build(
            10,
            &[("q", &[(0, &["k"])], 9), ("a", &[(0, &["k"])], 4)],
        );
        let q = d.attribute(0);
        let a = d.attribute(1);
        let strict = TindParams::strict();
        // Violated at t = 5..=9.
        assert!((naive_violation_weight(q, a, &strict, tl) - 5.0).abs() < 1e-9);
        assert!(!validate(q, a, &strict, tl));
        // δ = 5 reaches back to A[4] from t = 9.
        let healed = TindParams::weighted(0.0, 5, WeightFn::constant_one());
        assert!(validate(q, a, &healed, tl));
    }

    #[test]
    fn exponential_weights_discount_old_violations() {
        let tl_len = 50;
        // Violation only at t = 0..=4 (A starts empty, gains value at 5).
        let (d, tl) = build(
            tl_len,
            &[("q", &[(0, &["v"])], 49), ("a", &[(0, &[] as &[&str]), (5, &["v"])], 49)],
        );
        let q = d.attribute(0);
        let a = d.attribute(1);
        let w = WeightFn::exponential(0.5, tl);
        // Old violations weigh ~nothing under decay.
        let decayed = TindParams::weighted(1e-9, 0, w);
        assert!(validate(q, a, &decayed, tl));
        // Same ε with constant weights fails (5 full violations).
        let flat = TindParams::weighted(1e-9, 0, WeightFn::constant_one());
        assert!(!validate(q, a, &flat, tl));
    }

    #[test]
    fn algorithm2_matches_naive_on_figure2_style_histories() {
        let (d, tl) = build(
            30,
            &[
                ("q", &[(0, &["ita", "pol"]), (8, &["ita", "pol", "usa"]), (15, &["ita"])], 25),
                ("a", &[(2, &["ita", "pol", "ger"]), (10, &["ita", "usa", "pol"]), (20, &["ita", "fra"])], 29),
            ],
        );
        let q = d.attribute(0);
        let a = d.attribute(1);
        for delta in [0u32, 1, 2, 5, 10, 40] {
            for eps in [0.0, 1.0, 3.0, 10.0] {
                let p = TindParams::weighted(eps, delta, WeightFn::constant_one());
                let fast = violation_weight(q, a, &p, tl, false);
                let naive = naive_violation_weight(q, a, &p, tl);
                assert!(
                    (fast - naive).abs() < 1e-9,
                    "δ={delta}: algorithm2 {fast} vs naive {naive}"
                );
                assert_eq!(validate(q, a, &p, tl), naive_validate(q, a, &p, tl));
            }
        }
    }

    #[test]
    fn critical_starts_are_sorted_unique_and_cover_zero() {
        let (d, tl) = build(
            30,
            &[("q", &[(3, &["a"]), (9, &["b"])], 20), ("a", &[(5, &["a"])], 25)],
        );
        let starts = critical_starts(d.attribute(0), d.attribute(1), 2, tl);
        assert_eq!(starts[0], 0);
        assert!(starts.windows(2).all(|w| w[0] < w[1]));
        assert!(starts.iter().all(|&t| t < 30));
        // Q's change points 3, 9, 21 present.
        for t in [3, 9, 21] {
            assert!(starts.contains(&t), "missing Q change point {t}");
        }
        // A's change points 5, 26 shifted by ±2.
        for t in [3, 7, 24, 28] {
            assert!(starts.contains(&t), "missing shifted A change point {t}");
        }
    }

    #[test]
    fn early_exit_returns_lower_bound() {
        let (d, tl) = build(
            100,
            &[("q", &[(0, &["v"])], 99), ("a", &[(0, &["other"])], 99)],
        );
        let p = TindParams::strict();
        let bounded = violation_weight(d.attribute(0), d.attribute(1), &p, tl, true);
        let exact = violation_weight(d.attribute(0), d.attribute(1), &p, tl, false);
        assert!(p.exceeds_budget(bounded));
        assert!((exact - 100.0).abs() < 1e-9);
        assert!(bounded <= exact);
    }

    #[test]
    fn reflexivity_holds_for_all_params() {
        let (d, tl) = build(
            20,
            &[("q", &[(2, &["a", "b"]), (9, &["c"])], 17)],
        );
        let q = d.attribute(0);
        for p in [
            TindParams::strict(),
            TindParams::paper_default(),
            TindParams::eps_relaxed(0.0, tl),
            TindParams::weighted(0.0, 3, WeightFn::exponential(0.9, tl)),
        ] {
            assert!(validate(q, q, &p, tl), "reflexivity failed for {p:?}");
        }
    }

    /// Figure-2-style histories exercising every structural edge the kernel
    /// merges over: late first observation, disappearance before the
    /// timeline end, value loss, and an unobservable query stretch.
    fn kernel_fixture() -> (tind_model::Dataset, Timeline) {
        build(
            30,
            &[
                ("q1", &[(0, &["ita", "pol"]), (8, &["ita", "pol", "usa"]), (15, &["ita"])], 25),
                ("q2", &[(10, &["z"])], 15),
                ("a1", &[(2, &["ita", "pol", "ger"]), (10, &["ita", "usa", "pol"]), (20, &["ita", "fra"])], 29),
                ("a2", &[(0, &["ita", "pol", "usa", "z"])], 22),
                ("a3", &[(0, &["ita"]), (12, &["ita", "pol", "usa"])], 29),
                ("a4", &[(5, &["z", "other"])], 29),
            ],
        )
    }

    #[test]
    fn plan_matches_legacy_and_naive_on_param_grid() {
        let (d, tl) = kernel_fixture();
        let mut scratch = ValidationScratch::new();
        for q in 0..2u32 {
            let q = d.attribute(q);
            for a in 2..6u32 {
                let a = d.attribute(a);
                for delta in [0u32, 1, 2, 5, 10, 40] {
                    for eps in [0.0, 1.0, 3.0, 10.0, 100.0] {
                        for w in [
                            WeightFn::constant_one(),
                            WeightFn::uniform_normalized(tl),
                            WeightFn::exponential(0.9, tl),
                            WeightFn::linear(tl),
                        ] {
                            let p = TindParams::weighted(eps, delta, w);
                            let plan = QueryPlan::new(q, &p, tl);
                            let exact = plan.violation_weight(a, &mut scratch);
                            let legacy = violation_weight(q, a, &p, tl, false);
                            let naive = naive_violation_weight(q, a, &p, tl);
                            let ctx = format!("{}⊆{} δ={delta} ε={eps} {:?}", q.name(), a.name(), p.weights);
                            assert!((exact - legacy).abs() < 1e-9, "{ctx}: plan {exact} vs legacy {legacy}");
                            assert!((exact - naive).abs() < 1e-9, "{ctx}: plan {exact} vs naive {naive}");
                            assert_eq!(plan.validate(a, &mut scratch), validate(q, a, &p, tl), "{ctx}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn plan_partition_is_bit_identical_under_constant_weights() {
        // Under w(t) = 1 both paths sum exact small integers, so any
        // difference in the interval partition shows up as an exact
        // mismatch — this pins the merged streams to `critical_starts`.
        let (d, tl) = kernel_fixture();
        let mut scratch = ValidationScratch::new();
        for q in 0..2u32 {
            let q = d.attribute(q);
            for a in 2..6u32 {
                let a = d.attribute(a);
                for delta in [0u32, 1, 3, 7, 14, 29, 100] {
                    let p = TindParams::weighted(f64::MAX, delta, WeightFn::constant_one());
                    let plan = QueryPlan::new(q, &p, tl);
                    assert_eq!(
                        plan.violation_weight(a, &mut scratch),
                        violation_weight(q, a, &p, tl, false),
                        "{}⊆{} δ={delta}",
                        q.name(),
                        a.name()
                    );
                }
            }
        }
    }

    #[test]
    fn prove_valid_early_exit_agrees_with_exhaustive_verdict() {
        let (d, tl) = kernel_fixture();
        let mut scratch = ValidationScratch::new();
        // Budget covers the whole timeline: provable validity after the
        // first interval transition.
        let p = TindParams::weighted(1000.0, 2, WeightFn::constant_one());
        let plan = QueryPlan::new(d.attribute(0), &p, tl);
        let before = scratch.counters();
        for a in 2..6u32 {
            let a = d.attribute(a);
            assert!(plan.validate(a, &mut scratch));
            assert!(naive_validate(d.attribute(0), a, &p, tl));
        }
        let delta = scratch.counters().since(&before);
        assert_eq!(delta.validations, 4);
        assert!(delta.proved_valid_early > 0, "generous budget should be provable early");
        assert_eq!(delta.invariant_breaches, 0);
    }

    #[test]
    fn prove_invalid_early_exit_fires_on_hopeless_pairs() {
        let (d, tl) = build(
            100,
            &[("q", &[(0, &["v"])], 99), ("a", &[(0, &["other"])], 99)],
        );
        let p = TindParams::strict();
        let plan = QueryPlan::new(d.attribute(0), &p, tl);
        let mut scratch = ValidationScratch::new();
        assert!(!plan.validate(d.attribute(1), &mut scratch));
        assert_eq!(scratch.counters().proved_invalid_early, 1);
        assert_eq!(scratch.counters().proved_valid_early, 0);
    }

    #[test]
    fn scratch_reuse_across_plans_matches_fresh_scratch() {
        let (d, tl) = kernel_fixture();
        let p = TindParams::paper_default();
        let mut reused = ValidationScratch::new();
        for q in 0..2u32 {
            let plan = QueryPlan::new(d.attribute(q), &p, tl);
            for a in 2..6u32 {
                let mut fresh = ValidationScratch::new();
                let a = d.attribute(a);
                assert_eq!(plan.validate(a, &mut reused), plan.validate(a, &mut fresh));
                assert_eq!(plan.violation_weight(a, &mut reused), plan.violation_weight(a, &mut fresh));
            }
        }
        // 2 queries × 4 candidates × 2 calls each.
        assert_eq!(reused.counters().validations, 16);
    }

    #[test]
    fn scratch_weight_table_is_cached_per_parameters() {
        let tl = Timeline::new(50);
        let mut scratch = ValidationScratch::new();
        let w1 = WeightFn::exponential(0.9, tl);
        let t1 = scratch.weight_table(&w1, tl);
        let t1_again = scratch.weight_table(&w1, tl);
        assert_eq!(t1.total().to_bits(), t1_again.total().to_bits());
        let w2 = WeightFn::constant_one();
        let t2 = scratch.weight_table(&w2, tl);
        assert_eq!(t2.total(), 50.0);
        assert!((t1.total() - w1.total(tl)).abs() < 1e-9);
    }

    #[test]
    fn window_underflow_is_counted_and_quarantined() {
        let before = invariant_breaches();
        let mut scratch = ValidationScratch::new();
        scratch.ensure_capacity(8);
        scratch.begin_pair();
        // Retire a value that was never admitted — the breach every broken
        // history ordering invariant eventually reduces to.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| scratch.retire(3)));
        if cfg!(debug_assertions) {
            assert!(outcome.is_err(), "debug builds fail fast on underflow");
        } else {
            assert!(outcome.is_ok(), "release builds quarantine the pair");
        }
        // The breach is recorded either way, before the assertion fires.
        assert_eq!(scratch.counters().invariant_breaches, 1);
        assert!(invariant_breaches() > before);
    }

    #[test]
    fn plan_from_artifacts_matches_fresh_plan() {
        let (d, tl) = kernel_fixture();
        let mut scratch = ValidationScratch::new();
        for q in 0..2u32 {
            let q = d.attribute(q);
            for p in [
                TindParams::strict(),
                TindParams::paper_default(),
                TindParams::weighted(3.0, 2, WeightFn::exponential(0.9, tl)),
            ] {
                let fresh = QueryPlan::new(q, &p, tl);
                let artifacts = fresh.artifacts();
                assert!(artifacts.matches(&p, tl));
                assert_eq!(artifacts.timeline(), tl);
                let rebuilt = QueryPlan::from_artifacts(q, &p, tl, &artifacts)
                    .expect("matching artifacts rebuild");
                for a in 2..6u32 {
                    let a = d.attribute(a);
                    assert_eq!(
                        fresh.violation_weight(a, &mut scratch).to_bits(),
                        rebuilt.violation_weight(a, &mut scratch).to_bits(),
                        "rebuilt plan must be bit-identical"
                    );
                    assert_eq!(fresh.validate(a, &mut scratch), rebuilt.validate(a, &mut scratch));
                }
            }
        }
    }

    #[test]
    fn mismatched_artifacts_are_refused() {
        let (d, tl) = kernel_fixture();
        let q = d.attribute(0);
        let p1 = TindParams::weighted(1.0, 2, WeightFn::constant_one());
        let artifacts = QueryPlan::new(q, &p1, tl).artifacts();
        // Different weights under the same (ε, δ) → refuse.
        let p2 = TindParams::weighted(1.0, 2, WeightFn::exponential(0.5, tl));
        assert!(QueryPlan::from_artifacts(q, &p2, tl, &artifacts).is_none());
        // Different timeline → refuse.
        let other = Timeline::new(tl.len() + 5);
        assert!(!artifacts.matches(&p1, other));
        assert!(QueryPlan::from_artifacts(q, &p1, other, &artifacts).is_none());
    }

    #[test]
    fn plan_exposes_query_and_params() {
        let (d, tl) = kernel_fixture();
        let p = TindParams::paper_default();
        let plan = QueryPlan::new(d.attribute(0), &p, tl);
        assert_eq!(plan.query().name(), "q1");
        assert_eq!(plan.params(), &p);
    }
}
