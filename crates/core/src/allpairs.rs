//! All-pairs tIND discovery (Section 3.5, evaluated in §5.2).
//!
//! The all-pairs problem is solved by querying every attribute against the
//! index. As the paper notes at the end of §4.2.2, the profitable axis of
//! parallelism is *across queries* (not within one query's validation):
//! workers pull query ids from a shared atomic cursor and collect result
//! pairs locally, merging at the end.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;
use tind_model::AttrId;

use crate::index::TindIndex;
use crate::params::TindParams;

/// Options for all-pairs discovery.
#[derive(Debug, Clone, Default)]
pub struct AllPairsOptions {
    /// Worker threads. `0` means one per available CPU.
    pub threads: usize,
}

/// Result of all-pairs discovery.
#[derive(Debug, Clone)]
pub struct AllPairsOutcome {
    /// All `(lhs, rhs)` pairs with `lhs ⊆_{w,ε,δ} rhs`, sorted; reflexive
    /// pairs excluded.
    pub pairs: Vec<(AttrId, AttrId)>,
    /// Wall-clock time of the discovery (excluding index construction).
    pub elapsed: std::time::Duration,
    /// Total number of Algorithm-2 validations across all queries.
    pub validations_run: usize,
}

/// Discovers every valid tIND among the indexed attributes.
pub fn discover_all_pairs(
    index: &TindIndex,
    params: &TindParams,
    options: &AllPairsOptions,
) -> AllPairsOutcome {
    let start = std::time::Instant::now();
    let num_attrs = index.dataset().len();
    let threads = if options.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        options.threads
    }
    .min(num_attrs.max(1));

    let cursor = AtomicUsize::new(0);
    let merged: Mutex<Vec<(AttrId, AttrId)>> = Mutex::new(Vec::new());
    let total_validations = AtomicUsize::new(0);

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                let mut local: Vec<(AttrId, AttrId)> = Vec::new();
                let mut local_validations = 0usize;
                loop {
                    let q = cursor.fetch_add(1, Ordering::Relaxed);
                    if q >= num_attrs {
                        break;
                    }
                    let outcome = index.search(q as AttrId, params);
                    local_validations += outcome.stats.validations_run;
                    local.extend(outcome.results.into_iter().map(|rhs| (q as AttrId, rhs)));
                }
                total_validations.fetch_add(local_validations, Ordering::Relaxed);
                merged.lock().append(&mut local);
            });
        }
    })
    .expect("all-pairs worker panicked");

    let mut pairs = merged.into_inner();
    pairs.sort_unstable();
    AllPairsOutcome {
        pairs,
        elapsed: start.elapsed(),
        validations_run: total_validations.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{IndexConfig, TindIndex};
    use crate::search::brute_force_search;
    use std::sync::Arc;
    use tind_model::{Dataset, DatasetBuilder, Timeline};

    fn chain_dataset() -> Arc<Dataset> {
        // a ⊆ b ⊆ c, d disjoint.
        let mut b = DatasetBuilder::new(Timeline::new(50));
        b.add_attribute("a", &[(0, vec!["1"])], 49);
        b.add_attribute("b", &[(0, vec!["1", "2"])], 49);
        b.add_attribute("c", &[(0, vec!["1", "2", "3"])], 49);
        b.add_attribute("d", &[(0, vec!["9"])], 49);
        Arc::new(b.build())
    }

    #[test]
    fn discovers_the_containment_chain() {
        let d = chain_dataset();
        let idx = TindIndex::build(d.clone(), IndexConfig { m: 512, ..IndexConfig::default() });
        let out = discover_all_pairs(&idx, &TindParams::strict(), &AllPairsOptions::default());
        assert_eq!(out.pairs, vec![(0, 1), (0, 2), (1, 2)]);
        assert!(out.validations_run >= out.pairs.len());
    }

    #[test]
    fn single_thread_and_multi_thread_agree() {
        let d = chain_dataset();
        let idx = TindIndex::build(d.clone(), IndexConfig { m: 512, ..IndexConfig::default() });
        let p = TindParams::paper_default();
        let one = discover_all_pairs(&idx, &p, &AllPairsOptions { threads: 1 });
        let many = discover_all_pairs(&idx, &p, &AllPairsOptions { threads: 4 });
        assert_eq!(one.pairs, many.pairs);
    }

    #[test]
    fn matches_per_query_brute_force() {
        let d = chain_dataset();
        let idx = TindIndex::build(d.clone(), IndexConfig { m: 512, ..IndexConfig::default() });
        let p = TindParams::paper_default();
        let out = discover_all_pairs(&idx, &p, &AllPairsOptions::default());
        let mut expected = Vec::new();
        for (qid, hist) in d.iter() {
            for rhs in brute_force_search(&idx, hist, Some(qid), &p) {
                expected.push((qid, rhs));
            }
        }
        expected.sort_unstable();
        assert_eq!(out.pairs, expected);
    }
}
