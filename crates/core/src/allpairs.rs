//! All-pairs tIND discovery (Section 3.5, evaluated in §5.2) with a
//! fault-tolerance layer for multi-hour runs.
//!
//! The all-pairs problem is solved by querying every attribute against the
//! index. As the paper notes at the end of §4.2.2, the profitable axis of
//! parallelism is *across queries* (not within one query's validation):
//! workers pull query ids from a shared atomic cursor and collect result
//! pairs locally, merging at the end.
//!
//! Because a paper-scale run takes hours, the discovery loop is built to
//! survive the failures such runs actually meet:
//!
//! * **Checkpoint/resume** — completed query ids and their pairs are
//!   periodically persisted ([`crate::checkpoint`]); a run restarted with
//!   [`AllPairsOptions::resume_from`] skips finished queries and produces
//!   byte-identical `pairs` to an uninterrupted run.
//! * **Panic quarantine** — each per-query search runs under
//!   `catch_unwind`; a panicking query is recorded in
//!   [`AllPairsOutcome::poisoned_queries`] while the other workers keep
//!   draining the cursor.
//! * **Cooperative cancellation and deadlines** — a [`CancelToken`] and an
//!   optional wall-clock budget are polled at query boundaries, so a
//!   cancelled run stops in a checkpointable state.
//! * **Memory-budget degradation** — extra workers charge their scratch
//!   estimate against an optional [`MemoryBudget`]; when the budget is
//!   exhausted the run degrades toward sequential execution instead of
//!   aborting.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use tind_model::binio::BinIoError;
use tind_model::{AttrId, Charge, MemoryBudget};

use crate::cancel::{CancelReason, CancelToken};
use crate::checkpoint::Checkpoint;
use crate::fault::FaultHook;
use crate::index::TindIndex;
use crate::params::TindParams;
use crate::search::SearchOptions;
use crate::validate::ValidationScratch;

/// Estimated per-candidate scratch bytes a worker needs while validating
/// one query (violation accumulators, candidate bitsets, result staging).
/// Deliberately conservative; used only for [`MemoryBudget`] accounting.
pub const WORKER_SCRATCH_BYTES_PER_ATTR: usize = 48;

/// Grants up to `requested` workers against an optional memory budget.
/// The first worker always runs (sequential execution is the floor); each
/// additional worker must afford `scratch_bytes`. The returned charges
/// release their bytes when dropped, i.e. at the end of the parallel
/// section. Shared by all-pairs discovery, parallel index construction,
/// and batched search so thread-shedding semantics stay uniform.
pub(crate) fn grant_workers(
    requested: usize,
    scratch_bytes: usize,
    budget: Option<&MemoryBudget>,
) -> (usize, Vec<Charge>) {
    match budget {
        Some(budget) => {
            let mut charges = Vec::new();
            for _ in 1..requested {
                match budget.try_charge(scratch_bytes) {
                    Some(charge) => charges.push(charge),
                    None => break,
                }
            }
            (1 + charges.len(), charges)
        }
        None => (requested, Vec::new()),
    }
}

/// When and where to persist progress checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Checkpoint file path (written atomically via temp file + rename).
    pub path: PathBuf,
    /// Completed queries between checkpoint writes.
    pub every: usize,
}

impl CheckpointPolicy {
    /// A policy writing to `path` every 256 completed queries.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointPolicy { path: path.into(), every: 256 }
    }

    /// Overrides the checkpoint interval (clamped to at least 1).
    pub fn every(mut self, every: usize) -> Self {
        self.every = every.max(1);
        self
    }
}

/// Options for all-pairs discovery.
#[derive(Clone, Default)]
pub struct AllPairsOptions {
    /// Worker threads. `0` means one per available CPU.
    pub threads: usize,
    /// Periodic checkpointing of completed queries and accumulated pairs.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Resume state from an earlier, interrupted run; its dataset
    /// fingerprint and parameter digest must match or discovery refuses
    /// to start.
    pub resume_from: Option<Checkpoint>,
    /// Cooperative cancellation flag, polled at query boundaries.
    pub cancel: Option<CancelToken>,
    /// Wall-clock budget for this run (measured from the call, not
    /// including any resumed work). The run stops in a checkpointable
    /// state when the deadline passes.
    pub deadline: Option<Duration>,
    /// Memory accountant; extra workers beyond the first charge their
    /// scratch estimate and are shed when the budget is exhausted.
    pub memory_budget: Option<MemoryBudget>,
    /// Emit a one-line progress report to stderr every this many
    /// completed queries; `0` (the default) is quiet.
    pub progress_every: usize,
    /// Test-only fault injection: invoked with each query id right before
    /// its search (see [`crate::fault`]).
    pub fault_hook: Option<FaultHook>,
    /// Optional trace context: each query's search records per-stage
    /// trace spans parented to it. Purely observational.
    pub trace: Option<tind_obs::TraceContext>,
}

impl std::fmt::Debug for AllPairsOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AllPairsOptions")
            .field("threads", &self.threads)
            .field("checkpoint", &self.checkpoint)
            .field("resume_from", &self.resume_from.as_ref().map(|c| c.completed.len()))
            .field("cancel", &self.cancel)
            .field("deadline", &self.deadline)
            .field("memory_budget", &self.memory_budget)
            .field("progress_every", &self.progress_every)
            .field("fault_hook", &self.fault_hook.is_some())
            .field("trace", &self.trace)
            .finish()
    }
}

/// Result of all-pairs discovery.
#[derive(Debug, Clone)]
pub struct AllPairsOutcome {
    /// All `(lhs, rhs)` pairs with `lhs ⊆_{w,ε,δ} rhs`, sorted; reflexive
    /// pairs excluded.
    pub pairs: Vec<(AttrId, AttrId)>,
    /// Wall-clock time of the discovery (excluding index construction).
    pub elapsed: std::time::Duration,
    /// Total number of Algorithm-2 validations across all queries.
    pub validations_run: usize,
    /// Number of query attributes in the problem.
    pub total_queries: usize,
    /// Queries completed by the end of this call (including resumed ones).
    pub completed_queries: usize,
    /// Queries skipped because the resume checkpoint already covered them.
    pub resumed_queries: usize,
    /// Queries whose search panicked and was quarantined, sorted.
    pub poisoned_queries: Vec<AttrId>,
    /// Whether the run stopped early due to cancellation or deadline.
    pub cancelled: bool,
    /// Why the run stopped early, when `cancelled` is set: the single
    /// latched [`CancelReason`] (deadline expiry and explicit cancel can
    /// race; the first cause to latch wins deterministically).
    pub stop_reason: Option<CancelReason>,
    /// Worker threads actually used after memory-budget degradation.
    pub threads_used: usize,
    /// Whether a checkpoint file reflecting the final state was written.
    pub checkpoint_written: bool,
    /// Validations ended by the prove-valid early exit during *this* call
    /// (not part of the checkpoint format, so resumed work contributes 0).
    pub early_valid_exits: usize,
    /// Validations ended by the prove-invalid early exit during this call.
    pub early_invalid_exits: usize,
    /// Wall-clock nanoseconds spent in stage-4 validation during this
    /// call, summed across workers (can exceed `elapsed` on multi-core).
    pub validate_nanos: u64,
}

/// Errors from fault-tolerant all-pairs discovery.
#[derive(Debug)]
pub enum AllPairsError {
    /// The resume checkpoint belongs to a different dataset or different
    /// search parameters.
    ResumeMismatch(BinIoError),
    /// A checkpoint could not be written (disk full, permissions, ...).
    CheckpointWrite(BinIoError),
    /// A worker panicked outside the per-query quarantine; the run's
    /// bookkeeping can no longer be trusted.
    Internal(&'static str),
}

impl std::fmt::Display for AllPairsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllPairsError::ResumeMismatch(e) => write!(f, "cannot resume: {e}"),
            AllPairsError::CheckpointWrite(e) => write!(f, "checkpoint write failed: {e}"),
            AllPairsError::Internal(msg) => write!(f, "internal all-pairs failure: {msg}"),
        }
    }
}

impl std::error::Error for AllPairsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AllPairsError::ResumeMismatch(e) | AllPairsError::CheckpointWrite(e) => Some(e),
            AllPairsError::Internal(_) => None,
        }
    }
}

/// Mutable run state shared by the workers (behind one mutex; workers
/// touch it once per completed query, which is far coarser than the
/// per-candidate hot path inside a search).
struct Shared {
    state: Checkpoint,
    since_checkpoint: usize,
    since_progress: usize,
    last_checkpoint_at: Instant,
    checkpoint_written: bool,
    checkpoint_error: Option<BinIoError>,
    fresh_completed: usize,
    /// Early-exit / timing aggregates for this call only — deliberately
    /// *not* part of `state`: the checkpoint format stays unchanged and
    /// these counters restart at zero on resume.
    early_valid_exits: usize,
    early_invalid_exits: usize,
    validate_nanos: u64,
}

impl Shared {
    /// Sorts the accumulated sets so the state is a valid [`Checkpoint`].
    fn normalize(&mut self) {
        self.state.completed.sort_unstable();
        self.state.poisoned.sort_unstable();
        self.state.pairs.sort_unstable();
    }

    fn write_checkpoint(&mut self, policy: &CheckpointPolicy) {
        self.normalize();
        match self.state.write_file(&policy.path) {
            Ok(()) => {
                self.checkpoint_written = true;
                self.since_checkpoint = 0;
                self.last_checkpoint_at = Instant::now();
            }
            Err(e) => self.checkpoint_error = Some(e),
        }
    }

    fn progress_line(&self, started: Instant) -> String {
        let done = self.state.completed.len();
        let total = self.state.total_queries;
        let elapsed = started.elapsed();
        // Rate and ETA use the shared obs formatting so this line matches
        // the ingest/search progress shapes exactly.
        let rate = tind_obs::fmt_rate(self.fresh_completed as u64, elapsed.as_secs_f64(), "queries");
        let eta = if self.fresh_completed > 0 && done < total {
            let per_query = elapsed.as_secs_f64() / self.fresh_completed as f64;
            tind_obs::fmt_eta_secs(per_query * (total - done) as f64)
        } else {
            "~? left".to_string()
        };
        let ckpt_age = if self.checkpoint_written {
            format!("{:.0}s", self.last_checkpoint_at.elapsed().as_secs_f64())
        } else {
            "none".to_string()
        };
        format!(
            "all-pairs: {done}/{total} queries, {} pairs, {} poisoned, {rate}, {eta}, checkpoint age {ckpt_age}",
            self.state.pairs.len(),
            self.state.poisoned.len(),
        )
    }
}

/// Discovers every valid tIND among the indexed attributes.
///
/// With default options this behaves like the original exhaustive pass.
/// See [`AllPairsOptions`] for checkpointing, resume, cancellation,
/// deadline, and memory-budget behaviour. The discovered `pairs` are a
/// pure function of (dataset, params): any interrupted run resumed from
/// its checkpoint yields exactly the pairs of an uninterrupted run.
pub fn discover_all_pairs(
    index: &TindIndex,
    params: &TindParams,
    options: &AllPairsOptions,
) -> Result<AllPairsOutcome, AllPairsError> {
    let _run_span = tind_obs::span("core.allpairs.run");
    let start = Instant::now();
    let num_attrs = index.dataset().len();

    // Resume state: mark already-completed queries so workers skip them.
    let base = match &options.resume_from {
        Some(cp) => {
            cp.verify_matches(index.dataset(), params)
                .map_err(AllPairsError::ResumeMismatch)?;
            cp.clone()
        }
        None => Checkpoint::fresh(index.dataset(), params),
    };
    let resumed_queries = base.completed.len();
    let mut done = vec![false; num_attrs];
    for &q in &base.completed {
        done[q as usize] = true;
    }

    let requested = if options.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        options.threads
    }
    .clamp(1, num_attrs.max(1));

    // Memory-budget degradation: the first worker always runs (sequential
    // execution is the floor), each additional worker must afford its
    // scratch estimate.
    let scratch = num_attrs.saturating_mul(WORKER_SCRATCH_BYTES_PER_ATTR);
    let (threads, _charges) =
        grant_workers(requested, scratch, options.memory_budget.as_ref());
    tind_obs::gauge("allpairs.workers_requested").set(requested as f64);
    tind_obs::gauge("allpairs.workers_granted").set(threads as f64);

    // One token is the single source of truth for "why we stopped": the
    // caller's cancel flag (if any) with the wall-clock deadline folded
    // in. Deadline expiry and explicit cancellation latch the same
    // reason cell, so 504-vs-interrupt accounting is exact even when the
    // two race at a query boundary.
    let effective_cancel = {
        let base = options.cancel.clone().unwrap_or_default();
        match options.deadline {
            Some(d) => base.with_deadline(start + d),
            None => base,
        }
    };
    let cursor = AtomicUsize::new(0);
    let stopped_early = AtomicBool::new(false);
    let shared = Mutex::new(Shared {
        state: base,
        since_checkpoint: 0,
        since_progress: 0,
        last_checkpoint_at: start,
        checkpoint_written: false,
        checkpoint_error: None,
        fresh_completed: 0,
        early_valid_exits: 0,
        early_invalid_exits: 0,
        validate_nanos: 0,
    });

    let pairs_found = tind_obs::counter("allpairs.pairs");
    let poisoned = tind_obs::counter("allpairs.poisoned");
    let queries_completed = tind_obs::counter("allpairs.queries_completed");
    let scope_result = crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                // One validation scratch per worker for the whole drain:
                // the dense window union and cached weight table are
                // reused across every query this worker claims.
                let mut scratch = ValidationScratch::new();
                let search_options = SearchOptions::default();
                loop {
                    if effective_cancel.is_cancelled() {
                        stopped_early.store(true, Ordering::Relaxed);
                        break;
                    }
                    let q = cursor.fetch_add(1, Ordering::Relaxed);
                    if q >= num_attrs {
                        break;
                    }
                    if done[q] {
                        continue;
                    }
                    // Quarantine: a panicking query must not take down the
                    // scope — record it and keep draining the cursor. A
                    // scratch abandoned mid-pair is safe to reuse: the next
                    // pair's generation bump hides any stale counts.
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        if let Some(hook) = &options.fault_hook {
                            hook(q as AttrId);
                        }
                        crate::search::run_search_scratch(
                            index,
                            index.dataset().attribute(q as AttrId),
                            Some(q as AttrId),
                            params,
                            &search_options,
                            &mut scratch,
                            options.trace,
                        )
                    }));

                    let mut s = shared.lock();
                    match result {
                        Ok(outcome) => {
                            s.state.validations_run += outcome.stats.validations_run;
                            s.early_valid_exits += outcome.stats.early_valid_exits;
                            s.early_invalid_exits += outcome.stats.early_invalid_exits;
                            s.validate_nanos += outcome.stats.validate_nanos;
                            pairs_found.add(outcome.results.len() as u64);
                            s.state
                                .pairs
                                .extend(outcome.results.into_iter().map(|rhs| (q as AttrId, rhs)));
                        }
                        Err(_) => {
                            poisoned.incr();
                            s.state.poisoned.push(q as AttrId);
                        }
                    }
                    queries_completed.incr();
                    s.state.completed.push(q as AttrId);
                    s.fresh_completed += 1;
                    s.since_checkpoint += 1;
                    s.since_progress += 1;
                    if let Some(policy) = &options.checkpoint {
                        if s.since_checkpoint >= policy.every && s.checkpoint_error.is_none() {
                            s.write_checkpoint(policy);
                        }
                    }
                    if options.progress_every > 0 && s.since_progress >= options.progress_every {
                        s.since_progress = 0;
                        eprintln!("{}", s.progress_line(start));
                    }
                }
            });
        }
    });
    if scope_result.is_err() {
        return Err(AllPairsError::Internal("all-pairs worker panicked outside quarantine"));
    }

    let mut s = shared.into_inner();
    if let Some(e) = s.checkpoint_error.take() {
        return Err(AllPairsError::CheckpointWrite(e));
    }
    s.normalize();
    // Final checkpoint so a cancelled (or just-finished) run can always be
    // resumed/inspected, even when the interval had not elapsed.
    if let Some(policy) = &options.checkpoint {
        s.write_checkpoint(policy);
        if let Some(e) = s.checkpoint_error.take() {
            return Err(AllPairsError::CheckpointWrite(e));
        }
    }
    let completed_queries = s.state.completed.len();
    let cancelled = stopped_early.into_inner() && completed_queries < num_attrs;
    let stop_reason = if cancelled { effective_cancel.reason() } else { None };
    if let Some(budget) = options.memory_budget.as_ref() {
        tind_obs::gauge("memory.peak_bytes").set_max(budget.peak_bytes() as f64);
        tind_obs::gauge("memory.limit_bytes").set(budget.limit_bytes() as f64);
    }
    Ok(AllPairsOutcome {
        pairs: s.state.pairs,
        elapsed: start.elapsed(),
        validations_run: s.state.validations_run,
        total_queries: num_attrs,
        completed_queries,
        resumed_queries,
        poisoned_queries: s.state.poisoned,
        cancelled,
        stop_reason,
        threads_used: threads,
        checkpoint_written: s.checkpoint_written,
        early_valid_exits: s.early_valid_exits,
        early_invalid_exits: s.early_invalid_exits,
        validate_nanos: s.validate_nanos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{IndexConfig, TindIndex};
    use crate::search::brute_force_search;
    use std::sync::Arc;
    use tind_model::{Dataset, DatasetBuilder, Timeline};

    fn chain_dataset() -> Arc<Dataset> {
        // a ⊆ b ⊆ c, d disjoint.
        let mut b = DatasetBuilder::new(Timeline::new(50));
        b.add_attribute("a", &[(0, vec!["1"])], 49);
        b.add_attribute("b", &[(0, vec!["1", "2"])], 49);
        b.add_attribute("c", &[(0, vec!["1", "2", "3"])], 49);
        b.add_attribute("d", &[(0, vec!["9"])], 49);
        Arc::new(b.build())
    }

    fn discover(
        idx: &TindIndex,
        params: &TindParams,
        options: &AllPairsOptions,
    ) -> AllPairsOutcome {
        discover_all_pairs(idx, params, options).expect("discovery succeeds")
    }

    #[test]
    fn discovers_the_containment_chain() {
        let d = chain_dataset();
        let idx = TindIndex::build(d.clone(), IndexConfig { m: 512, ..IndexConfig::default() });
        let out = discover(&idx, &TindParams::strict(), &AllPairsOptions::default());
        assert_eq!(out.pairs, vec![(0, 1), (0, 2), (1, 2)]);
        assert!(out.validations_run >= out.pairs.len());
        assert!(out.early_valid_exits + out.early_invalid_exits <= out.validations_run);
        assert_eq!(out.completed_queries, 4);
        assert_eq!(out.total_queries, 4);
        assert!(!out.cancelled);
        assert!(out.poisoned_queries.is_empty());
    }

    #[test]
    fn single_thread_and_multi_thread_agree() {
        let d = chain_dataset();
        let idx = TindIndex::build(d.clone(), IndexConfig { m: 512, ..IndexConfig::default() });
        let p = TindParams::paper_default();
        let one = discover(&idx, &p, &AllPairsOptions { threads: 1, ..Default::default() });
        let many = discover(&idx, &p, &AllPairsOptions { threads: 4, ..Default::default() });
        assert_eq!(one.pairs, many.pairs);
    }

    #[test]
    fn matches_per_query_brute_force() {
        let d = chain_dataset();
        let idx = TindIndex::build(d.clone(), IndexConfig { m: 512, ..IndexConfig::default() });
        let p = TindParams::paper_default();
        let out = discover(&idx, &p, &AllPairsOptions::default());
        let mut expected = Vec::new();
        for (qid, hist) in d.iter() {
            for rhs in brute_force_search(&idx, hist, Some(qid), &p) {
                expected.push((qid, rhs));
            }
        }
        expected.sort_unstable();
        assert_eq!(out.pairs, expected);
    }

    #[test]
    fn poisoned_query_is_quarantined() {
        let d = chain_dataset();
        let idx = TindIndex::build(d.clone(), IndexConfig { m: 512, ..IndexConfig::default() });
        let p = TindParams::strict();
        let out = discover(
            &idx,
            &p,
            &AllPairsOptions {
                threads: 2,
                fault_hook: Some(crate::fault::poison_hook(&[1])),
                ..Default::default()
            },
        );
        assert_eq!(out.poisoned_queries, vec![1]);
        assert_eq!(out.completed_queries, 4, "poisoned query still counts as handled");
        // Query 1's pairs are lost; everything else is intact.
        assert_eq!(out.pairs, vec![(0, 1), (0, 2)]);
    }

    #[test]
    fn pre_cancelled_token_stops_immediately() {
        let d = chain_dataset();
        let idx = TindIndex::build(d.clone(), IndexConfig { m: 512, ..IndexConfig::default() });
        let token = CancelToken::new();
        token.cancel();
        let out = discover(
            &idx,
            &TindParams::strict(),
            &AllPairsOptions { threads: 2, cancel: Some(token), ..Default::default() },
        );
        assert!(out.cancelled);
        assert_eq!(out.stop_reason, Some(CancelReason::Interrupt));
        assert_eq!(out.completed_queries, 0);
        assert!(out.pairs.is_empty());
    }

    #[test]
    fn expired_deadline_stops_immediately() {
        let d = chain_dataset();
        let idx = TindIndex::build(d.clone(), IndexConfig { m: 512, ..IndexConfig::default() });
        let out = discover(
            &idx,
            &TindParams::strict(),
            &AllPairsOptions {
                threads: 1,
                deadline: Some(Duration::ZERO),
                ..Default::default()
            },
        );
        assert!(out.cancelled);
        assert_eq!(out.stop_reason, Some(CancelReason::Deadline));
        assert_eq!(out.completed_queries, 0);
    }

    #[test]
    fn memory_budget_degrades_to_sequential() {
        let d = chain_dataset();
        let idx = TindIndex::build(d.clone(), IndexConfig { m: 512, ..IndexConfig::default() });
        // A zero budget cannot afford any extra worker.
        let out = discover(
            &idx,
            &TindParams::strict(),
            &AllPairsOptions {
                threads: 4,
                memory_budget: Some(MemoryBudget::new(0)),
                ..Default::default()
            },
        );
        assert_eq!(out.threads_used, 1, "degraded to sequential");
        assert_eq!(out.pairs, vec![(0, 1), (0, 2), (1, 2)], "results unaffected");
        // A budget affording exactly one extra worker grants two.
        let scratch = d.len() * WORKER_SCRATCH_BYTES_PER_ATTR;
        let budget = MemoryBudget::new(scratch);
        let out = discover(
            &idx,
            &TindParams::strict(),
            &AllPairsOptions {
                threads: 4,
                memory_budget: Some(budget.clone()),
                ..Default::default()
            },
        );
        assert_eq!(out.threads_used, 2);
        assert_eq!(budget.used_bytes(), 0, "charges released after the run");
    }

    #[test]
    fn checkpoint_resume_produces_identical_pairs() {
        let d = chain_dataset();
        let idx = TindIndex::build(d.clone(), IndexConfig { m: 512, ..IndexConfig::default() });
        let p = TindParams::paper_default();
        let full = discover(&idx, &p, &AllPairsOptions::default());

        let dir = std::env::temp_dir().join("tind-allpairs-ckpt-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("run.tcp");

        // Cancel after two completed queries (single-threaded so the
        // boundary is exact), checkpointing every completed query.
        let token = CancelToken::new();
        let counter = Arc::new(AtomicUsize::new(0));
        let hook: crate::fault::FaultHook = {
            let token = token.clone();
            let counter = counter.clone();
            Arc::new(move |_q| {
                if counter.fetch_add(1, Ordering::Relaxed) >= 2 {
                    token.cancel();
                }
            })
        };
        // The hook fires *before* the search, so cancel lands before the
        // third query runs; but the cancel check happens at the loop head,
        // so the third search still executes. Either way the checkpoint
        // only ever contains fully completed queries.
        let interrupted = discover(
            &idx,
            &p,
            &AllPairsOptions {
                threads: 1,
                cancel: Some(token),
                checkpoint: Some(CheckpointPolicy::new(&path).every(1)),
                fault_hook: Some(hook),
                ..Default::default()
            },
        );
        assert!(interrupted.cancelled);
        assert!(interrupted.completed_queries < full.total_queries);
        assert!(interrupted.checkpoint_written);

        let cp = Checkpoint::read_file(&path).expect("checkpoint readable");
        let resumed = discover(
            &idx,
            &p,
            &AllPairsOptions { threads: 2, resume_from: Some(cp), ..Default::default() },
        );
        assert!(!resumed.cancelled);
        assert_eq!(resumed.pairs, full.pairs, "resume must reproduce the full result");
        assert_eq!(resumed.resumed_queries, interrupted.completed_queries);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_from_wrong_dataset_is_refused() {
        let d = chain_dataset();
        let idx = TindIndex::build(d.clone(), IndexConfig { m: 512, ..IndexConfig::default() });
        let p = TindParams::paper_default();
        let mut other = DatasetBuilder::new(Timeline::new(50));
        other.add_attribute("x", &[(0, vec!["7"])], 49);
        let other = Arc::new(other.build());
        let cp = Checkpoint::fresh(&other, &p);
        let err = discover_all_pairs(
            &idx,
            &p,
            &AllPairsOptions { resume_from: Some(cp), ..Default::default() },
        )
        .expect_err("must refuse");
        assert!(matches!(err, AllPairsError::ResumeMismatch(_)), "{err}");
    }

    #[test]
    fn resume_from_complete_checkpoint_is_a_no_op() {
        let d = chain_dataset();
        let idx = TindIndex::build(d.clone(), IndexConfig { m: 512, ..IndexConfig::default() });
        let p = TindParams::paper_default();
        let full = discover(&idx, &p, &AllPairsOptions::default());
        let mut cp = Checkpoint::fresh(&d, &p);
        cp.completed = (0..d.len() as AttrId).collect();
        cp.pairs = full.pairs.clone();
        cp.validations_run = full.validations_run;
        let resumed = discover(
            &idx,
            &p,
            &AllPairsOptions { resume_from: Some(cp), ..Default::default() },
        );
        assert_eq!(resumed.pairs, full.pairs);
        assert_eq!(resumed.resumed_queries, d.len());
        assert!(!resumed.cancelled);
    }
}
