//! Violation explanations for interactive exploration.
//!
//! The paper's use-case is a *user* exploring tIND relationships; when a
//! candidate fails, "not a tIND" is a dead end — the useful answer is
//! *where* and *why* it fails: which time intervals violate, which values
//! are missing from the δ-window, and how far the violation weight exceeds
//! the budget (or how much headroom a valid tIND has left). This module
//! reuses Algorithm 2's interval partition to produce exactly that.

use tind_model::{AttributeHistory, Dataset, Interval, Timeline, ValueId};

use crate::params::TindParams;
use crate::validate::critical_starts;

/// One maximal violated interval with its evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct ViolatedInterval {
    /// The violated timestamps.
    pub interval: Interval,
    /// Weight this interval contributes to the violation total.
    pub weight: f64,
    /// Values of `Q` missing from `A`'s δ-window throughout the interval
    /// (capped at a handful for readability).
    pub missing_values: Vec<ValueId>,
}

/// A full explanation of a tIND candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// Whether the dependency holds under the given parameters.
    pub valid: bool,
    /// Exact total violation weight.
    pub violation: f64,
    /// The budget ε.
    pub eps: f64,
    /// Maximal violated intervals, chronological.
    pub violated: Vec<ViolatedInterval>,
}

/// How many missing values to record per interval.
const MAX_MISSING: usize = 5;

/// Explains the candidate `Q ⊆_{w,ε,δ} A`.
pub fn explain(
    q: &AttributeHistory,
    a: &AttributeHistory,
    params: &TindParams,
    timeline: Timeline,
) -> Explanation {
    let n = timeline.len();
    let starts = critical_starts(q, a, params.delta, timeline);
    let mut violated: Vec<ViolatedInterval> = Vec::new();
    let mut violation = 0.0;
    for (i, &s) in starts.iter().enumerate() {
        let e = starts.get(i + 1).map_or(n - 1, |&next| next - 1);
        let qv = q.values_at(s);
        if qv.is_empty() {
            continue;
        }
        let window = timeline.delta_window(s, params.delta);
        let av = a.values_in(window);
        let missing: Vec<ValueId> =
            qv.iter().copied().filter(|v| av.binary_search(v).is_err()).collect();
        if missing.is_empty() {
            continue;
        }
        let interval = Interval::new(s, e);
        let weight = params.weights.interval_weight(interval);
        violation += weight;
        // Merge with the previous violated interval when contiguous and
        // equally evidenced (reads better: one long violation, not many
        // fragments).
        if let Some(last) = violated.last_mut() {
            if last.interval.end + 1 == interval.start
                && last.missing_values == missing[..missing.len().min(MAX_MISSING)]
            {
                last.interval = Interval::new(last.interval.start, interval.end);
                last.weight += weight;
                continue;
            }
        }
        violated.push(ViolatedInterval {
            interval,
            weight,
            missing_values: missing.into_iter().take(MAX_MISSING).collect(),
        });
    }
    Explanation { valid: params.within_budget(violation), violation, eps: params.eps, violated }
}

impl Explanation {
    /// Renders the explanation with value names resolved against a
    /// dataset's dictionary.
    pub fn render(&self, dataset: &Dataset) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.valid {
            let _ = writeln!(
                out,
                "VALID: violation weight {:.3} within budget ε = {} (headroom {:.3})",
                self.violation,
                self.eps,
                self.eps - self.violation
            );
        } else {
            let _ = writeln!(
                out,
                "INVALID: violation weight {:.3} exceeds budget ε = {} by {:.3}",
                self.violation,
                self.eps,
                self.violation - self.eps
            );
        }
        for v in &self.violated {
            let names: Vec<&str> = v
                .missing_values
                .iter()
                .filter_map(|&id| dataset.dictionary().try_resolve(id))
                .collect();
            let _ = writeln!(
                out,
                "  {} (weight {:.3}): missing {:?}",
                v.interval, v.weight, names
            );
        }
        if self.violated.is_empty() {
            let _ = writeln!(out, "  (no violated intervals)");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{naive_violation_weight, validate};
    use tind_model::{DatasetBuilder, WeightFn};

    fn dataset() -> (Dataset, Timeline) {
        let tl = Timeline::new(20);
        let mut b = DatasetBuilder::new(tl);
        // Q carries "gone" for days 5..=9 while A never has it; Q also has
        // "late" from day 15 which A only gains at day 18.
        b.add_attribute(
            "q",
            &[
                (0, vec!["base"]),
                (5, vec!["base", "gone"]),
                (10, vec!["base"]),
                (15, vec!["base", "late"]),
            ],
            19,
        );
        b.add_attribute("a", &[(0, vec!["base"]), (18, vec!["base", "late"])], 19);
        (b.build(), tl)
    }

    #[test]
    fn explanation_matches_the_validator() {
        let (d, tl) = dataset();
        for params in [
            TindParams::strict(),
            TindParams::paper_default(),
            TindParams::weighted(5.0, 1, WeightFn::constant_one()),
            TindParams::weighted(10.0, 0, WeightFn::constant_one()),
        ] {
            let e = explain(d.attribute(0), d.attribute(1), &params, tl);
            assert_eq!(e.valid, validate(d.attribute(0), d.attribute(1), &params, tl));
            let naive = naive_violation_weight(d.attribute(0), d.attribute(1), &params, tl);
            assert!((e.violation - naive).abs() < 1e-9, "{:?}", params);
            let total: f64 = e.violated.iter().map(|v| v.weight).sum();
            assert!((total - e.violation).abs() < 1e-9);
        }
    }

    #[test]
    fn explanation_names_the_missing_values() {
        let (d, tl) = dataset();
        let e = explain(d.attribute(0), d.attribute(1), &TindParams::strict(), tl);
        assert!(!e.valid);
        // Two distinct violation episodes: "gone" (5..=9) and "late" (15..=17).
        assert_eq!(e.violated.len(), 2, "{e:?}");
        assert_eq!(e.violated[0].interval, Interval::new(5, 9));
        let gone = d.dictionary().get("gone").expect("interned");
        assert_eq!(e.violated[0].missing_values, vec![gone]);
        let rendered = e.render(&d);
        assert!(rendered.contains("INVALID"));
        assert!(rendered.contains("gone"), "{rendered}");
        assert!(rendered.contains("late"), "{rendered}");
    }

    #[test]
    fn delta_shrinks_the_violated_intervals() {
        let (d, tl) = dataset();
        // δ = 3 heals the "late" episode entirely (window reaches day 18),
        // leaving only "gone".
        let p = TindParams::weighted(0.0, 3, WeightFn::constant_one());
        let e = explain(d.attribute(0), d.attribute(1), &p, tl);
        assert_eq!(e.violated.len(), 1);
        assert_eq!(e.violated[0].interval, Interval::new(5, 9));
    }

    #[test]
    fn valid_pairs_report_headroom() {
        let (d, tl) = dataset();
        let p = TindParams::weighted(10.0, 3, WeightFn::constant_one());
        let e = explain(d.attribute(0), d.attribute(1), &p, tl);
        assert!(e.valid);
        assert!((e.violation - 5.0).abs() < 1e-9, "only 'gone' violates: {e:?}");
        let rendered = e.render(&d);
        assert!(rendered.contains("VALID"));
        assert!(rendered.contains("headroom"));
    }

    #[test]
    fn perfect_pair_has_no_violations() {
        let (d, tl) = dataset();
        let e = explain(d.attribute(1), d.attribute(1), &TindParams::strict(), tl);
        assert!(e.valid);
        assert!(e.violated.is_empty());
        assert!(e.render(&d).contains("no violated intervals"));
    }
}
