//! Minimal SVG line-chart rendering — regenerating the paper's *figures*,
//! not just their data tables.
//!
//! Hand-rolled (no plotting dependency): linear or log₁₀ y-axis, nice-number
//! ticks, multi-series polylines with point markers, and a legend. The
//! output is a standalone `.svg` file.

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points in data coordinates, ascending x.
    pub points: Vec<(f64, f64)>,
}

/// A figure specification.
#[derive(Debug, Clone)]
pub struct FigureSpec {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Render the y-axis in log₁₀ scale.
    pub log_y: bool,
    /// Render the x-axis in log₁₀ scale.
    pub log_x: bool,
    /// The plotted series.
    pub series: Vec<Series>,
}

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 400.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 150.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 50.0;

/// Categorical palette (color-blind friendly).
const COLORS: [&str; 7] =
    ["#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9", "#000000"];

/// Computes ~`target` "nice" tick positions covering `[lo, hi]`.
fn nice_ticks(lo: f64, hi: f64, target: usize) -> Vec<f64> {
    if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
        return vec![lo];
    }
    let raw_step = (hi - lo) / target.max(1) as f64;
    let mag = 10f64.powf(raw_step.log10().floor());
    let norm = raw_step / mag;
    let step = if norm < 1.5 {
        1.0
    } else if norm < 3.0 {
        2.0
    } else if norm < 7.0 {
        5.0
    } else {
        10.0
    } * mag;
    let start = (lo / step).ceil() * step;
    let mut ticks = Vec::new();
    let mut t = start;
    while t <= hi + step * 1e-9 {
        ticks.push(t);
        t += step;
    }
    ticks
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if !(1e-3..1e6).contains(&a) {
        format!("{v:.0e}")
    } else if a >= 100.0 {
        format!("{v:.0}")
    } else if a >= 1.0 {
        let s = format!("{v:.1}");
        s.strip_suffix(".0").map(str::to_string).unwrap_or(s)
    } else {
        format!("{v:.3}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

impl FigureSpec {
    /// Renders the figure as a standalone SVG document.
    ///
    /// # Panics
    /// Panics if no series contains a point, or a log axis sees a
    /// non-positive coordinate.
    pub fn render_svg(&self) -> String {
        use std::fmt::Write as _;
        let all: Vec<(f64, f64)> =
            self.series.iter().flat_map(|s| s.points.iter().copied()).collect();
        assert!(!all.is_empty(), "figure needs at least one data point");

        let tx = |v: f64| if self.log_x { v.log10() } else { v };
        let ty = |v: f64| if self.log_y { v.log10() } else { v };
        if self.log_y {
            assert!(all.iter().all(|&(_, y)| y > 0.0), "log y-axis needs positive values");
        }
        if self.log_x {
            assert!(all.iter().all(|&(x, _)| x > 0.0), "log x-axis needs positive values");
        }

        let (mut x_lo, mut x_hi) = all
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &(x, _)| (lo.min(tx(x)), hi.max(tx(x))));
        let (mut y_lo, mut y_hi) = all
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &(_, y)| (lo.min(ty(y)), hi.max(ty(y))));
        if x_hi - x_lo < 1e-12 {
            x_lo -= 0.5;
            x_hi += 0.5;
        }
        if y_hi - y_lo < 1e-12 {
            y_lo -= 0.5;
            y_hi += 0.5;
        }
        // Breathing room on the y-axis.
        let pad = (y_hi - y_lo) * 0.06;
        y_lo -= pad;
        y_hi += pad;

        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
        let px = |x: f64| MARGIN_L + (tx(x) - x_lo) / (x_hi - x_lo) * plot_w;
        let py = |y: f64| MARGIN_T + plot_h - (ty(y) - y_lo) / (y_hi - y_lo) * plot_h;

        let mut svg = String::new();
        let _ = writeln!(
            svg,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{HEIGHT}\" \
             viewBox=\"0 0 {WIDTH} {HEIGHT}\" font-family=\"sans-serif\" font-size=\"12\">"
        );
        let _ = writeln!(svg, "<rect width=\"{WIDTH}\" height=\"{HEIGHT}\" fill=\"white\"/>");
        let _ = writeln!(
            svg,
            "<text x=\"{:.1}\" y=\"22\" text-anchor=\"middle\" font-size=\"15\" font-weight=\"bold\">{}</text>",
            MARGIN_L + plot_w / 2.0,
            escape(&self.title)
        );

        // Gridlines + ticks.
        for t in nice_ticks(y_lo, y_hi, 6) {
            let y = MARGIN_T + plot_h - (t - y_lo) / (y_hi - y_lo) * plot_h;
            let label = if self.log_y { fmt_tick(10f64.powf(t)) } else { fmt_tick(t) };
            let _ = writeln!(
                svg,
                "<line x1=\"{MARGIN_L}\" y1=\"{y:.1}\" x2=\"{:.1}\" y2=\"{y:.1}\" stroke=\"#dddddd\"/>",
                MARGIN_L + plot_w
            );
            let _ = writeln!(
                svg,
                "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{label}</text>",
                MARGIN_L - 6.0,
                y + 4.0
            );
        }
        for t in nice_ticks(x_lo, x_hi, 7) {
            let x = MARGIN_L + (t - x_lo) / (x_hi - x_lo) * plot_w;
            let label = if self.log_x { fmt_tick(10f64.powf(t)) } else { fmt_tick(t) };
            let _ = writeln!(
                svg,
                "<line x1=\"{x:.1}\" y1=\"{MARGIN_T}\" x2=\"{x:.1}\" y2=\"{:.1}\" stroke=\"#eeeeee\"/>",
                MARGIN_T + plot_h
            );
            let _ = writeln!(
                svg,
                "<text x=\"{x:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{label}</text>",
                MARGIN_T + plot_h + 18.0
            );
        }

        // Axes.
        let _ = writeln!(
            svg,
            "<rect x=\"{MARGIN_L}\" y=\"{MARGIN_T}\" width=\"{plot_w:.1}\" height=\"{plot_h:.1}\" \
             fill=\"none\" stroke=\"#333333\"/>"
        );
        let _ = writeln!(
            svg,
            "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>",
            MARGIN_L + plot_w / 2.0,
            HEIGHT - 10.0,
            escape(&self.x_label)
        );
        let _ = writeln!(
            svg,
            "<text x=\"16\" y=\"{:.1}\" text-anchor=\"middle\" transform=\"rotate(-90 16 {:.1})\">{}</text>",
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            escape(&self.y_label)
        );

        // Series.
        for (si, series) in self.series.iter().enumerate() {
            let color = COLORS[si % COLORS.len()];
            if series.points.is_empty() {
                continue;
            }
            let path: Vec<String> =
                series.points.iter().map(|&(x, y)| format!("{:.1},{:.1}", px(x), py(y))).collect();
            let _ = writeln!(
                svg,
                "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"2\"/>",
                path.join(" ")
            );
            for &(x, y) in &series.points {
                let _ = writeln!(
                    svg,
                    "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"3\" fill=\"{color}\"/>",
                    px(x),
                    py(y)
                );
            }
            // Legend entry.
            let ly = MARGIN_T + 14.0 + si as f64 * 18.0;
            let lx = MARGIN_L + plot_w + 12.0;
            let _ = writeln!(
                svg,
                "<line x1=\"{lx:.1}\" y1=\"{ly:.1}\" x2=\"{:.1}\" y2=\"{ly:.1}\" stroke=\"{color}\" stroke-width=\"2\"/>",
                lx + 18.0
            );
            let _ = writeln!(
                svg,
                "<text x=\"{:.1}\" y=\"{:.1}\">{}</text>",
                lx + 24.0,
                ly + 4.0,
                escape(&series.label)
            );
        }
        svg.push_str("</svg>\n");
        svg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FigureSpec {
        FigureSpec {
            title: "Latency vs <attributes>".into(),
            x_label: "attributes".into(),
            y_label: "mean µs".into(),
            log_y: false,
            log_x: false,
            series: vec![
                Series { label: "search".into(), points: vec![(1.0, 10.0), (2.0, 12.0), (4.0, 15.0)] },
                Series { label: "reverse".into(), points: vec![(1.0, 20.0), (2.0, 25.0), (4.0, 40.0)] },
            ],
        }
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = spec().render_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 6);
        assert!(svg.contains("search"));
        assert!(svg.contains("reverse"));
        assert!(svg.contains("&lt;attributes&gt;"), "title must be escaped");
    }

    #[test]
    fn log_scale_ticks_are_powers() {
        let mut s = spec();
        s.log_y = true;
        s.series[0].points = vec![(1.0, 1.0), (2.0, 100.0), (4.0, 10_000.0)];
        s.series.truncate(1);
        let svg = s.render_svg();
        assert!(svg.contains(">100<") || svg.contains(">1e2<"), "{svg}");
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn log_scale_rejects_zero() {
        let mut s = spec();
        s.log_y = true;
        s.series[0].points.push((8.0, 0.0));
        s.render_svg();
    }

    #[test]
    #[should_panic(expected = "at least one data point")]
    fn empty_figure_rejected() {
        let s = FigureSpec {
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            log_y: false,
            log_x: false,
            series: vec![],
        };
        s.render_svg();
    }

    #[test]
    fn nice_ticks_cover_the_range() {
        let ticks = nice_ticks(0.0, 100.0, 5);
        assert!(ticks.len() >= 4 && ticks.len() <= 8, "{ticks:?}");
        assert!(ticks.windows(2).all(|w| w[1] > w[0]));
        assert!(*ticks.first().unwrap() >= 0.0);
        assert!(*ticks.last().unwrap() <= 100.0 + 1e-9);
        assert_eq!(nice_ticks(5.0, 5.0, 4), vec![5.0]);
    }

    #[test]
    fn single_point_series_renders() {
        let s = FigureSpec {
            title: "point".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            log_y: false,
            log_x: false,
            series: vec![Series { label: "p".into(), points: vec![(3.0, 7.0)] }],
        };
        let svg = s.render_svg();
        assert_eq!(svg.matches("<circle").count(), 1);
    }
}
