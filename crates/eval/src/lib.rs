//! # tind-eval
//!
//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (Section 5) on synthetic, paper-shaped data.
//!
//! Each experiment is a named runner producing a [`report::Report`] whose
//! rows correspond to the series the paper plots:
//!
//! | id | paper artifact |
//! |---|---|
//! | `fig7` | query runtimes vs number of indexed attributes (search, reverse, k-MANY incl. OOM) |
//! | `fig8` | number of tINDs found vs ε and δ |
//! | `fig9` | mean query runtime vs ε and δ |
//! | `fig10` | runtime with index built for larger ε than queried |
//! | `fig11` | runtime with index built for larger δ than queried |
//! | `fig12` | runtime vs Bloom filter size m (search and reverse) |
//! | `fig13` | runtime vs slice count k and selection strategy (search) |
//! | `fig14` | runtime vs slice count k (reverse) |
//! | `fig15` | precision-recall of static/strict/ε/εδ/wεδ variants |
//! | `table2` | % genuine static INDs per change-count bucket |
//! | `allpairs` | all-pairs discovery; tIND vs static IND counts |
//! | `latency` | single-query latency distribution at default parameters |
//! | `ablation` | (beyond the paper) per-stage pruning contributions |
//!
//! Experiments scale with [`context::Scale`]; `Quick` finishes in seconds
//! for CI, `Standard`/`Full` approach the paper's shape trends.

pub mod context;
pub mod experiments;
pub mod figure;
pub mod prcurve;
pub mod report;
pub mod stats;
pub mod workload;

pub use context::{ExpContext, Scale};
pub use report::Report;
