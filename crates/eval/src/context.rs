//! Experiment scaling and shared context.
//!
//! The paper runs on 1.3 M attributes and a 32-thread Xeon server; this
//! harness scales every experiment by a [`Scale`] factor so the same code
//! answers "does the shape hold?" in seconds (`Quick`), minutes
//! (`Standard`), or as close to the paper as the machine allows (`Full`).

/// How large the experiment workloads are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long runs for CI and smoke tests.
    Quick,
    /// The default for EXPERIMENTS.md numbers.
    Standard,
    /// Stress scale; hours.
    Full,
}

impl Scale {
    /// Parses a scale name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "quick" => Some(Scale::Quick),
            "standard" => Some(Scale::Standard),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Attribute count of the main generated dataset.
    pub fn num_attributes(&self) -> usize {
        match self {
            Scale::Quick => 1_500,
            Scale::Standard => 12_000,
            Scale::Full => 80_000,
        }
    }

    /// Timeline length in days (the paper uses 6148).
    pub fn timeline_days(&self) -> u32 {
        match self {
            Scale::Quick => 1_000,
            Scale::Standard => 3_000,
            Scale::Full => 6_148,
        }
    }

    /// Number of sampled search queries per measurement (paper: 30 000).
    pub fn num_queries(&self) -> usize {
        match self {
            Scale::Quick => 150,
            Scale::Standard => 1_500,
            Scale::Full => 30_000,
        }
    }
}

/// Shared context passed to every experiment runner.
#[derive(Debug, Clone)]
pub struct ExpContext {
    /// Workload scale.
    pub scale: Scale,
    /// Base RNG seed; experiments derive sub-seeds deterministically.
    pub seed: u64,
    /// Worker threads for all-pairs discovery (0 = all cores).
    pub threads: usize,
    /// Overrides the scale's attribute count (tests, custom runs).
    pub attributes_override: Option<usize>,
    /// Overrides the scale's query count.
    pub queries_override: Option<usize>,
}

impl Default for ExpContext {
    fn default() -> Self {
        ExpContext {
            scale: Scale::Quick,
            seed: 0xEDB7_2024,
            threads: 0,
            attributes_override: None,
            queries_override: None,
        }
    }
}

impl ExpContext {
    /// Context at a given scale with default seed/threads.
    pub fn at_scale(scale: Scale) -> Self {
        ExpContext { scale, ..ExpContext::default() }
    }

    /// A deliberately tiny context for unit tests.
    pub fn tiny(seed: u64) -> Self {
        ExpContext {
            scale: Scale::Quick,
            seed,
            threads: 2,
            attributes_override: Some(160),
            queries_override: Some(30),
        }
    }

    /// Effective attribute count.
    pub fn num_attributes(&self) -> usize {
        self.attributes_override.unwrap_or_else(|| self.scale.num_attributes())
    }

    /// Effective query count.
    pub fn num_queries(&self) -> usize {
        self.queries_override.unwrap_or_else(|| self.scale.num_queries())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("STANDARD"), Some(Scale::Standard));
        assert_eq!(Scale::parse("Full"), Some(Scale::Full));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Quick.num_attributes() < Scale::Standard.num_attributes());
        assert!(Scale::Standard.num_attributes() < Scale::Full.num_attributes());
        assert!(Scale::Quick.num_queries() < Scale::Full.num_queries());
    }
}
