//! Shared workload construction for the experiments.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tind_datagen::{generate, GeneratedDataset, GeneratorConfig};
use tind_model::AttrId;

use crate::context::ExpContext;

/// Generates the paper-shaped dataset for an experiment context, with
/// `num_attributes` attributes (defaults to the scale's size when `None`).
pub fn build_dataset(ctx: &ExpContext, num_attributes: Option<usize>) -> GeneratedDataset {
    let n = num_attributes.unwrap_or_else(|| ctx.num_attributes());
    let mut cfg = GeneratorConfig::paper_shaped(n, ctx.seed);
    cfg.timeline_days = ctx.scale.timeline_days();
    // Lifespans cannot exceed the scaled timeline.
    cfg.mean_lifespan_days = cfg.mean_lifespan_days.min(f64::from(cfg.timeline_days) * 0.4);
    generate(&cfg)
}

/// Samples `count` distinct query attribute ids (or all ids if fewer).
pub fn sample_queries(num_attributes: usize, count: usize, seed: u64) -> Vec<AttrId> {
    let mut rng = StdRng::seed_from_u64(seed);
    if count >= num_attributes {
        return (0..num_attributes as AttrId).collect();
    }
    let mut chosen = std::collections::BTreeSet::new();
    while chosen.len() < count {
        chosen.insert(rng.random_range(0..num_attributes as AttrId));
    }
    chosen.into_iter().collect()
}

/// Wraps a generated dataset in the `Arc` the index requires.
pub fn dataset_arc(generated: &GeneratedDataset) -> Arc<tind_model::Dataset> {
    Arc::new(generated.dataset.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn build_dataset_honors_scale_and_override() {
        let ctx = ExpContext::at_scale(Scale::Quick);
        let g = build_dataset(&ctx, Some(120));
        assert!((115..=120).contains(&g.dataset.len()), "got {}", g.dataset.len());
        assert_eq!(g.dataset.timeline().len(), Scale::Quick.timeline_days());
    }

    #[test]
    fn sample_queries_distinct_and_bounded() {
        let q = sample_queries(1000, 50, 7);
        assert_eq!(q.len(), 50);
        assert!(q.windows(2).all(|w| w[0] < w[1]));
        assert!(q.iter().all(|&id| id < 1000));
        // Requesting more than available returns everything.
        let all = sample_queries(10, 50, 7);
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn sampling_is_deterministic() {
        assert_eq!(sample_queries(500, 20, 3), sample_queries(500, 20, 3));
        assert_ne!(sample_queries(500, 20, 3), sample_queries(500, 20, 4));
    }
}
