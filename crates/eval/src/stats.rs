//! Latency statistics: the distribution summaries behind the paper's
//! boxplots and in-text percentages ("86.3% of all queries are answered in
//! under 100 milliseconds").

use std::time::Duration;

/// Summary of a latency sample.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Number of measurements.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Minimum.
    pub min: Duration,
    /// 25th percentile.
    pub p25: Duration,
    /// Median.
    pub median: Duration,
    /// 75th percentile.
    pub p75: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Maximum.
    pub max: Duration,
}

impl LatencySummary {
    /// Computes the summary; consumes and sorts the sample.
    ///
    /// # Panics
    /// Panics on an empty sample.
    pub fn compute(mut sample: Vec<Duration>) -> Self {
        assert!(!sample.is_empty(), "cannot summarize an empty latency sample");
        sample.sort_unstable();
        let count = sample.len();
        let total: Duration = sample.iter().sum();
        LatencySummary {
            count,
            mean: total / count as u32,
            min: sample[0],
            p25: percentile_sorted(&sample, 25.0),
            median: percentile_sorted(&sample, 50.0),
            p75: percentile_sorted(&sample, 75.0),
            p99: percentile_sorted(&sample, 99.0),
            max: sample[count - 1],
        }
    }

    /// Fraction of the sample at or below `threshold`; requires the
    /// original sample.
    pub fn fraction_within(sample: &[Duration], threshold: Duration) -> f64 {
        if sample.is_empty() {
            return 0.0;
        }
        sample.iter().filter(|&&d| d <= threshold).count() as f64 / sample.len() as f64
    }
}

/// Nearest-rank percentile over a sorted sample.
pub fn percentile_sorted(sorted: &[Duration], pct: f64) -> Duration {
    assert!(!sorted.is_empty());
    assert!((0.0..=100.0).contains(&pct));
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Times a closure.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Renders a log-scale ASCII histogram of a latency sample (one line per
/// decade bucket between the sample's min and max), for at-a-glance
/// distribution views in experiment reports.
pub fn ascii_histogram(sample: &[Duration], max_bar: usize) -> String {
    use std::fmt::Write as _;
    if sample.is_empty() {
        return "(empty sample)\n".to_string();
    }
    let min_us = sample.iter().map(Duration::as_micros).min().expect("non-empty").max(1) as f64;
    let max_us = sample.iter().map(Duration::as_micros).max().expect("non-empty").max(1) as f64;
    // Half-decade buckets across the observed span.
    let lo = min_us.log10().floor() * 2.0;
    let hi = max_us.log10().ceil() * 2.0;
    let n_buckets = ((hi - lo) as usize).max(1);
    let mut counts = vec![0usize; n_buckets];
    for d in sample {
        let us = (d.as_micros().max(1)) as f64;
        let idx = (((us.log10() * 2.0) - lo) as usize).min(n_buckets - 1);
        counts[idx] += 1;
    }
    let peak = *counts.iter().max().expect("non-empty").max(&1);
    let mut out = String::new();
    for (i, &count) in counts.iter().enumerate() {
        let lo_us = 10f64.powf((lo + i as f64) / 2.0);
        let hi_us = 10f64.powf((lo + i as f64 + 1.0) / 2.0);
        let bar = "#".repeat((count * max_bar).div_ceil(peak).min(max_bar) * usize::from(count > 0));
        let _ = writeln!(
            out,
            "{:>9} – {:<9} |{bar:<width$}| {count}",
            fmt_duration(Duration::from_micros(lo_us as u64)),
            fmt_duration(Duration::from_micros(hi_us as u64)),
            width = max_bar
        );
    }
    out
}

use crate::report::fmt_duration;

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn summary_of_uniform_sample() {
        let sample: Vec<Duration> = (1..=100).map(ms).collect();
        let s = LatencySummary::compute(sample.clone());
        assert_eq!(s.count, 100);
        assert_eq!(s.min, ms(1));
        assert_eq!(s.max, ms(100));
        assert_eq!(s.median, ms(50));
        assert_eq!(s.p25, ms(25));
        assert_eq!(s.p75, ms(75));
        assert_eq!(s.p99, ms(99));
        assert_eq!(s.mean, Duration::from_micros(50_500));
    }

    #[test]
    fn summary_of_single_element() {
        let s = LatencySummary::compute(vec![ms(7)]);
        assert_eq!(s.min, ms(7));
        assert_eq!(s.median, ms(7));
        assert_eq!(s.p99, ms(7));
        assert_eq!(s.max, ms(7));
    }

    #[test]
    #[should_panic(expected = "empty latency sample")]
    fn summary_rejects_empty() {
        LatencySummary::compute(Vec::new());
    }

    #[test]
    fn fraction_within_threshold() {
        let sample: Vec<Duration> = (1..=10).map(ms).collect();
        assert_eq!(LatencySummary::fraction_within(&sample, ms(5)), 0.5);
        assert_eq!(LatencySummary::fraction_within(&sample, ms(100)), 1.0);
        assert_eq!(LatencySummary::fraction_within(&sample, Duration::ZERO), 0.0);
        assert_eq!(LatencySummary::fraction_within(&[], ms(1)), 0.0);
    }

    #[test]
    fn time_it_measures_and_returns() {
        let (v, d) = time_it(|| {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(d >= Duration::from_millis(4));
    }

    #[test]
    fn histogram_buckets_cover_the_sample() {
        let sample: Vec<Duration> = vec![
            ms(1),
            ms(1),
            ms(2),
            ms(10),
            ms(50),
            ms(400),
        ];
        let h = ascii_histogram(&sample, 20);
        // Every sample lands in some bucket: counts on the right sum to 6.
        let total: usize = h
            .lines()
            .filter_map(|l| l.rsplit('|').next())
            .filter_map(|c| c.trim().parse::<usize>().ok())
            .sum();
        assert_eq!(total, 6, "histogram:\n{h}");
        assert!(h.contains('#'));
        assert_eq!(ascii_histogram(&[], 10), "(empty sample)\n");
    }

    #[test]
    fn histogram_single_value() {
        let h = ascii_histogram(&[ms(5), ms(5)], 10);
        let total: usize = h
            .lines()
            .filter_map(|l| l.rsplit('|').next())
            .filter_map(|c| c.trim().parse::<usize>().ok())
            .sum();
        assert_eq!(total, 2, "histogram:\n{h}");
    }

    #[test]
    fn percentile_unsorted_order_independent_after_sort() {
        let mut sample: Vec<Duration> = vec![ms(9), ms(1), ms(5)];
        sample.sort_unstable();
        assert_eq!(percentile_sorted(&sample, 0.0), ms(1));
        assert_eq!(percentile_sorted(&sample, 100.0), ms(9));
    }
}
