//! Plain-text and CSV report rendering.

/// A rectangular results table with named columns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        TextTable { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width does not match the header count.
    pub fn push_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width must match headers");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders as RFC-4180-style CSV (quotes fields containing separators).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| field(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let render = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            let line: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}", w = w))
                .collect();
            writeln!(f, "| {} |", line.join(" | "))
        };
        render(f, &self.headers)?;
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "|-{}-|", sep.join("-+-"))?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

/// One experiment's full output.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id, e.g. `fig7`.
    pub id: String,
    /// Human-readable title (what the paper artifact shows).
    pub title: String,
    /// The result rows.
    pub table: TextTable,
    /// Free-form annotations: paper-expectation reminders, scaling notes.
    pub notes: Vec<String>,
    /// Renderable figure, when the experiment maps naturally onto a chart.
    pub figure: Option<crate::figure::FigureSpec>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>, table: TextTable) -> Self {
        Report { id: id.into(), title: title.into(), table, notes: Vec::new(), figure: None }
    }

    /// Appends an annotation line.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Attaches a figure.
    pub fn set_figure(&mut self, figure: crate::figure::FigureSpec) -> &mut Self {
        self.figure = Some(figure);
        self
    }
}

/// Microseconds of a duration as f64 (figure y-values).
pub fn as_micros(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        write!(f, "{}", self.table)?;
        for n in &self.notes {
            writeln!(f, "  * {n}")?;
        }
        Ok(())
    }
}

/// Formats a duration in adaptive units (µs / ms / s).
pub fn fmt_duration(d: std::time::Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.0}µs")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1000.0)
    } else {
        format!("{:.2}s", us / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(["metric", "value"]);
        t.push_row(["mean", "63ms"]);
        t.push_row(["a-much-longer-metric-name", "1"]);
        let s = t.to_string();
        assert!(s.contains("| metric"));
        assert!(s.lines().count() == 4);
        let widths: Vec<usize> = s.lines().map(|l| l.chars().count()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "all lines same width: {widths:?}");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = TextTable::new(["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    fn csv_escapes_fields() {
        let mut t = TextTable::new(["name", "note"]);
        t.push_row(["plain", "a,b"]);
        t.push_row(["quo\"te", "line"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"quo\"\"te\""));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn report_display_includes_notes() {
        let mut t = TextTable::new(["x"]);
        t.push_row(["1"]);
        let mut r = Report::new("fig0", "demo", t);
        r.note("expect monotone growth");
        let s = r.to_string();
        assert!(s.contains("== fig0"));
        assert!(s.contains("* expect monotone growth"));
    }

    #[test]
    fn duration_formatting() {
        use std::time::Duration;
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500µs");
        assert_eq!(fmt_duration(Duration::from_millis(63)), "63.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }
}
