//! Precision-recall analysis of genuine-IND discovery (Figure 15).
//!
//! Methodology, following §5.5: the labelled universe is the set of
//! **static INDs discovered on the latest snapshot** (the paper annotated
//! a bucket-stratified sample of 900 of them by hand; we label via the
//! generator's ground truth). Every tIND variant then classifies each
//! labelled IND as discovered (it validates as a tIND under the setting)
//! or not:
//!
//! * precision — genuine fraction of the discovered subset,
//! * recall — discovered fraction of the genuine labelled INDs.
//!
//! Static discovery itself is the point (precision = genuine share of the
//! universe, recall = 1). A variant family's curve is the Pareto frontier
//! over its parameter grid. Violation weights per (δ, weight-function)
//! combination are computed once per pair and thresholded per ε.

use std::sync::Arc;

use tind_baseline::ManyIndex;
use tind_core::params::EPS_TOLERANCE;
use tind_core::validate::violation_weight;
use tind_core::TindParams;
use tind_datagen::{GeneratedDataset, GroundTruth};
use tind_model::{AttrId, WeightFn};

/// The parameter grid swept per variant family.
#[derive(Debug, Clone)]
pub struct GridSpec {
    /// ε values in days (constant weights) / absolute budget (decay).
    pub eps_values: Vec<f64>,
    /// δ values in days.
    pub deltas: Vec<u32>,
    /// Exponential decay bases `a` (all in (0,1)).
    pub decay_bases: Vec<f64>,
}

impl GridSpec {
    /// A compact default grid.
    pub fn default_grid() -> Self {
        GridSpec {
            eps_values: vec![0.0, 1.0, 3.0, 7.0, 15.0, 39.0],
            deltas: vec![0, 1, 7, 31],
            decay_bases: vec![0.999, 0.9999],
        }
    }
}

/// One (precision, recall) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct PrPoint {
    /// Fraction of discovered INDs that are genuine.
    pub precision: f64,
    /// Fraction of genuine INDs discovered.
    pub recall: f64,
    /// The parameter setting that produced the point.
    pub label: String,
}

/// A variant family's Pareto-frontier curve.
#[derive(Debug, Clone)]
pub struct FamilyCurve {
    /// Family name: `static`, `strict`, `eps`, `eps-delta`, `weighted`.
    pub family: &'static str,
    /// Frontier points, ascending in recall.
    pub points: Vec<PrPoint>,
}

/// Precision/recall of a discovered pair set against full ground truth.
pub fn precision_recall(discovered: &[(AttrId, AttrId)], truth: &GroundTruth) -> (f64, f64) {
    let genuine_total = truth.genuine_pairs().len();
    if discovered.is_empty() {
        return (1.0, 0.0); // vacuous precision, zero recall
    }
    let tp = discovered.iter().filter(|&&(l, r)| truth.is_genuine(l, r)).count();
    let precision = tp as f64 / discovered.len() as f64;
    let recall = if genuine_total == 0 { 0.0 } else { tp as f64 / genuine_total as f64 };
    (precision, recall)
}

/// Reduces points to their Pareto frontier (max precision per recall
/// level), ascending in recall.
pub fn pareto_frontier(mut points: Vec<PrPoint>) -> Vec<PrPoint> {
    points.sort_by(|a, b| {
        b.recall
            .partial_cmp(&a.recall)
            .expect("finite recalls")
            .then(b.precision.partial_cmp(&a.precision).expect("finite precisions"))
    });
    let mut frontier: Vec<PrPoint> = Vec::new();
    let mut best_precision = f64::NEG_INFINITY;
    for p in points {
        if p.precision > best_precision {
            best_precision = p.precision;
            frontier.push(p);
        }
    }
    frontier.reverse();
    frontier
}

/// The labelled evaluation universe: static INDs on the latest snapshot
/// with ground-truth genuineness labels.
#[derive(Debug, Clone)]
pub struct LabelledUniverse {
    /// The labelled pairs.
    pub pairs: Vec<(AttrId, AttrId)>,
    /// Per-pair genuineness.
    pub genuine: Vec<bool>,
    /// Number of genuine pairs.
    pub genuine_count: usize,
}

impl LabelledUniverse {
    /// Discovers static INDs at the latest snapshot and labels them.
    pub fn build(generated: &GeneratedDataset, bloom_m: u32) -> Self {
        let dataset = Arc::new(generated.dataset.clone());
        let pairs = ManyIndex::build_latest(dataset, bloom_m, 2).all_pairs();
        let genuine: Vec<bool> =
            pairs.iter().map(|&(l, r)| generated.truth.is_genuine(l, r)).collect();
        let genuine_count = genuine.iter().filter(|&&g| g).count();
        LabelledUniverse { pairs, genuine, genuine_count }
    }

    /// Number of labelled pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Precision/recall of a predicate over the universe.
    pub fn score(&self, discovered: &[bool]) -> (f64, f64) {
        assert_eq!(discovered.len(), self.len());
        let found = discovered.iter().filter(|&&d| d).count();
        let tp = discovered.iter().zip(&self.genuine).filter(|&(&d, &g)| d && g).count();
        let precision = if found == 0 { 1.0 } else { tp as f64 / found as f64 };
        let recall =
            if self.genuine_count == 0 { 0.0 } else { tp as f64 / self.genuine_count as f64 };
        (precision, recall)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum WeightKind {
    Constant,
    Decay(f64),
}

/// Evaluates all tIND variant families over the grid against the labelled
/// universe. Returns the curves plus the universe itself (for reporting).
pub fn evaluate_families(
    generated: &GeneratedDataset,
    grid: &GridSpec,
) -> (Vec<FamilyCurve>, LabelledUniverse) {
    assert!(!grid.eps_values.is_empty() && !grid.deltas.is_empty());
    let universe = LabelledUniverse::build(generated, 4096);
    let dataset = &generated.dataset;
    let timeline = dataset.timeline();

    // Violation weights per (δ, weight-kind) combination, one per pair.
    let mut combos: Vec<(u32, WeightKind)> = Vec::new();
    for &d in &grid.deltas {
        combos.push((d, WeightKind::Constant));
        for &a in &grid.decay_bases {
            combos.push((d, WeightKind::Decay(a)));
        }
    }
    let weights_per_combo: Vec<Vec<f64>> = combos
        .iter()
        .map(|&(delta, kind)| {
            let wf = match kind {
                WeightKind::Constant => WeightFn::constant_one(),
                WeightKind::Decay(a) => WeightFn::exponential(a, timeline),
            };
            // ε is irrelevant here: weights are computed exactly and
            // thresholded later per grid cell.
            let params = TindParams::weighted(1e18, delta, wf);
            universe
                .pairs
                .iter()
                .map(|&(l, r)| {
                    violation_weight(
                        dataset.attribute(l),
                        dataset.attribute(r),
                        &params,
                        timeline,
                        false,
                    )
                })
                .collect()
        })
        .collect();

    let score_at = |delta: u32, kind: WeightKind, eps: f64| -> (f64, f64) {
        let idx = combos.iter().position(|&(d, k)| d == delta && k == kind).expect("combo");
        let discovered: Vec<bool> =
            weights_per_combo[idx].iter().map(|&w| w <= eps + EPS_TOLERANCE).collect();
        universe.score(&discovered)
    };

    let mut curves = Vec::new();

    // Static INDs: the whole universe (recall 1 by construction).
    let static_precision = if universe.is_empty() {
        1.0
    } else {
        universe.genuine_count as f64 / universe.len() as f64
    };
    curves.push(FamilyCurve {
        family: "static",
        points: vec![PrPoint {
            precision: static_precision,
            recall: if universe.genuine_count > 0 { 1.0 } else { 0.0 },
            label: "latest snapshot".into(),
        }],
    });

    // Strict tINDs.
    let (p, r) = score_at(0, WeightKind::Constant, 0.0);
    curves.push(FamilyCurve {
        family: "strict",
        points: vec![PrPoint { precision: p, recall: r, label: "ε=0 δ=0".into() }],
    });

    // ε-relaxed (δ = 0, constant weights).
    let mut eps_points = Vec::new();
    for &eps in &grid.eps_values {
        let (p, r) = score_at(0, WeightKind::Constant, eps);
        eps_points.push(PrPoint { precision: p, recall: r, label: format!("ε={eps}") });
    }
    curves.push(FamilyCurve { family: "eps", points: pareto_frontier(eps_points) });

    // ε,δ-relaxed (constant weights).
    let mut ed_points = Vec::new();
    for &delta in &grid.deltas {
        for &eps in &grid.eps_values {
            let (p, r) = score_at(delta, WeightKind::Constant, eps);
            ed_points.push(PrPoint { precision: p, recall: r, label: format!("ε={eps} δ={delta}") });
        }
    }
    curves.push(FamilyCurve { family: "eps-delta", points: pareto_frontier(ed_points) });

    // wεδ: decay bases plus the constant limit (the paper treats wεδ as the
    // generalization of all previous variants).
    let mut w_points = Vec::new();
    for &(delta, kind) in &combos {
        for &eps in &grid.eps_values {
            let (p, r) = score_at(delta, kind, eps);
            let label = match kind {
                WeightKind::Constant => format!("ε={eps} δ={delta} w=const"),
                WeightKind::Decay(a) => format!("ε={eps} δ={delta} a={a}"),
            };
            w_points.push(PrPoint { precision: p, recall: r, label });
        }
    }
    curves.push(FamilyCurve { family: "weighted", points: pareto_frontier(w_points) });

    (curves, universe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tind_datagen::GeneratorConfig;

    #[test]
    fn precision_recall_basics() {
        let truth = GroundTruth::from_kinds(vec![
            tind_datagen::AttrKind::Source,
            tind_datagen::AttrKind::Derived { source: 0, dirty: false, renamed: false },
            tind_datagen::AttrKind::Noise,
        ]);
        // One genuine pair: (1, 0).
        let (p, r) = precision_recall(&[(1, 0), (2, 0)], &truth);
        assert!((p - 0.5).abs() < 1e-12);
        assert!((r - 1.0).abs() < 1e-12);
        let (p, r) = precision_recall(&[], &truth);
        assert_eq!((p, r), (1.0, 0.0));
    }

    #[test]
    fn pareto_frontier_removes_dominated_points() {
        let pts = vec![
            PrPoint { precision: 0.9, recall: 0.1, label: "a".into() },
            PrPoint { precision: 0.5, recall: 0.5, label: "b".into() },
            PrPoint { precision: 0.4, recall: 0.4, label: "dominated".into() },
            PrPoint { precision: 0.2, recall: 0.9, label: "c".into() },
        ];
        let f = pareto_frontier(pts);
        let labels: Vec<&str> = f.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["a", "b", "c"]);
        assert!(f.windows(2).all(|w| w[0].recall <= w[1].recall));
        assert!(f.windows(2).all(|w| w[0].precision >= w[1].precision));
    }

    #[test]
    fn universe_scoring() {
        let u = LabelledUniverse {
            pairs: vec![(0, 1), (0, 2), (1, 2), (3, 4)],
            genuine: vec![true, false, true, false],
            genuine_count: 2,
        };
        let (p, r) = u.score(&[true, true, false, false]);
        assert!((p - 0.5).abs() < 1e-12);
        assert!((r - 0.5).abs() < 1e-12);
        let (p, r) = u.score(&[false, false, false, false]);
        assert_eq!((p, r), (1.0, 0.0));
    }

    #[test]
    fn families_show_the_paper_ordering() {
        let g = tind_datagen::generate(&GeneratorConfig::small(160, 2024));
        let grid = GridSpec {
            eps_values: vec![0.0, 3.0, 15.0],
            deltas: vec![0, 7],
            decay_bases: vec![0.995],
        };
        let (curves, universe) = evaluate_families(&g, &grid);
        assert!(!universe.is_empty(), "static discovery must find labelled INDs");
        let best_recall = |fam: &str| -> f64 {
            curves
                .iter()
                .find(|c| c.family == fam)
                .expect("family present")
                .points
                .iter()
                .map(|p| p.recall)
                .fold(0.0, f64::max)
        };
        // Relaxation helps recall: strict ≤ ε ≤ εδ ≤ weighted ≤ static(=1).
        assert!(best_recall("strict") <= best_recall("eps") + 1e-12);
        assert!(best_recall("eps") <= best_recall("eps-delta") + 1e-12);
        assert!(best_recall("eps-delta") <= best_recall("weighted") + 1e-12);
        assert!((best_recall("static") - 1.0).abs() < 1e-12 || universe.genuine_count == 0);
    }

    #[test]
    fn static_precision_is_low_on_noisy_data() {
        // The generator's noise must make the latest-snapshot static INDs
        // mostly spurious (the paper measures 11%).
        let g = tind_datagen::generate(&GeneratorConfig::small(400, 7));
        let universe = LabelledUniverse::build(&g, 2048);
        assert!(universe.len() > 50, "universe too small: {}", universe.len());
        let precision = universe.genuine_count as f64 / universe.len() as f64;
        assert!(
            precision < 0.5,
            "static precision {precision} too high — noise not spurious enough"
        );
    }
}
