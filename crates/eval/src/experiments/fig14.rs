//! Figure 14: reverse-search runtime vs number of time slices k.
//!
//! Paper expectation: unlike forward search, more than two slices *hurt*
//! reverse queries — subset-direction slice checks are weak (only the
//! minimum single-version weight can be charged) and each extra slice adds
//! AND-NOT work.

use tind_core::SliceStrategy;

use crate::context::ExpContext;
use crate::experiments::fig13::measure_cell;
use crate::report::{fmt_duration, Report, TextTable};
use crate::workload::{build_dataset, dataset_arc};

/// Slice counts swept for reverse search.
pub const K_SWEEP: [usize; 5] = [1, 2, 4, 8, 16];

/// Runs the (k × strategy) grid for reverse search.
pub fn run(ctx: &ExpContext) -> Report {
    let generated = build_dataset(ctx, None);
    let dataset = dataset_arc(&generated);

    let mut table = TextTable::new(["k", "strategy", "mean of means", "min", "max"]);
    let mut random_series: Vec<(f64, f64)> = Vec::new();
    let mut weighted_series: Vec<(f64, f64)> = Vec::new();
    for &k in &K_SWEEP {
        for (strategy, name) in
            [(SliceStrategy::Random, "random"), (SliceStrategy::WeightedRandom, "weighted")]
        {
            let (mean, min, max) = measure_cell(ctx, &dataset, k, strategy, true);
            let point = (k as f64, crate::report::as_micros(mean));
            if strategy == SliceStrategy::Random {
                random_series.push(point);
            } else {
                weighted_series.push(point);
            }
            table.push_row([
                k.to_string(),
                name.to_string(),
                fmt_duration(mean),
                fmt_duration(min),
                fmt_duration(max),
            ]);
        }
    }

    let mut report = Report::new("fig14", "Reverse-search runtime vs slice count k", table);
    report.note("paper shape: k = 2 is the sweet spot; larger k increases runtime");
    report.set_figure(crate::figure::FigureSpec {
        title: "Reverse-search runtime vs slice count k".into(),
        x_label: "time slices k".into(),
        y_label: "mean query time (µs)".into(),
        log_y: false,
        log_x: false,
        series: vec![
            crate::figure::Series { label: "random".into(), points: random_series },
            crate::figure::Series { label: "weighted random".into(), points: weighted_series },
        ],
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig14_grid_complete() {
        let report = run(&ExpContext::tiny(14));
        assert_eq!(report.table.num_rows(), K_SWEEP.len() * 2);
    }
}
