//! Figure 11: building the index for larger δ values than the queries use.
//!
//! Slices are indexed over windows expanded by the *index* δ; querying with
//! a smaller δ stays sound but prunes less (values from too far away mask
//! violations, §4.4). The paper sees no significant impact up to 16× and a
//! slight dip beyond.

use tind_core::{IndexConfig, SliceConfig, TindIndex, TindParams};
use tind_model::WeightFn;

use crate::context::ExpContext;
use crate::experiments::time_searches;
use crate::report::{fmt_duration, Report, TextTable};
use crate::stats::{LatencySummary};
use crate::workload::{build_dataset, dataset_arc, sample_queries};

/// Index-time δ multipliers of the query δ = 7 (paper: up to 64×).
pub const DELTA_FACTORS: [u32; 6] = [1, 2, 4, 8, 16, 32];

/// Runs the deviation sweep.
pub fn run(ctx: &ExpContext) -> Report {
    let generated = build_dataset(ctx, None);
    let dataset = dataset_arc(&generated);
    let queries = sample_queries(dataset.len(), ctx.num_queries(), ctx.seed + 11);
    let params = TindParams::paper_default(); // δ = 7

    let mut table =
        TextTable::new(["index δ", "query δ", "mean", "median", "p99", "<100ms"]);
    for &factor in &DELTA_FACTORS {
        let index_delta = 7 * factor;
        if index_delta >= ctx.scale.timeline_days() / 2 {
            continue;
        }
        let index = TindIndex::build(
            dataset.clone(),
            IndexConfig {
                slices: SliceConfig::search_default(3.0, WeightFn::constant_one(), index_delta),
                seed: ctx.seed,
                ..IndexConfig::default()
            },
        );
        let (durations, _) = time_searches(&index, &queries, &params);
        let within = LatencySummary::fraction_within(&durations, std::time::Duration::from_millis(100));
        let s = LatencySummary::compute(durations);
        table.push_row([
            index_delta.to_string(),
            "7".to_string(),
            fmt_duration(s.mean),
            fmt_duration(s.median),
            fmt_duration(s.p99),
            format!("{:.1}%", within * 100.0),
        ]);
    }

    let mut report =
        Report::new("fig11", "Queries with δ = 7 on indices built for larger δ", table);
    report.note("paper shape: flat up to ~16×, slight dip beyond; majority stays under 100ms");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_produces_rows() {
        let report = run(&ExpContext::tiny(11));
        assert!(report.table.num_rows() >= 4);
        for row in report.table.rows() {
            assert_eq!(row[1], "7");
            let idx_delta: u32 = row[0].parse().expect("number");
            assert!(idx_delta >= 7);
        }
    }
}
