//! All-pairs discovery (§5.2 in-text results).
//!
//! Paper numbers at full scale: 306 047 tINDs vs 883 506 static INDs on
//! the latest snapshot; 77% of the static INDs are *not* valid tINDs
//! ("INDs valid at only a single point in time are often spurious"), and
//! roughly a third of the tINDs are invisible to static discovery.

use tind_baseline::ManyIndex;
use tind_core::{discover_all_pairs, AllPairsOptions, IndexConfig, TindIndex, TindParams};

use crate::context::ExpContext;
use crate::report::{fmt_duration, Report, TextTable};
use crate::stats::time_it;
use crate::workload::{build_dataset, dataset_arc};

/// Runs both discoveries and cross-tabulates.
pub fn run(ctx: &ExpContext) -> Report {
    let generated = build_dataset(ctx, None);
    let dataset = dataset_arc(&generated);
    let params = TindParams::paper_default();

    let (index, build_time) =
        time_it(|| TindIndex::build(dataset.clone(), IndexConfig { seed: ctx.seed, ..IndexConfig::default() }));
    let tind_outcome = discover_all_pairs(
        &index,
        &params,
        &AllPairsOptions { threads: ctx.threads, ..AllPairsOptions::default() },
    )
    .expect("no checkpointing configured, discovery cannot fail");
    let tinds = &tind_outcome.pairs;

    let (static_pairs, static_time) = time_it(|| {
        ManyIndex::build_latest(dataset.clone(), index.config().m, 2).all_pairs()
    });

    let tind_set: std::collections::HashSet<(u32, u32)> = tinds.iter().copied().collect();
    let static_set: std::collections::HashSet<(u32, u32)> = static_pairs.iter().copied().collect();
    let static_invalid_as_tind =
        static_pairs.iter().filter(|p| !tind_set.contains(p)).count();
    let tind_not_in_static = tinds.iter().filter(|p| !static_set.contains(p)).count();

    let mut table = TextTable::new(["metric", "value"]);
    table.push_row(["attributes".to_string(), dataset.len().to_string()]);
    table.push_row(["tINDs discovered".to_string(), tinds.len().to_string()]);
    table.push_row(["static INDs (latest snapshot)".to_string(), static_pairs.len().to_string()]);
    table.push_row([
        "static INDs invalid as tIND".to_string(),
        format!(
            "{} ({:.0}%)",
            static_invalid_as_tind,
            pct(static_invalid_as_tind, static_pairs.len())
        ),
    ]);
    table.push_row([
        "tINDs unseen by static discovery".to_string(),
        format!("{} ({:.0}%)", tind_not_in_static, pct(tind_not_in_static, tinds.len())),
    ]);
    table.push_row(["index build time".to_string(), fmt_duration(build_time)]);
    table.push_row(["all-pairs tIND discovery time".to_string(), fmt_duration(tind_outcome.elapsed)]);
    table.push_row(["static discovery time".to_string(), fmt_duration(static_time)]);
    table.push_row([
        "tIND validations run".to_string(),
        tind_outcome.validations_run.to_string(),
    ]);

    let mut report = Report::new("allpairs", "All-pairs tIND vs static IND discovery", table);
    report.note("paper (full scale): 306,047 tINDs vs 883,506 static INDs; 77% of static INDs invalid as tINDs; <3h wall clock");
    report
}

fn pct(part: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * part as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allpairs_shape_holds_at_tiny_scale() {
        let report = run(&ExpContext::tiny(3));
        let get = |metric: &str| -> String {
            report
                .table
                .rows()
                .iter()
                .find(|r| r[0] == metric)
                .unwrap_or_else(|| panic!("missing metric {metric}"))[1]
                .clone()
        };
        let tinds: usize = get("tINDs discovered").parse().expect("count");
        let statics: usize =
            get("static INDs (latest snapshot)").parse().expect("count");
        assert!(tinds > 0, "no tINDs found");
        assert!(statics > 0, "no static INDs found");
        assert!(
            statics > tinds,
            "paper shape: static discovery finds more (spurious) INDs: {statics} vs {tinds}"
        );
    }
}
