//! Table 2: share of genuine INDs per change-count bucket.
//!
//! Static INDs discovered on the latest snapshot are bucketed by the
//! change counts of their left- and right-hand sides ([4,8), [8,16),
//! [16,∞)); per bucket a sample of up to 100 INDs is labelled against the
//! ground truth. Paper expectation: genuineness density rises with change
//! frequency on both sides, peaking at [16,∞) ⊆ [16,∞) (24% in the paper).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tind_baseline::ManyIndex;
use tind_model::AttrId;

use crate::context::ExpContext;
use crate::report::{Report, TextTable};
use crate::workload::{build_dataset, dataset_arc};

/// The paper's change-count buckets.
pub const BUCKETS: [(usize, usize); 3] = [(4, 8), (8, 16), (16, usize::MAX)];

fn bucket_label(b: (usize, usize)) -> String {
    if b.1 == usize::MAX {
        format!("[{},∞)", b.0)
    } else {
        format!("[{},{})", b.0, b.1)
    }
}

fn bucket_of(changes: usize) -> Option<usize> {
    BUCKETS.iter().position(|&(lo, hi)| changes >= lo && changes < hi)
}

/// Runs the bucketed annotation study.
pub fn run(ctx: &ExpContext) -> Report {
    let generated = build_dataset(ctx, None);
    let dataset = dataset_arc(&generated);
    let many = ManyIndex::build_latest(dataset.clone(), 2048, 2);
    let static_pairs = many.all_pairs();

    // Bucket all static INDs by (lhs changes, rhs changes).
    let mut buckets: Vec<Vec<(AttrId, AttrId)>> = vec![Vec::new(); BUCKETS.len() * BUCKETS.len()];
    for &(l, r) in &static_pairs {
        let lc = dataset.attribute(l).change_count();
        let rc = dataset.attribute(r).change_count();
        if let (Some(bl), Some(br)) = (bucket_of(lc), bucket_of(rc)) {
            buckets[bl * BUCKETS.len() + br].push((l, r));
        }
    }

    let mut rng = StdRng::seed_from_u64(ctx.seed + 2);
    let mut table = TextTable::new(["bucket", "static INDs", "sampled", "TP [%]"]);
    for (bl, &lb) in BUCKETS.iter().enumerate() {
        for (br, &rb) in BUCKETS.iter().enumerate() {
            let pairs = &mut buckets[bl * BUCKETS.len() + br];
            pairs.shuffle(&mut rng);
            let sample: Vec<(AttrId, AttrId)> = pairs.iter().copied().take(100).collect();
            let tp = sample.iter().filter(|&&(l, r)| generated.truth.is_genuine(l, r)).count();
            let tp_pct = if sample.is_empty() {
                "n/a".to_string()
            } else {
                format!("{:.0}", 100.0 * tp as f64 / sample.len() as f64)
            };
            table.push_row([
                format!("{} ⊆ {}", bucket_label(lb), bucket_label(rb)),
                pairs.len().to_string(),
                sample.len().to_string(),
                tp_pct,
            ]);
        }
    }

    let mut report =
        Report::new("table2", "Genuine-IND share per change-count bucket (static INDs)", table);
    report.note(format!("{} static INDs on the latest snapshot", static_pairs.len()));
    report.note("paper shape: TP% grows with change frequency, peaking at [16,∞) ⊆ [16,∞)");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_nine_buckets() {
        let report = run(&ExpContext::tiny(2));
        assert_eq!(report.table.num_rows(), 9);
        for row in report.table.rows() {
            let total: usize = row[1].parse().expect("count");
            let sampled: usize = row[2].parse().expect("sample");
            assert!(sampled <= 100);
            assert!(sampled <= total);
        }
    }

    #[test]
    fn bucket_of_matches_paper_ranges() {
        assert_eq!(bucket_of(3), None);
        assert_eq!(bucket_of(4), Some(0));
        assert_eq!(bucket_of(7), Some(0));
        assert_eq!(bucket_of(8), Some(1));
        assert_eq!(bucket_of(15), Some(1));
        assert_eq!(bucket_of(16), Some(2));
        assert_eq!(bucket_of(1000), Some(2));
    }
}
