//! Figure 9: average query runtime for varying ε and δ.
//!
//! Paper expectations: runtime grows roughly linearly with ε; δ has a much
//! smaller effect except for very large settings (δ = 365), and even the
//! most lenient combination stays interactive.

use tind_core::{IndexConfig, SliceConfig, TindIndex, TindParams};
use tind_model::WeightFn;

use crate::context::ExpContext;
use crate::experiments::fig8::{delta_sweep, EPS_SWEEP};
use crate::experiments::time_searches;
use crate::report::{fmt_duration, Report, TextTable};
use crate::stats::LatencySummary;
use crate::workload::{build_dataset, dataset_arc, sample_queries};

/// Runs the runtime sweep.
pub fn run(ctx: &ExpContext) -> Report {
    let generated = build_dataset(ctx, None);
    let dataset = dataset_arc(&generated);
    let queries = sample_queries(dataset.len(), ctx.num_queries(), ctx.seed + 9);

    let mut table =
        TextTable::new(["sweep", "ε (days)", "δ (days)", "mean", "median", "p99"]);
    let mut eps_series: Vec<(f64, f64)> = Vec::new();
    let mut delta_series: Vec<(f64, f64)> = Vec::new();

    let mut measure = |sweep: &str, eps: f64, delta: u32| {
        let index = TindIndex::build(
            dataset.clone(),
            IndexConfig {
                slices: SliceConfig::search_default(eps, WeightFn::constant_one(), delta),
                seed: ctx.seed,
                ..IndexConfig::default()
            },
        );
        let params = TindParams::weighted(eps, delta, WeightFn::constant_one());
        let (durations, _) = time_searches(&index, &queries, &params);
        let s = LatencySummary::compute(durations);
        let point = (if sweep == "ε" { eps } else { f64::from(delta) }, crate::report::as_micros(s.mean));
        if sweep == "ε" {
            eps_series.push(point);
        } else {
            delta_series.push(point);
        }
        table.push_row([
            sweep.to_string(),
            format!("{eps}"),
            delta.to_string(),
            fmt_duration(s.mean),
            fmt_duration(s.median),
            fmt_duration(s.p99),
        ]);
    };

    for &eps in &EPS_SWEEP {
        measure("ε", eps, 7);
    }
    for delta in delta_sweep(ctx) {
        measure("δ", 3.0, delta);
    }

    let mut report = Report::new("fig9", "Mean runtimes for varying ε and δ", table);
    report.note("paper shape: ~linear growth in ε; δ nearly flat except very large settings");
    report.set_figure(crate::figure::FigureSpec {
        title: "Mean query runtime vs ε and δ".into(),
        x_label: "parameter value (days)".into(),
        y_label: "mean query time (µs)".into(),
        log_y: true,
        log_x: false,
        series: vec![
            crate::figure::Series { label: "ε sweep (δ=7)".into(), points: eps_series },
            crate::figure::Series { label: "δ sweep (ε=3)".into(), points: delta_series },
        ],
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_produces_all_rows() {
        let ctx = ExpContext::tiny(9);
        let report = run(&ctx);
        let expected = EPS_SWEEP.len() + delta_sweep(&ctx).len();
        assert_eq!(report.table.num_rows(), expected);
        for row in report.table.rows() {
            assert!(!row[3].is_empty());
        }
    }
}
