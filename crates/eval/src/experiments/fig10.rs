//! Figure 10: building the index for larger ε values than the queries use.
//!
//! The index's ε only affects slice sizing (longer slices), so queries at
//! the default ε = 3 still prune correctly — the paper observes a largely
//! unaffected mean with some growth in outliers.

use tind_core::{IndexConfig, SliceConfig, TindIndex, TindParams};
use tind_model::WeightFn;

use crate::context::ExpContext;
use crate::experiments::time_searches;
use crate::report::{fmt_duration, Report, TextTable};
use crate::stats::LatencySummary;
use crate::workload::{build_dataset, dataset_arc, sample_queries};

/// Index-time ε values; queries always use ε = 3.
pub const INDEX_EPS: [f64; 4] = [3.0, 7.0, 15.0, 39.0];

/// Runs the deviation sweep.
pub fn run(ctx: &ExpContext) -> Report {
    let generated = build_dataset(ctx, None);
    let dataset = dataset_arc(&generated);
    let queries = sample_queries(dataset.len(), ctx.num_queries(), ctx.seed + 10);
    let params = TindParams::paper_default();

    let mut table = TextTable::new(["index ε", "query ε", "mean", "median", "p99", "max"]);
    for &index_eps in &INDEX_EPS {
        let index = TindIndex::build(
            dataset.clone(),
            IndexConfig {
                slices: SliceConfig::search_default(index_eps, WeightFn::constant_one(), 7),
                seed: ctx.seed,
                ..IndexConfig::default()
            },
        );
        let (durations, _) = time_searches(&index, &queries, &params);
        let s = LatencySummary::compute(durations);
        table.push_row([
            format!("{index_eps}"),
            "3".to_string(),
            fmt_duration(s.mean),
            fmt_duration(s.median),
            fmt_duration(s.p99),
            fmt_duration(s.max),
        ]);
    }

    let mut report =
        Report::new("fig10", "Queries with ε = 3 on indices built for larger ε", table);
    report.note("paper shape: mean largely unaffected; outliers (max) grow with index ε");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_rows_per_index_eps() {
        let report = run(&ExpContext::tiny(10));
        assert_eq!(report.table.num_rows(), INDEX_EPS.len());
        assert!(report.table.rows().iter().all(|r| r[1] == "3"));
    }
}
