//! Figure 12: impact of the Bloom filter size m.
//!
//! Paper expectations: larger m → faster tIND search (fewer false-positive
//! candidates), but *slower* reverse search (sparser filters mean more
//! zero rows to AND-NOT per subset query).

use tind_core::{IndexConfig, SliceConfig, TindIndex, TindParams};
use tind_model::WeightFn;

use crate::context::ExpContext;
use crate::experiments::{time_reverse_searches, time_searches};
use crate::report::{fmt_duration, Report, TextTable};
use crate::stats::LatencySummary;
use crate::workload::{build_dataset, dataset_arc, sample_queries};

/// Bloom filter sizes swept (paper: 512 – 4096 plus our extremes).
pub const M_SWEEP: [u32; 6] = [256, 512, 1024, 2048, 4096, 8192];

/// Runs the m sweep for both query directions.
pub fn run(ctx: &ExpContext) -> Report {
    let generated = build_dataset(ctx, None);
    let dataset = dataset_arc(&generated);
    let queries = sample_queries(dataset.len(), ctx.num_queries(), ctx.seed + 12);
    let params = TindParams::paper_default();

    let mut table =
        TextTable::new(["m", "search mean", "search p99", "reverse mean", "reverse p99"]);
    let mut fwd_series: Vec<(f64, f64)> = Vec::new();
    let mut rev_series: Vec<(f64, f64)> = Vec::new();
    for &m in &M_SWEEP {
        let fwd_index = TindIndex::build(
            dataset.clone(),
            IndexConfig { m, seed: ctx.seed, ..IndexConfig::default() },
        );
        let (fwd, _) = time_searches(&fwd_index, &queries, &params);
        let fwd = LatencySummary::compute(fwd);

        let rev_index = TindIndex::build(
            dataset.clone(),
            IndexConfig {
                m,
                slices: SliceConfig::reverse_default(3.0, WeightFn::constant_one(), 7),
                seed: ctx.seed,
                build_reverse: true,
                ..IndexConfig::default()
            },
        );
        let (rev, _) = time_reverse_searches(&rev_index, &queries, &params);
        let rev = LatencySummary::compute(rev);
        fwd_series.push((f64::from(m), crate::report::as_micros(fwd.mean)));
        rev_series.push((f64::from(m), crate::report::as_micros(rev.mean)));

        table.push_row([
            m.to_string(),
            fmt_duration(fwd.mean),
            fmt_duration(fwd.p99),
            fmt_duration(rev.mean),
            fmt_duration(rev.p99),
        ]);
    }

    let mut report = Report::new("fig12", "Impact of Bloom filter size m on runtime", table);
    report.note("paper shape: search mean falls with m; reverse mean rises with m (fewer severe outliers)");
    report.set_figure(crate::figure::FigureSpec {
        title: "Query runtime vs Bloom filter size m".into(),
        x_label: "m (bits)".into(),
        y_label: "mean query time (µs)".into(),
        log_y: true,
        log_x: true,
        series: vec![
            crate::figure::Series { label: "tIND search".into(), points: fwd_series },
            crate::figure::Series { label: "reverse search".into(), points: rev_series },
        ],
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_covers_all_sizes() {
        let report = run(&ExpContext::tiny(12));
        assert_eq!(report.table.num_rows(), M_SWEEP.len());
    }
}
