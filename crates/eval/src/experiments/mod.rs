//! The experiment registry: one runner per paper table/figure.

use std::time::Duration;

use tind_core::{TindIndex, TindParams};
use tind_model::AttrId;

use crate::context::ExpContext;
use crate::report::Report;

pub mod ablation;
pub mod allpairs;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod latency;
pub mod table2;

/// An experiment runner.
pub type Runner = fn(&ExpContext) -> Report;

/// All registered experiments: `(id, description, runner)`.
pub fn all() -> Vec<(&'static str, &'static str, Runner)> {
    vec![
        ("fig7", "query runtime vs number of indexed attributes (search / reverse / k-MANY)", fig7::run),
        ("fig8", "number of tINDs found vs ε and δ", fig8::run),
        ("fig9", "mean query runtime vs ε and δ", fig9::run),
        ("fig10", "runtime impact of building the index for larger ε than queried", fig10::run),
        ("fig11", "runtime impact of building the index for larger δ than queried", fig11::run),
        ("fig12", "runtime vs Bloom filter size m (search and reverse)", fig12::run),
        ("fig13", "search runtime vs slice count k and selection strategy", fig13::run),
        ("fig14", "reverse-search runtime vs slice count k", fig14::run),
        ("fig15", "precision-recall of genuine-IND discovery per tIND variant", fig15::run),
        ("table2", "share of genuine static INDs per change-count bucket", table2::run),
        ("allpairs", "all-pairs tIND discovery vs static IND discovery", allpairs::run),
        ("latency", "single-query latency distribution at default parameters", latency::run),
        ("ablation", "contribution of each Algorithm-1 pruning stage (beyond the paper)", ablation::run),
    ]
}

/// Runs an experiment by id.
pub fn run_by_id(id: &str, ctx: &ExpContext) -> Option<Report> {
    all().into_iter().find(|(eid, _, _)| *eid == id).map(|(_, _, runner)| runner(ctx))
}

/// Times one forward search per query id.
pub(crate) fn time_searches(
    index: &TindIndex,
    queries: &[AttrId],
    params: &TindParams,
) -> (Vec<Duration>, usize) {
    let mut durations = Vec::with_capacity(queries.len());
    let mut total_results = 0usize;
    for &q in queries {
        let start = std::time::Instant::now();
        let out = index.search(q, params);
        durations.push(start.elapsed());
        total_results += out.results.len();
    }
    (durations, total_results)
}

/// Times one reverse search per query id.
pub(crate) fn time_reverse_searches(
    index: &TindIndex,
    queries: &[AttrId],
    params: &TindParams,
) -> (Vec<Duration>, usize) {
    let mut durations = Vec::with_capacity(queries.len());
    let mut total_results = 0usize;
    for &q in queries {
        let start = std::time::Instant::now();
        let out = index.reverse_search(q, params);
        durations.push(start.elapsed());
        total_results += out.results.len();
    }
    (durations, total_results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_resolvable() {
        let reg = all();
        assert_eq!(reg.len(), 13);
        let mut ids: Vec<&str> = reg.iter().map(|(id, _, _)| *id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 13, "duplicate experiment ids");
        assert!(run_by_id("nonexistent", &ExpContext::default()).is_none());
    }
}
