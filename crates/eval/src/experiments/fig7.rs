//! Figure 7: query runtimes for different numbers of indexed attributes.
//!
//! Paper expectations: median tIND search stays under ~100 ms at every
//! input size; reverse search is ~2× slower but scales the same way;
//! k-MANY is more than an order of magnitude slower and runs out of memory
//! at the largest input sizes (reproduced here via the memory budget, see
//! DESIGN.md).

use tind_baseline::{KManyIndex, MemoryBudget};
use tind_core::{IndexConfig, TindIndex, TindParams};

use crate::context::ExpContext;
use crate::experiments::{time_reverse_searches, time_searches};
use crate::report::{fmt_duration, Report, TextTable};
use crate::stats::LatencySummary;
use crate::workload::{build_dataset, dataset_arc, sample_queries};

/// Runs the scaling ladder.
pub fn run(ctx: &ExpContext) -> Report {
    let max_n = ctx.num_attributes();
    let ladder = [max_n / 8, max_n / 4, max_n / 2, max_n];
    // k-MANY must track one f64 per attribute per in-flight query; give it
    // a budget that admits the smaller rungs but breaks at the last one —
    // the scaled analogue of the paper machine OOMing from 1.2 M of 1.3 M
    // attributes onwards.
    let budget_bytes = (max_n as f64 * 0.92) as usize * tind_baseline::kmany::TRACKING_BYTES_PER_CANDIDATE;

    let mut table = TextTable::new([
        "attributes",
        "search mean",
        "search median",
        "search p99",
        "reverse mean",
        "reverse median",
        "k-MANY mean",
    ]);
    let params = TindParams::paper_default();
    let mut fwd_series: Vec<(f64, f64)> = Vec::new();
    let mut rev_series: Vec<(f64, f64)> = Vec::new();
    let mut kmany_series: Vec<(f64, f64)> = Vec::new();

    for (i, &n) in ladder.iter().enumerate() {
        let generated = build_dataset(&ctx.clone_with_seed(ctx.seed + i as u64), Some(n));
        let dataset = dataset_arc(&generated);
        let queries = sample_queries(dataset.len(), ctx.num_queries(), ctx.seed + 77);

        let fwd_index = TindIndex::build(dataset.clone(), IndexConfig::default());
        let (fwd, _) = time_searches(&fwd_index, &queries, &params);
        let fwd = LatencySummary::compute(fwd);

        let rev_index = TindIndex::build(dataset.clone(), IndexConfig::reverse_default());
        let (rev, _) = time_reverse_searches(&rev_index, &queries, &params);
        let rev = LatencySummary::compute(rev);

        let kmany = KManyIndex::build(dataset.clone(), 16, 4096, 2, params.delta, ctx.seed);
        let budget = MemoryBudget::new(budget_bytes);
        let mut kmany_durations = Vec::new();
        let mut oom = false;
        for &q in &queries {
            let start = std::time::Instant::now();
            match kmany.search(q, &params, &budget) {
                Ok(_) => kmany_durations.push(start.elapsed()),
                Err(_) => {
                    oom = true;
                    break;
                }
            }
        }
        let kmany_cell = if oom {
            "OOM".to_string()
        } else {
            let mean = LatencySummary::compute(kmany_durations).mean;
            kmany_series.push((n as f64, crate::report::as_micros(mean)));
            fmt_duration(mean)
        };
        fwd_series.push((n as f64, crate::report::as_micros(fwd.mean)));
        rev_series.push((n as f64, crate::report::as_micros(rev.mean)));

        table.push_row([
            n.to_string(),
            fmt_duration(fwd.mean),
            fmt_duration(fwd.median),
            fmt_duration(fwd.p99),
            fmt_duration(rev.mean),
            fmt_duration(rev.median),
            kmany_cell,
        ]);
    }

    let mut report = Report::new(
        "fig7",
        "Runtimes for different numbers of indexed attributes",
        table,
    );
    report.note(format!(
        "k-MANY memory budget: {budget_bytes} bytes of violation-tracking state \
         (breaks at the largest rung, mirroring the paper's OOM at 1.2M/1.3M attributes)"
    ));
    report.note("paper shape: search median < 100ms at all sizes; reverse ≈ 2× search; k-MANY ≥ 10× slower");
    report.set_figure(crate::figure::FigureSpec {
        title: "Mean query runtime vs indexed attributes".into(),
        x_label: "attributes".into(),
        y_label: "mean query time (µs)".into(),
        log_y: true,
        log_x: true,
        series: vec![
            crate::figure::Series { label: "tIND search".into(), points: fwd_series },
            crate::figure::Series { label: "reverse search".into(), points: rev_series },
            crate::figure::Series { label: "k-MANY".into(), points: kmany_series },
        ],
    });
    report
}

impl ExpContext {
    /// Clone with a different base seed (rung-specific datasets).
    pub(crate) fn clone_with_seed(&self, seed: u64) -> ExpContext {
        ExpContext { seed, ..self.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature end-to-end run; asserts structure, not absolute times.
    #[test]
    fn fig7_smoke() {
        let report = run(&ExpContext::tiny(11));
        assert_eq!(report.table.num_rows(), 4);
        let last = report.table.rows().last().expect("4 rows");
        assert_eq!(last[6], "OOM", "largest rung must OOM");
        // Smaller rungs must not OOM.
        for row in &report.table.rows()[..3] {
            assert_ne!(row[6], "OOM", "rung {} unexpectedly OOMed", row[0]);
        }
    }
}
