//! Figure 13: search runtime vs number of time slices k and slice
//! selection strategy.
//!
//! Paper expectations: more slices help tIND search (diminishing returns);
//! weighted-random wins for small k, plain random wins for large k (less
//! slice redundancy). Like the paper, three query sets × three seeds.

use tind_core::{IndexConfig, SliceConfig, SliceStrategy, TindIndex, TindParams};
use tind_model::WeightFn;

use crate::context::ExpContext;
use crate::experiments::time_searches;
use crate::report::{fmt_duration, Report, TextTable};
use crate::stats::LatencySummary;
use crate::workload::{build_dataset, dataset_arc, sample_queries};

/// Slice counts swept.
pub const K_SWEEP: [usize; 5] = [1, 2, 4, 8, 16];

/// Measures mean runtime for one (k, strategy) cell across 3 seeds × 3
/// query sets; returns (mean of means, min, max).
pub(crate) fn measure_cell(
    ctx: &ExpContext,
    dataset: &std::sync::Arc<tind_model::Dataset>,
    k: usize,
    strategy: SliceStrategy,
    reverse: bool,
) -> (std::time::Duration, std::time::Duration, std::time::Duration) {
    let params = TindParams::paper_default();
    let queries_per_set = (ctx.num_queries() / 3).max(10);
    let mut means = Vec::new();
    for seed_offset in 0..3u64 {
        let slices = SliceConfig {
            k,
            strategy,
            sizing_eps: 3.0,
            sizing_weights: WeightFn::constant_one(),
            max_delta: 7,
            expanded_disjoint: reverse,
            start_stride: 4,
            attr_sample: 64,
        };
        let index = TindIndex::build(
            dataset.clone(),
            IndexConfig {
                m: if reverse { 512 } else { 4096 },
                slices,
                seed: ctx.seed ^ (seed_offset + 1),
                build_reverse: reverse,
                ..IndexConfig::default()
            },
        );
        for qset in 0..3u64 {
            let queries =
                sample_queries(dataset.len(), queries_per_set, ctx.seed + 1000 + qset);
            let (durations, _) = if reverse {
                crate::experiments::time_reverse_searches(&index, &queries, &params)
            } else {
                time_searches(&index, &queries, &params)
            };
            means.push(LatencySummary::compute(durations).mean);
        }
    }
    let min = *means.iter().min().expect("9 runs");
    let max = *means.iter().max().expect("9 runs");
    let mean = means.iter().sum::<std::time::Duration>() / means.len() as u32;
    (mean, min, max)
}

/// Runs the (k × strategy) grid for forward search.
pub fn run(ctx: &ExpContext) -> Report {
    let generated = build_dataset(ctx, None);
    let dataset = dataset_arc(&generated);

    let mut table = TextTable::new(["k", "strategy", "mean of means", "min", "max"]);
    let mut random_series: Vec<(f64, f64)> = Vec::new();
    let mut weighted_series: Vec<(f64, f64)> = Vec::new();
    for &k in &K_SWEEP {
        for (strategy, name) in
            [(SliceStrategy::Random, "random"), (SliceStrategy::WeightedRandom, "weighted")]
        {
            let (mean, min, max) = measure_cell(ctx, &dataset, k, strategy, false);
            let point = (k as f64, crate::report::as_micros(mean));
            if strategy == SliceStrategy::Random {
                random_series.push(point);
            } else {
                weighted_series.push(point);
            }
            table.push_row([
                k.to_string(),
                name.to_string(),
                fmt_duration(mean),
                fmt_duration(min),
                fmt_duration(max),
            ]);
        }
    }

    let mut report =
        Report::new("fig13", "Search runtime vs slice count k and selection strategy", table);
    report.note("paper shape: runtime falls with k; weighted better at small k, random better at k = 16");
    report.set_figure(crate::figure::FigureSpec {
        title: "Search runtime vs slice count k".into(),
        x_label: "time slices k".into(),
        y_label: "mean query time (µs)".into(),
        log_y: false,
        log_x: false,
        series: vec![
            crate::figure::Series { label: "random".into(), points: random_series },
            crate::figure::Series { label: "weighted random".into(), points: weighted_series },
        ],
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_grid_complete() {
        let report = run(&ExpContext::tiny(13));
        assert_eq!(report.table.num_rows(), K_SWEEP.len() * 2);
    }
}
