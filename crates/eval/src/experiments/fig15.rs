//! Figure 15: precision-recall of genuine-IND discovery per tIND variant.
//!
//! Paper expectations: static INDs on the latest snapshot reach only ~11%
//! precision; strict tINDs are precise-ish but have almost no recall
//! (25% / 4% in the paper); each relaxation step (ε → εδ → wεδ)
//! dominates its predecessor at higher recall levels.

use crate::context::ExpContext;
use crate::prcurve::{evaluate_families, GridSpec};
use crate::report::{Report, TextTable};
use crate::workload::build_dataset;

/// Runs the grid search and reports every frontier point.
pub fn run(ctx: &ExpContext) -> Report {
    let generated = build_dataset(ctx, None);
    let grid = GridSpec::default_grid();
    let (curves, universe) = evaluate_families(&generated, &grid);

    let mut table = TextTable::new(["variant", "setting", "precision", "recall"]);
    let mut series = Vec::new();
    for curve in &curves {
        let mut points: Vec<(f64, f64)> = Vec::new();
        for p in &curve.points {
            points.push((p.recall, p.precision));
            table.push_row([
                curve.family.to_string(),
                p.label.clone(),
                format!("{:.3}", p.precision),
                format!("{:.3}", p.recall),
            ]);
        }
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite recalls"));
        series.push(crate::figure::Series { label: curve.family.to_string(), points });
    }

    let mut report =
        Report::new("fig15", "Precision-recall curves of the tIND variants", table);
    report.note(format!(
        "labelled universe: {} static INDs on the latest snapshot, {} of them genuine \
         (the paper hand-annotated a 900-IND sample of this universe)",
        universe.len(),
        universe.genuine_count
    ));
    report.note("paper shape: static ≈ 11% precision; strict high-precision/low-recall; ε < εδ ≤ wεδ at high recall");
    report.set_figure(crate::figure::FigureSpec {
        title: "Precision-recall of genuine-IND discovery".into(),
        x_label: "recall".into(),
        y_label: "precision".into(),
        log_y: false,
        log_x: false,
        series,
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig15_reports_all_families() {
        let report = run(&ExpContext::tiny(15));
        let families: std::collections::HashSet<&str> =
            report.table.rows().iter().map(|r| r[0].as_str()).collect();
        for fam in ["static", "strict", "eps", "eps-delta", "weighted"] {
            assert!(families.contains(fam), "missing family {fam}");
        }
        // Precision/recall are valid fractions.
        for row in report.table.rows() {
            let p: f64 = row[2].parse().expect("precision");
            let r: f64 = row[3].parse().expect("recall");
            assert!((0.0..=1.0).contains(&p));
            assert!((0.0..=1.0).contains(&r));
        }
    }
}
