//! Ablation of the Algorithm-1 pruning stages (a design-choice study
//! beyond the paper's figures; see DESIGN.md).
//!
//! Measures query latency and surviving-candidate counts with each pruning
//! stage disabled. Expected: the required-values stage does the heavy
//! lifting (disabling it forces |D| validations); time slices and the
//! exact filter trim the remainder.

use tind_core::{IndexConfig, SearchOptions, TindIndex, TindParams};

use crate::context::ExpContext;
use crate::report::{fmt_duration, Report, TextTable};
use crate::stats::LatencySummary;
use crate::workload::{build_dataset, dataset_arc, sample_queries};

/// Runs the stage ablation.
pub fn run(ctx: &ExpContext) -> Report {
    let generated = build_dataset(ctx, None);
    let dataset = dataset_arc(&generated);
    let index = TindIndex::build(dataset.clone(), IndexConfig { seed: ctx.seed, ..IndexConfig::default() });
    let queries = sample_queries(dataset.len(), ctx.num_queries(), ctx.seed + 4);
    let params = TindParams::paper_default();

    let cases: [(&str, SearchOptions); 5] = [
        ("full pipeline", SearchOptions::default()),
        (
            "no required values",
            SearchOptions { use_required_values: false, ..SearchOptions::default() },
        ),
        ("no time slices", SearchOptions { use_time_slices: false, ..SearchOptions::default() }),
        ("no exact filter", SearchOptions { use_exact_filter: false, ..SearchOptions::default() }),
        (
            "validation only",
            SearchOptions {
                use_required_values: false,
                use_time_slices: false,
                use_exact_filter: false,
            },
        ),
    ];

    let mut table =
        TextTable::new(["configuration", "mean", "median", "p99", "validations/query"]);
    let mut baseline: Option<Vec<Vec<u32>>> = None;
    for (name, options) in cases {
        let mut durations = Vec::with_capacity(queries.len());
        let mut validations = 0usize;
        let mut results: Vec<Vec<u32>> = Vec::with_capacity(queries.len());
        for &qid in &queries {
            let start = std::time::Instant::now();
            let out = index.search_with_options(qid, &params, &options);
            durations.push(start.elapsed());
            validations += out.stats.validations_run;
            results.push(out.results);
        }
        // Correctness invariant: every configuration returns identical
        // results — stages only prune provably invalid candidates.
        match &baseline {
            None => baseline = Some(results),
            Some(expected) => assert_eq!(expected, &results, "ablation changed results: {name}"),
        }
        let s = LatencySummary::compute(durations);
        table.push_row([
            name.to_string(),
            fmt_duration(s.mean),
            fmt_duration(s.median),
            fmt_duration(s.p99),
            format!("{:.1}", validations as f64 / queries.len() as f64),
        ]);
    }

    let mut report = Report::new("ablation", "Contribution of each pruning stage", table);
    report.note("expected: required values prune the bulk; disabling everything validates |D| candidates per query");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_reports_all_configurations() {
        let report = run(&ExpContext::tiny(40));
        assert_eq!(report.table.num_rows(), 5);
        let full: f64 = report.table.rows()[0][4].parse().expect("validations");
        let none: f64 = report.table.rows()[4][4].parse().expect("validations");
        assert!(none > full, "validation-only must validate more ({none} vs {full})");
    }
}
