//! Figure 8: number of tINDs found for varying ε and δ.
//!
//! Paper expectation: monotone growth in both parameters — more relaxation
//! never removes a result.

use tind_core::{IndexConfig, SliceConfig, TindIndex, TindParams};
use tind_model::WeightFn;

use crate::context::ExpContext;
use crate::report::{Report, TextTable};
use crate::workload::{build_dataset, dataset_arc, sample_queries};

/// ε sweep (days; δ fixed at the default 7).
pub const EPS_SWEEP: [f64; 6] = [0.0, 1.0, 3.0, 7.0, 15.0, 39.0];
/// δ sweep (days; ε fixed at the default 3), scaled variants of the
/// paper's {0, 1, 7, 31, 365}.
pub const DELTA_SWEEP: [u32; 5] = [0, 1, 7, 31, 365];

/// Clips the δ sweep to the context's timeline.
pub(crate) fn delta_sweep(ctx: &ExpContext) -> Vec<u32> {
    DELTA_SWEEP
        .iter()
        .copied()
        .filter(|&d| d < ctx.scale.timeline_days() / 2)
        .collect()
}

/// Runs the sweep; each setting gets an index built for exactly that
/// setting (the paper assumes accurate knowledge of query needs, §5.1).
pub fn run(ctx: &ExpContext) -> Report {
    let generated = build_dataset(ctx, None);
    let dataset = dataset_arc(&generated);
    let queries = sample_queries(dataset.len(), ctx.num_queries(), ctx.seed + 8);

    let mut table = TextTable::new(["sweep", "ε (days)", "δ (days)", "tINDs found"]);

    for &eps in &EPS_SWEEP {
        let params = TindParams::weighted(eps, 7, WeightFn::constant_one());
        let index = TindIndex::build(
            dataset.clone(),
            IndexConfig {
                slices: SliceConfig::search_default(eps, WeightFn::constant_one(), 7),
                seed: ctx.seed,
                ..IndexConfig::default()
            },
        );
        let found: usize = queries.iter().map(|&q| index.search(q, &params).results.len()).sum();
        table.push_row(["ε".to_string(), format!("{eps}"), "7".to_string(), found.to_string()]);
    }

    for delta in delta_sweep(ctx) {
        let params = TindParams::weighted(3.0, delta, WeightFn::constant_one());
        let index = TindIndex::build(
            dataset.clone(),
            IndexConfig {
                slices: SliceConfig::search_default(3.0, WeightFn::constant_one(), delta),
                seed: ctx.seed,
                ..IndexConfig::default()
            },
        );
        let found: usize = queries.iter().map(|&q| index.search(q, &params).results.len()).sum();
        table.push_row(["δ".to_string(), "3".to_string(), format!("{delta}"), found.to_string()]);
    }

    let mut report =
        Report::new("fig8", "Impact of ε and δ on the number of tINDs found", table);
    report.note(format!("{} queries over {} attributes", queries.len(), dataset.len()));
    report.note("paper shape: found counts grow monotonically in both ε and δ");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_counts_are_monotone() {
        let report = run(&ExpContext::tiny(8));
        let rows = report.table.rows();
        let counts = |sweep: &str| -> Vec<usize> {
            rows.iter()
                .filter(|r| r[0] == sweep)
                .map(|r| r[3].parse().expect("count"))
                .collect()
        };
        let eps_counts = counts("ε");
        assert_eq!(eps_counts.len(), EPS_SWEEP.len());
        assert!(eps_counts.windows(2).all(|w| w[0] <= w[1]), "ε sweep not monotone: {eps_counts:?}");
        let delta_counts = counts("δ");
        assert!(
            delta_counts.windows(2).all(|w| w[0] <= w[1]),
            "δ sweep not monotone: {delta_counts:?}"
        );
        assert!(*eps_counts.last().unwrap() > 0, "generous ε finds nothing");
    }
}
