//! In-text latency claims (§5.2): mean 63 ms over 1.3 M attributes; 86.3%
//! of queries under 100 ms; 99.8% under 1 s.

use std::time::Duration;

use tind_core::{IndexConfig, TindIndex, TindParams};

use crate::context::ExpContext;
use crate::experiments::time_searches;
use crate::report::{fmt_duration, Report, TextTable};
use crate::stats::LatencySummary;
use crate::workload::{build_dataset, dataset_arc, sample_queries};

/// Runs the latency distribution measurement at default parameters.
pub fn run(ctx: &ExpContext) -> Report {
    let generated = build_dataset(ctx, None);
    let dataset = dataset_arc(&generated);
    let index = TindIndex::build(dataset.clone(), IndexConfig { seed: ctx.seed, ..IndexConfig::default() });
    let queries = sample_queries(dataset.len(), ctx.num_queries(), ctx.seed + 63);
    let (durations, total_results) = time_searches(&index, &queries, &TindParams::paper_default());

    let under_100ms = LatencySummary::fraction_within(&durations, Duration::from_millis(100));
    let under_1s = LatencySummary::fraction_within(&durations, Duration::from_secs(1));
    let histogram = crate::stats::ascii_histogram(&durations, 30);
    let s = LatencySummary::compute(durations);

    let mut table = TextTable::new(["metric", "value"]);
    table.push_row(["attributes".to_string(), dataset.len().to_string()]);
    table.push_row(["queries".to_string(), s.count.to_string()]);
    table.push_row(["mean".to_string(), fmt_duration(s.mean)]);
    table.push_row(["median".to_string(), fmt_duration(s.median)]);
    table.push_row(["p99".to_string(), fmt_duration(s.p99)]);
    table.push_row(["max".to_string(), fmt_duration(s.max)]);
    table.push_row(["< 100ms".to_string(), format!("{:.1}%", under_100ms * 100.0)]);
    table.push_row(["< 1s".to_string(), format!("{:.1}%", under_1s * 100.0)]);
    table.push_row(["total results".to_string(), total_results.to_string()]);

    let mut report = Report::new("latency", "Single-query latency at default parameters", table);
    report.note("paper (1.3M attributes): mean 63ms, 86.3% < 100ms, 99.8% < 1s");
    report.note(format!("latency distribution (log buckets):\n{histogram}"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_report_is_fast_at_tiny_scale() {
        let report = run(&ExpContext::tiny(63));
        let under_1s = report
            .table
            .rows()
            .iter()
            .find(|r| r[0] == "< 1s")
            .expect("metric present")[1]
            .trim_end_matches('%')
            .parse::<f64>()
            .expect("percentage");
        assert!(under_1s >= 99.0, "tiny-scale queries must be interactive, got {under_1s}%");
    }
}
