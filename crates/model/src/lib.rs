//! # tind-model
//!
//! The temporal data model underlying temporal inclusion dependency (tIND)
//! discovery, as defined in *"Efficient Discovery of Temporal Inclusion
//! Dependencies in Wikipedia Tables"* (EDBT 2024).
//!
//! The model follows Section 3.1 of the paper:
//!
//! * Time is a sequence of equidistant timestamps `t ∈ {0, 1, .., n-1}`
//!   (daily granularity in the paper). See [`time`].
//! * An *attribute* is a column of a (Wikipedia) table together with its full
//!   version history: a sequence of value sets, each valid from its start
//!   timestamp until the next change. See [`history`].
//! * Values are strings interned into compact [`value::ValueId`]s by a
//!   [`value::Dictionary`]; all set operations work on ids.
//! * A [`dataset::Dataset`] bundles a timeline, a dictionary and a collection
//!   of attribute histories — the input `D` of the discovery problem.
//! * Timestamp weight functions `w` (Definition 3.6) live in [`weights`],
//!   including the exponential-decay family with `O(1)` closed-form interval
//!   sums (Equation 5).
//!
//! ## Conventions
//!
//! `A[t]` for a timestamp outside the attribute's observation period is the
//! empty set. The empty set is included in every set and includes nothing, so
//! an unobservable left-hand side never contributes violations. This is the
//! convention used consistently by `tind-core`'s validators and index.

pub mod binio;
pub mod checksum;
pub mod dataset;
pub mod diff;
pub mod hash;
pub mod history;
pub mod memory;
pub mod quarantine;
pub mod snapshot;
pub mod stats;
pub mod table;
pub mod time;
pub mod value;
pub mod weights;

pub use dataset::{AttrId, Dataset, DatasetBuilder};
pub use memory::{Charge, MemoryBudget};
pub use quarantine::{QuarantineEntry, QuarantineReport};
pub use history::{AttributeHistory, HistoryBuilder, Version};
pub use table::{TableVersion, TemporalTable, TupleInterner};
pub use time::{Interval, Timeline, Timestamp};
pub use value::{Dictionary, ValueId, ValueSet};
pub use weights::{WeightFn, WeightTable};
