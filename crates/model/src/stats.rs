//! Dataset summary statistics.
//!
//! Section 5.1 characterizes the paper's Wikipedia dataset: 1.3 M attribute
//! histories, on average 13 changes per attribute, 5.6-year lifespans, mean
//! version cardinality 28. [`DatasetStats`] computes the same aggregates so
//! synthetic data can be calibrated against the paper and experiment reports
//! can describe their input.

use crate::dataset::Dataset;

/// Aggregate statistics over a dataset's attribute histories.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Number of attribute histories.
    pub num_attributes: usize,
    /// Timeline length in timestamps.
    pub timeline_len: u32,
    /// Number of distinct values in the dictionary.
    pub num_distinct_values: usize,
    /// Mean number of changes per attribute (versions − 1).
    pub mean_changes: f64,
    /// Median number of changes per attribute.
    pub median_changes: usize,
    /// Mean lifespan in timestamps.
    pub mean_lifespan: f64,
    /// Mean cardinality of a single attribute version.
    pub mean_version_cardinality: f64,
    /// Mean of the per-attribute median version cardinality.
    pub mean_median_cardinality: f64,
    /// Total number of versions across all attributes.
    pub total_versions: usize,
}

impl DatasetStats {
    /// Computes statistics for `dataset`.
    ///
    /// # Panics
    /// Panics on an empty dataset — there is nothing to summarize.
    pub fn compute(dataset: &Dataset) -> Self {
        assert!(!dataset.is_empty(), "cannot summarize an empty dataset");
        let n = dataset.len();
        let mut changes: Vec<usize> = Vec::with_capacity(n);
        let mut lifespan_sum = 0u64;
        let mut version_count = 0usize;
        let mut cardinality_sum = 0u64;
        let mut median_card_sum = 0u64;
        for h in dataset.attributes() {
            changes.push(h.change_count());
            lifespan_sum += u64::from(h.lifespan());
            version_count += h.versions().len();
            cardinality_sum += h.versions().iter().map(|v| v.values.len() as u64).sum::<u64>();
            median_card_sum += h.median_cardinality() as u64;
        }
        changes.sort_unstable();
        DatasetStats {
            num_attributes: n,
            timeline_len: dataset.timeline().len(),
            num_distinct_values: dataset.dictionary().len(),
            mean_changes: changes.iter().sum::<usize>() as f64 / n as f64,
            median_changes: changes[n / 2],
            mean_lifespan: lifespan_sum as f64 / n as f64,
            mean_version_cardinality: cardinality_sum as f64 / version_count as f64,
            mean_median_cardinality: median_card_sum as f64 / n as f64,
            total_versions: version_count,
        }
    }
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "attributes:            {}", self.num_attributes)?;
        writeln!(f, "timeline length:       {} timestamps", self.timeline_len)?;
        writeln!(f, "distinct values:       {}", self.num_distinct_values)?;
        writeln!(f, "mean changes:          {:.2}", self.mean_changes)?;
        writeln!(f, "median changes:        {}", self.median_changes)?;
        writeln!(
            f,
            "mean lifespan:         {:.1} timestamps ({:.2} years at daily granularity)",
            self.mean_lifespan,
            self.mean_lifespan / 365.25
        )?;
        writeln!(f, "mean version size:     {:.1}", self.mean_version_cardinality)?;
        writeln!(f, "mean median card.:     {:.1}", self.mean_median_cardinality)?;
        write!(f, "total versions:        {}", self.total_versions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::time::Timeline;

    #[test]
    fn stats_on_small_dataset() {
        let mut b = DatasetBuilder::new(Timeline::new(20));
        b.add_attribute("a", &[(0, vec!["x"]), (5, vec!["x", "y"])], 19); // 1 change, lifespan 20
        b.add_attribute("b", &[(10, vec!["p", "q", "r"])], 14); // 0 changes, lifespan 5
        let d = b.build();
        let s = DatasetStats::compute(&d);
        assert_eq!(s.num_attributes, 2);
        assert_eq!(s.timeline_len, 20);
        assert_eq!(s.num_distinct_values, 5);
        assert!((s.mean_changes - 0.5).abs() < 1e-12);
        assert!((s.mean_lifespan - 12.5).abs() < 1e-12);
        assert_eq!(s.total_versions, 3);
        // version sizes: 1, 2, 3 → mean 2
        assert!((s.mean_version_cardinality - 2.0).abs() < 1e-12);
        let rendered = s.to_string();
        assert!(rendered.contains("attributes:            2"));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn stats_reject_empty() {
        let d = DatasetBuilder::new(Timeline::new(5)).build();
        DatasetStats::compute(&d);
    }
}
