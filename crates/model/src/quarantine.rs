//! Checksummed quarantine reports for resilient ingestion.
//!
//! Streaming ingestion (PR 2) skips malformed pages instead of aborting:
//! each skipped page is counted and a bounded sample is retained so an
//! operator can inspect *what* was dropped and *why* without the report
//! itself growing with the dump. The report is persisted alongside the
//! dataset using the workspace's on-disk conventions — 8-byte
//! magic-plus-version header, varint encoding ([`crate::binio`]), a
//! source fingerprint guard, and a CRC-32 trailer ([`crate::checksum`])
//! so truncated or bit-rotted reports are rejected with a typed error.

use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::binio::{check_magic, get_str, get_varint, put_str, put_varint, BinIoError};
use crate::checksum;

/// Magic bytes identifying a serialized quarantine report, including a
/// format version.
pub const QUARANTINE_MAGIC: &[u8; 8] = b"TINDQR\x00\x01";

/// Default cap on the number of sampled entries a report retains.
pub const DEFAULT_SAMPLE_CAP: usize = 64;

fn corrupt(msg: impl Into<String>) -> BinIoError {
    BinIoError::Corrupt(msg.into())
}

/// One quarantined page: where it sat in the source, which page it was,
/// and why it was skipped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// Byte offset of the page's `<page>` open tag in the source stream.
    pub byte_offset: u64,
    /// Page title, or a synthesized description when no title survived.
    pub page: String,
    /// Human-readable reason the page was quarantined.
    pub error: String,
}

/// Counters plus a bounded sample of quarantined pages from one
/// ingestion run.
///
/// Invariant (checked on decode): `pages_seen == pages_kept +
/// pages_quarantined`, so the report can always reconcile against the
/// produced dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineReport {
    /// Fingerprint of the source stream the report belongs to.
    pub source_fingerprint: u64,
    /// Total `<page>` elements encountered.
    pub pages_seen: u64,
    /// Pages that contributed revisions to the dataset.
    pub pages_kept: u64,
    /// Pages skipped with a recorded reason.
    pub pages_quarantined: u64,
    /// Revisions kept across all kept pages.
    pub revisions_kept: u64,
    /// Revisions dropped inside otherwise-kept pages (bad timestamps,
    /// pre-epoch edits, duplicate keys).
    pub revisions_dropped: u64,
    /// Cap on `entries`; quarantines past the cap are counted only.
    pub sample_cap: usize,
    /// Sampled quarantined pages, in stream order, at most `sample_cap`.
    pub entries: Vec<QuarantineEntry>,
}

impl QuarantineReport {
    /// An empty report for a source with the given fingerprint.
    pub fn new(source_fingerprint: u64, sample_cap: usize) -> Self {
        QuarantineReport {
            source_fingerprint,
            pages_seen: 0,
            pages_kept: 0,
            pages_quarantined: 0,
            revisions_kept: 0,
            revisions_dropped: 0,
            sample_cap,
            entries: Vec::new(),
        }
    }

    /// Records one quarantined page, sampling it if under the cap.
    pub fn record(&mut self, byte_offset: u64, page: impl Into<String>, error: impl Into<String>) {
        self.pages_quarantined += 1;
        if self.entries.len() < self.sample_cap {
            self.entries.push(QuarantineEntry {
                byte_offset,
                page: page.into(),
                error: error.into(),
            });
        }
    }

    /// Fraction of seen pages that were quarantined (0 when nothing was
    /// seen yet).
    pub fn error_rate(&self) -> f64 {
        if self.pages_seen == 0 {
            0.0
        } else {
            self.pages_quarantined as f64 / self.pages_seen as f64
        }
    }

    /// Serializes the report.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64 + 64 * self.entries.len());
        buf.put_slice(QUARANTINE_MAGIC);
        buf.put_u64_le(self.source_fingerprint);
        put_varint(&mut buf, self.pages_seen);
        put_varint(&mut buf, self.pages_kept);
        put_varint(&mut buf, self.pages_quarantined);
        put_varint(&mut buf, self.revisions_kept);
        put_varint(&mut buf, self.revisions_dropped);
        put_varint(&mut buf, self.sample_cap as u64);
        put_varint(&mut buf, self.entries.len() as u64);
        for e in &self.entries {
            put_varint(&mut buf, e.byte_offset);
            put_str(&mut buf, &e.page);
            put_str(&mut buf, &e.error);
        }
        checksum::append_trailer(&mut buf);
        buf.freeze()
    }

    /// Deserializes a report written by [`QuarantineReport::encode`],
    /// verifying magic, version, checksum trailer, and count invariants.
    pub fn decode(bytes: Bytes) -> Result<QuarantineReport, BinIoError> {
        check_magic(&bytes, QUARANTINE_MAGIC, "quarantine report")?;
        let mut buf = checksum::verify_and_strip(bytes)?;
        buf.advance(QUARANTINE_MAGIC.len());
        if buf.remaining() < 8 {
            return Err(corrupt("truncated quarantine header"));
        }
        let source_fingerprint = buf.get_u64_le();
        let pages_seen = get_varint(&mut buf)?;
        let pages_kept = get_varint(&mut buf)?;
        let pages_quarantined = get_varint(&mut buf)?;
        let revisions_kept = get_varint(&mut buf)?;
        let revisions_dropped = get_varint(&mut buf)?;
        let sample_cap = get_varint(&mut buf)? as usize;
        let num_entries = get_varint(&mut buf)? as usize;
        if pages_kept + pages_quarantined != pages_seen {
            return Err(corrupt("quarantine counts do not reconcile (kept + quarantined != seen)"));
        }
        if num_entries as u64 > pages_quarantined || num_entries > sample_cap {
            return Err(corrupt("quarantine sample larger than its own counters allow"));
        }
        let mut entries = Vec::with_capacity(num_entries.min(1 << 16));
        for _ in 0..num_entries {
            let byte_offset = get_varint(&mut buf)?;
            let page = get_str(&mut buf)?;
            let error = get_str(&mut buf)?;
            entries.push(QuarantineEntry { byte_offset, page, error });
        }
        if buf.has_remaining() {
            return Err(corrupt("trailing bytes after quarantine report"));
        }
        Ok(QuarantineReport {
            source_fingerprint,
            pages_seen,
            pages_kept,
            pages_quarantined,
            revisions_kept,
            revisions_dropped,
            sample_cap,
            entries,
        })
    }

    /// Atomically writes the report to `path` (temp file + rename).
    pub fn write_file(&self, path: &Path) -> Result<(), BinIoError> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.encode())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads a report from `path`.
    pub fn read_file(path: &Path) -> Result<QuarantineReport, BinIoError> {
        let raw = std::fs::read(path)?;
        QuarantineReport::decode(Bytes::from(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> QuarantineReport {
        let mut r = QuarantineReport::new(0xDEAD_BEEF_CAFE_F00D, 4);
        r.pages_seen = 10;
        r.pages_kept = 7;
        r.revisions_kept = 41;
        r.revisions_dropped = 3;
        r.record(120, "Broken ▸ page", "missing <title>");
        r.record(4096, "Oversize", "page exceeds 64 B cap");
        r.record(9999, "Panicky", "wikitext parse panicked");
        r
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let r = sample_report();
        let decoded = QuarantineReport::decode(r.encode()).expect("decodes");
        assert_eq!(decoded, r);
    }

    #[test]
    fn sampling_respects_the_cap() {
        let mut r = QuarantineReport::new(1, 2);
        r.pages_seen = 5;
        for i in 0..5 {
            r.record(i, format!("p{i}"), "bad");
        }
        assert_eq!(r.pages_quarantined, 5);
        assert_eq!(r.entries.len(), 2, "entries bounded by sample_cap");
        assert_eq!(r.error_rate(), 1.0);
        let decoded = QuarantineReport::decode(r.encode()).expect("decodes");
        assert_eq!(decoded, r);
    }

    #[test]
    fn file_roundtrip_is_atomic_on_path() {
        let dir = std::env::temp_dir().join("tind-model-quarantine-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("run.tqr");
        let r = sample_report();
        r.write_file(&path).expect("writes");
        assert!(!path.with_extension("tmp").exists(), "temp file renamed away");
        assert_eq!(QuarantineReport::read_file(&path).expect("reads"), r);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_and_bit_flips_are_rejected() {
        let bytes = sample_report().encode();
        for cut in [0usize, 4, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(QuarantineReport::decode(bytes.slice(0..cut)).is_err(), "cut at {cut}");
        }
        let clean = bytes.to_vec();
        for bit in (0..clean.len() * 8).step_by(5) {
            let mut bad = clean.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(QuarantineReport::decode(Bytes::from(bad)).is_err(), "bit {bit}");
        }
    }

    #[test]
    fn unreconciled_counts_are_rejected() {
        let mut r = sample_report();
        r.pages_kept = 99; // kept + quarantined != seen
        assert!(QuarantineReport::decode(r.encode()).is_err());
        let mut r = sample_report();
        r.pages_quarantined = 1; // fewer quarantines than sampled entries
        r.pages_kept = 9;
        assert!(QuarantineReport::decode(r.encode()).is_err());
    }

    #[test]
    fn error_rate_handles_zero_pages() {
        let r = QuarantineReport::new(0, 8);
        assert_eq!(r.error_rate(), 0.0);
    }
}
