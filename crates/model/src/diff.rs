//! Version diffing: histories as change streams.
//!
//! Attribute histories store full value sets per version; change-oriented
//! consumers (incremental maintenance, update-stream replay, storage
//! compaction) want the *deltas*. This module converts both ways and
//! proves the conversions inverse in its property tests.

use crate::history::{AttributeHistory, HistoryBuilder};
use crate::time::Timestamp;
use crate::value::{self, ValueId, ValueSet};

/// One change to an attribute's value set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionDelta {
    /// Timestamp the change takes effect.
    pub at: Timestamp,
    /// Values added (canonical set).
    pub added: ValueSet,
    /// Values removed (canonical set).
    pub removed: ValueSet,
}

impl VersionDelta {
    /// Total number of touched values.
    pub fn churn(&self) -> usize {
        self.added.len() + self.removed.len()
    }
}

/// Computes the canonical added/removed sets between two versions.
pub fn set_delta(before: &[ValueId], after: &[ValueId]) -> (ValueSet, ValueSet) {
    let mut added = Vec::new();
    let mut removed = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < before.len() && j < after.len() {
        match before[i].cmp(&after[j]) {
            std::cmp::Ordering::Less => {
                removed.push(before[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                added.push(after[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    removed.extend_from_slice(&before[i..]);
    added.extend_from_slice(&after[j..]);
    (added, removed)
}

/// Decomposes a history into its initial version plus a delta stream.
pub fn to_deltas(history: &AttributeHistory) -> (ValueSet, Vec<VersionDelta>) {
    let versions = history.versions();
    let initial = versions[0].values.clone();
    let deltas = versions
        .windows(2)
        .map(|w| {
            let (added, removed) = set_delta(&w[0].values, &w[1].values);
            VersionDelta { at: w[1].start, added, removed }
        })
        .collect();
    (initial, deltas)
}

/// Reassembles a history from an initial set and a delta stream.
///
/// # Panics
/// Panics if deltas are out of order, start before `first_observed`, or a
/// delta is a no-op (the inverse of [`to_deltas`] never produces those).
pub fn from_deltas(
    name: &str,
    first_observed: Timestamp,
    initial: ValueSet,
    deltas: &[VersionDelta],
    last_observed: Timestamp,
) -> AttributeHistory {
    let mut builder = HistoryBuilder::new(name);
    let mut current = value::canonicalize(initial);
    builder.push(first_observed, current.clone());
    for d in deltas {
        let mut set: std::collections::BTreeSet<ValueId> = current.iter().copied().collect();
        for &v in &d.removed {
            set.remove(&v);
        }
        for &v in &d.added {
            set.insert(v);
        }
        current = set.into_iter().collect();
        builder.push(d.at, current.clone());
    }
    builder.finish(last_observed)
}

/// Summary statistics of a history's change stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnStats {
    /// Number of deltas (changes).
    pub changes: usize,
    /// Total values added across all changes.
    pub total_added: usize,
    /// Total values removed.
    pub total_removed: usize,
    /// Mean touched values per change.
    pub mean_churn: f64,
    /// Net growth (|last version| − |first version|).
    pub net_growth: i64,
}

/// Computes churn statistics for a history.
pub fn churn_stats(history: &AttributeHistory) -> ChurnStats {
    let (initial, deltas) = to_deltas(history);
    let total_added: usize = deltas.iter().map(|d| d.added.len()).sum();
    let total_removed: usize = deltas.iter().map(|d| d.removed.len()).sum();
    let last_len = history.versions().last().expect("non-empty").values.len();
    ChurnStats {
        changes: deltas.len(),
        total_added,
        total_removed,
        mean_churn: if deltas.is_empty() {
            0.0
        } else {
            (total_added + total_removed) as f64 / deltas.len() as f64
        },
        net_growth: last_len as i64 - initial.len() as i64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history() -> AttributeHistory {
        let mut b = HistoryBuilder::new("h");
        b.push(2, vec![1, 2, 3]);
        b.push(5, vec![1, 3, 4]); // +4, -2
        b.push(9, vec![1, 3, 4, 5, 6]); // +5, +6
        b.finish(12)
    }

    #[test]
    fn set_delta_basics() {
        assert_eq!(set_delta(&[1, 2, 3], &[1, 3, 4]), (vec![4], vec![2]));
        assert_eq!(set_delta(&[], &[7]), (vec![7], vec![]));
        assert_eq!(set_delta(&[7], &[]), (vec![], vec![7]));
        assert_eq!(set_delta(&[1, 2], &[1, 2]), (vec![], vec![]));
    }

    #[test]
    fn to_deltas_extracts_changes() {
        let (initial, deltas) = to_deltas(&history());
        assert_eq!(initial, vec![1, 2, 3]);
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0], VersionDelta { at: 5, added: vec![4], removed: vec![2] });
        assert_eq!(deltas[1], VersionDelta { at: 9, added: vec![5, 6], removed: vec![] });
        assert_eq!(deltas[1].churn(), 2);
    }

    #[test]
    fn roundtrip_is_identity() {
        let h = history();
        let (initial, deltas) = to_deltas(&h);
        let back = from_deltas("h", h.first_observed(), initial, &deltas, h.last_observed());
        assert_eq!(back.versions(), h.versions());
        assert_eq!(back.last_observed(), h.last_observed());
    }

    #[test]
    fn churn_stats_summarize() {
        let s = churn_stats(&history());
        assert_eq!(s.changes, 2);
        assert_eq!(s.total_added, 3);
        assert_eq!(s.total_removed, 1);
        assert!((s.mean_churn - 2.0).abs() < 1e-12);
        assert_eq!(s.net_growth, 2);
    }

    #[test]
    fn single_version_has_no_churn() {
        let mut b = HistoryBuilder::new("solo");
        b.push(0, vec![1]);
        let s = churn_stats(&b.finish(4));
        assert_eq!(s.changes, 0);
        assert_eq!(s.mean_churn, 0.0);
        assert_eq!(s.net_growth, 0);
    }
}
