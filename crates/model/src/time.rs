//! Timestamps, closed intervals, and the global timeline.
//!
//! The paper models time as a sequence of equidistant timestamps
//! `T = {t_1, .., t_n}` and overloads interval notation `I = [s, e]` to also
//! denote the set of timestamps it contains (Section 3.1). We index
//! timestamps from `0`, so a timeline of length `n` covers `0..=n-1`.

/// A point on the global timeline. At the paper's granularity one unit is one
/// day, but nothing in the library depends on that interpretation.
pub type Timestamp = u32;

/// The global, equidistant timeline `{0, 1, .., len-1}` shared by all
/// attributes of a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Timeline {
    len: u32,
}

impl Timeline {
    /// Creates a timeline with `len` timestamps.
    ///
    /// # Panics
    /// Panics if `len == 0`; an empty timeline has no valid timestamps and
    /// every downstream definition (weights, containment) would be vacuous.
    pub fn new(len: u32) -> Self {
        assert!(len > 0, "timeline must contain at least one timestamp");
        Timeline { len }
    }

    /// Number of timestamps `n = |T|`.
    #[inline]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Always false; kept for clippy's `len_without_is_empty` convention.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The last valid timestamp `n - 1`.
    #[inline]
    pub fn last(&self) -> Timestamp {
        self.len - 1
    }

    /// Whether `t` lies on this timeline.
    #[inline]
    pub fn contains(&self, t: Timestamp) -> bool {
        t < self.len
    }

    /// The full interval `[0, n-1]`.
    #[inline]
    pub fn full_interval(&self) -> Interval {
        Interval::new(0, self.last())
    }

    /// Clamps `t` onto the timeline.
    #[inline]
    pub fn clamp(&self, t: i64) -> Timestamp {
        t.clamp(0, i64::from(self.last())) as Timestamp
    }

    /// The δ-expansion `[t - δ, t + δ]` of a single timestamp, clipped to the
    /// timeline (Definition 3.4 uses this window for δ-containment).
    #[inline]
    pub fn delta_window(&self, t: Timestamp, delta: u32) -> Interval {
        Interval::new(t.saturating_sub(delta), (t.saturating_add(delta)).min(self.last()))
    }

    /// Iterator over all timestamps.
    pub fn iter(&self) -> impl Iterator<Item = Timestamp> {
        0..self.len
    }
}

/// A closed interval `[start, end]` of timestamps; both endpoints inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    /// First timestamp in the interval.
    pub start: Timestamp,
    /// Last timestamp in the interval (inclusive).
    pub end: Timestamp,
}

impl Interval {
    /// Creates `[start, end]`.
    ///
    /// # Panics
    /// Panics if `start > end`.
    #[inline]
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        assert!(start <= end, "interval start {start} must be <= end {end}");
        Interval { start, end }
    }

    /// A single-timestamp interval `[t, t]`.
    #[inline]
    pub fn point(t: Timestamp) -> Self {
        Interval { start: t, end: t }
    }

    /// Number of timestamps contained.
    #[inline]
    pub fn len(&self) -> u32 {
        self.end - self.start + 1
    }

    /// Closed intervals are never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `t ∈ [start, end]`.
    #[inline]
    pub fn contains(&self, t: Timestamp) -> bool {
        self.start <= t && t <= self.end
    }

    /// Whether the two intervals share at least one timestamp.
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Intersection, or `None` if disjoint.
    #[inline]
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start <= end).then_some(Interval { start, end })
    }

    /// The δ-expansion `[start - δ, end + δ]`, clipped to `timeline`.
    ///
    /// This is the `I^δ` of Section 4.2.2: the value window indexed for a
    /// time slice `I` so that violations detected in the slice are genuine
    /// for every `t ∈ I`.
    #[inline]
    pub fn expand(&self, delta: u32, timeline: Timeline) -> Interval {
        Interval {
            start: self.start.saturating_sub(delta),
            end: self.end.saturating_add(delta).min(timeline.last()),
        }
    }

    /// Iterator over the contained timestamps.
    pub fn iter(&self) -> impl Iterator<Item = Timestamp> {
        self.start..=self.end
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_basics() {
        let tl = Timeline::new(10);
        assert_eq!(tl.len(), 10);
        assert_eq!(tl.last(), 9);
        assert!(tl.contains(0));
        assert!(tl.contains(9));
        assert!(!tl.contains(10));
        assert_eq!(tl.full_interval(), Interval::new(0, 9));
        assert_eq!(tl.iter().count(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one timestamp")]
    fn timeline_rejects_zero_length() {
        Timeline::new(0);
    }

    #[test]
    fn delta_window_clips_at_boundaries() {
        let tl = Timeline::new(10);
        assert_eq!(tl.delta_window(0, 3), Interval::new(0, 3));
        assert_eq!(tl.delta_window(5, 2), Interval::new(3, 7));
        assert_eq!(tl.delta_window(9, 4), Interval::new(5, 9));
        assert_eq!(tl.delta_window(4, 0), Interval::point(4));
    }

    #[test]
    fn delta_window_larger_than_timeline() {
        let tl = Timeline::new(5);
        assert_eq!(tl.delta_window(2, 100), Interval::new(0, 4));
    }

    #[test]
    fn interval_len_and_contains() {
        let i = Interval::new(3, 7);
        assert_eq!(i.len(), 5);
        assert!(i.contains(3));
        assert!(i.contains(7));
        assert!(!i.contains(2));
        assert!(!i.contains(8));
        assert_eq!(Interval::point(4).len(), 1);
    }

    #[test]
    #[should_panic(expected = "must be <=")]
    fn interval_rejects_inverted_bounds() {
        Interval::new(5, 4);
    }

    #[test]
    fn interval_overlap_and_intersection() {
        let a = Interval::new(2, 6);
        let b = Interval::new(6, 9);
        let c = Interval::new(7, 9);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert_eq!(a.intersect(&b), Some(Interval::point(6)));
        assert_eq!(a.intersect(&c), None);
        assert_eq!(a.intersect(&Interval::new(0, 100)), Some(a));
    }

    #[test]
    fn interval_expand_clips() {
        let tl = Timeline::new(20);
        let i = Interval::new(5, 8);
        assert_eq!(i.expand(0, tl), i);
        assert_eq!(i.expand(3, tl), Interval::new(2, 11));
        assert_eq!(i.expand(10, tl), Interval::new(0, 18));
        assert_eq!(i.expand(100, tl), Interval::new(0, 19));
    }

    #[test]
    fn interval_display() {
        assert_eq!(Interval::new(1, 4).to_string(), "[1, 4]");
    }

    #[test]
    fn timeline_clamp() {
        let tl = Timeline::new(10);
        assert_eq!(tl.clamp(-5), 0);
        assert_eq!(tl.clamp(4), 4);
        assert_eq!(tl.clamp(1000), 9);
    }
}
