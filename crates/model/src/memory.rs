//! Memory budget accounting.
//!
//! The paper observes k-MANY running out of memory from 1.2 million
//! attributes onwards on a 256 GB machine, because each in-flight query
//! tracks violations for all |D| candidates. We reproduce this *property*
//! by charging per-query tracking state against an explicit budget: when
//! the budget would be exceeded, the allocation fails with an
//! out-of-memory error instead of bringing down the host. The same
//! accountant lets long-running discovery (`tind-core`'s all-pairs) shed
//! parallel workers and degrade to sequential execution when memory is
//! tight, rather than aborting the run.
//!
//! Lives in `tind-model` (the dependency root) so both `tind-baseline`
//! and `tind-core` can charge against one shared budget.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A shared, thread-safe memory budget.
#[derive(Debug, Clone)]
pub struct MemoryBudget {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    limit_bytes: usize,
    used_bytes: AtomicUsize,
    peak_bytes: AtomicUsize,
}

/// RAII charge against a [`MemoryBudget`]; releases its bytes on drop.
#[derive(Debug)]
pub struct Charge {
    inner: Arc<Inner>,
    bytes: usize,
}

impl MemoryBudget {
    /// Creates a budget of `limit_bytes`.
    pub fn new(limit_bytes: usize) -> Self {
        MemoryBudget {
            inner: Arc::new(Inner {
                limit_bytes,
                used_bytes: AtomicUsize::new(0),
                peak_bytes: AtomicUsize::new(0),
            }),
        }
    }

    /// An effectively unlimited budget.
    pub fn unlimited() -> Self {
        Self::new(usize::MAX)
    }

    /// Attempts to charge `bytes`; `None` means the budget is exhausted
    /// (the out-of-memory condition).
    pub fn try_charge(&self, bytes: usize) -> Option<Charge> {
        let mut current = self.inner.used_bytes.load(Ordering::Relaxed);
        loop {
            let next = current.checked_add(bytes)?;
            if next > self.inner.limit_bytes {
                return None;
            }
            match self.inner.used_bytes.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.inner.peak_bytes.fetch_max(next, Ordering::Relaxed);
                    return Some(Charge { inner: self.inner.clone(), bytes });
                }
                Err(actual) => current = actual,
            }
        }
    }

    /// Currently charged bytes.
    pub fn used_bytes(&self) -> usize {
        self.inner.used_bytes.load(Ordering::Relaxed)
    }

    /// High-water mark of charged bytes.
    pub fn peak_bytes(&self) -> usize {
        self.inner.peak_bytes.load(Ordering::Relaxed)
    }

    /// The configured limit.
    pub fn limit_bytes(&self) -> usize {
        self.inner.limit_bytes
    }
}

impl Drop for Charge {
    fn drop(&mut self) {
        self.inner.used_bytes.fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_and_releases() {
        let b = MemoryBudget::new(100);
        let c1 = b.try_charge(60).expect("fits");
        assert_eq!(b.used_bytes(), 60);
        assert!(b.try_charge(50).is_none(), "would exceed limit");
        let c2 = b.try_charge(40).expect("exactly fits");
        assert_eq!(b.used_bytes(), 100);
        drop(c1);
        assert_eq!(b.used_bytes(), 40);
        drop(c2);
        assert_eq!(b.used_bytes(), 0);
        assert_eq!(b.peak_bytes(), 100);
    }

    #[test]
    fn unlimited_never_fails() {
        let b = MemoryBudget::unlimited();
        let _c = b.try_charge(usize::MAX / 2).expect("unlimited");
    }

    #[test]
    fn concurrent_charges_respect_limit() {
        let b = MemoryBudget::new(1000);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let b = b.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        if let Some(c) = b.try_charge(10) {
                            assert!(b.used_bytes() <= 1000);
                            drop(c);
                        }
                    }
                });
            }
        });
        assert_eq!(b.used_bytes(), 0);
        assert!(b.peak_bytes() <= 1000);
    }
}
