//! Hand-rolled CRC-32 integrity trailers for persisted files.
//!
//! Every on-disk artifact (datasets, indexes, checkpoints) ends with a
//! 4-byte little-endian CRC-32 (ISO-HDLC polynomial, the zlib/PNG variant)
//! computed over everything before the trailer. Structural decoding alone
//! catches malformed files, but not silent truncation at a value boundary
//! or single-bit rot inside a varint run; the trailer turns both into a
//! typed [`BinIoError::Checksum`] instead of a garbage decode.
//!
//! The implementation is table-driven and dependency-free per the
//! workspace policy (see DESIGN.md).

use bytes::{BufMut, Bytes, BytesMut};

use crate::binio::BinIoError;

/// Size in bytes of the checksum trailer appended to persisted files.
pub const TRAILER_LEN: usize = 4;

/// The 256-entry CRC-32 table for the reflected polynomial `0xEDB88320`,
/// generated at compile time.
const CRC_TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 (ISO-HDLC / zlib variant) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut state = Crc32::new();
    state.update(bytes);
    state.finish()
}

/// Incremental CRC-32 state, for hashing data produced in chunks.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh state (equivalent to hashing zero bytes).
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Finalizes and returns the checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// Appends the CRC-32 of everything currently in `buf` as a 4-byte
/// little-endian trailer.
pub fn append_trailer(buf: &mut BytesMut) {
    let crc = crc32(&buf[..]);
    buf.put_u32_le(crc);
}

/// Verifies the trailing CRC-32 of `bytes` and returns the payload with
/// the trailer stripped.
///
/// Fails with [`BinIoError::Corrupt`] if the buffer is too short to hold a
/// trailer at all, and with [`BinIoError::Checksum`] if the stored and
/// recomputed values disagree (truncation, bit rot, or concatenated
/// garbage).
pub fn verify_and_strip(bytes: Bytes) -> Result<Bytes, BinIoError> {
    if bytes.len() < TRAILER_LEN {
        return Err(BinIoError::Corrupt("file too short for checksum trailer".into()));
    }
    let split = bytes.len() - TRAILER_LEN;
    let stored = u32::from_le_bytes(bytes[split..].try_into().expect("4-byte slice"));
    let computed = crc32(&bytes[..split]);
    if stored != computed {
        return Err(BinIoError::Checksum { stored, computed, offset: split as u64 });
    }
    Ok(bytes.slice(0..split))
}

/// Streams the file at `path` through a fixed-size buffer and verifies its
/// trailing CRC-32, returning the payload length (bytes before the
/// trailer) on success.
///
/// Unlike read-then-[`verify_and_strip`], this never allocates the file's
/// size: a truncated or bit-rotted multi-GB artifact is rejected after one
/// sequential pass with a constant 64 KiB of scratch, before any decoder
/// commits memory to it. The returned [`BinIoError::Checksum`] carries the
/// trailer offset so operators can see where the file was cut.
pub fn stream_verify_file(path: &std::path::Path) -> Result<u64, BinIoError> {
    use std::io::Read;
    let mut file = std::fs::File::open(path)?;
    let len = file.metadata()?.len();
    if len < TRAILER_LEN as u64 {
        return Err(BinIoError::Corrupt("file too short for checksum trailer".into()));
    }
    let payload_len = len - TRAILER_LEN as u64;
    let mut crc = Crc32::new();
    let mut scratch = vec![0u8; 64 * 1024];
    let mut remaining = payload_len;
    while remaining > 0 {
        let want = remaining.min(scratch.len() as u64) as usize;
        file.read_exact(&mut scratch[..want])?;
        crc.update(&scratch[..want]);
        remaining -= want as u64;
    }
    let mut trailer = [0u8; TRAILER_LEN];
    file.read_exact(&mut trailer)?;
    let stored = u32::from_le_bytes(trailer);
    let computed = crc.finish();
    if stored != computed {
        return Err(BinIoError::Checksum { stored, computed, offset: payload_len });
    }
    Ok(payload_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data = b"hello checksummed world";
        let mut inc = Crc32::new();
        inc.update(&data[..5]);
        inc.update(&data[5..]);
        assert_eq!(inc.finish(), crc32(data));
    }

    #[test]
    fn trailer_roundtrip() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"payload bytes");
        append_trailer(&mut buf);
        let stripped = verify_and_strip(buf.freeze()).expect("valid trailer");
        assert_eq!(&stripped[..], b"payload bytes");
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"some serialized structure follows here");
        append_trailer(&mut buf);
        let clean = buf.freeze().to_vec();
        for bit in 0..clean.len() * 8 {
            let mut corrupted = clean.clone();
            corrupted[bit / 8] ^= 1 << (bit % 8);
            let err = verify_and_strip(Bytes::from(corrupted))
                .expect_err("flipped bit must be detected");
            assert!(matches!(err, BinIoError::Checksum { .. }), "bit {bit}: {err}");
        }
    }

    #[test]
    fn stream_verify_matches_in_memory_verdict() {
        let dir = std::env::temp_dir().join("tind-model-checksum-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("streamed.bin");
        // Payload bigger than the 64 KiB scratch so the loop takes
        // multiple passes.
        let mut buf = BytesMut::new();
        let payload: Vec<u8> = (0..200_000u32).map(|i| (i * 7 + 3) as u8).collect();
        buf.put_slice(&payload);
        append_trailer(&mut buf);
        let clean = buf.freeze();
        std::fs::write(&path, &clean).expect("write");
        assert_eq!(stream_verify_file(&path).expect("clean file verifies"), 200_000);

        // Truncation mid-payload: the stored "trailer" is now payload
        // bytes, so the streamed CRC must mismatch with the cut offset.
        std::fs::write(&path, &clean[..clean.len() / 2]).expect("write truncated");
        let err = stream_verify_file(&path).expect_err("truncated file rejected");
        match err {
            BinIoError::Checksum { offset, .. } => {
                assert_eq!(offset, (clean.len() / 2 - TRAILER_LEN) as u64);
            }
            other => panic!("expected checksum error, got {other}"),
        }
        // Single flipped byte mid-payload.
        let mut flipped = clean.to_vec();
        flipped[1234] ^= 0xFF;
        std::fs::write(&path, &flipped).expect("write flipped");
        assert!(matches!(
            stream_verify_file(&path),
            Err(BinIoError::Checksum { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_is_detected() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"0123456789abcdef");
        append_trailer(&mut buf);
        let clean = buf.freeze();
        for cut in 0..clean.len() {
            assert!(verify_and_strip(clean.slice(0..cut)).is_err(), "cut at {cut}");
        }
    }
}
