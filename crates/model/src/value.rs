//! Interned values and sorted value sets.
//!
//! All attribute contents are strings in the Wikipedia setting. We intern
//! every distinct string into a dense [`ValueId`] so that version histories
//! store compact sorted `u32` slices, set containment is a merge over sorted
//! ids, and Bloom filters hash the stable id instead of the string.

use crate::hash::FastMap;

/// Identifier of an interned value. Dense: the `i`-th distinct interned
/// string receives id `i`.
pub type ValueId = u32;

/// A sorted, deduplicated set of interned values: the contents of one
/// attribute version (`A[t]` in the paper).
pub type ValueSet = Vec<ValueId>;

/// Sorts and deduplicates ids in place, producing a canonical [`ValueSet`].
pub fn canonicalize(mut ids: Vec<ValueId>) -> ValueSet {
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// Returns true iff sorted set `a` is a subset of sorted set `b`.
///
/// Linear merge over the two sorted slices; the workhorse of exact
/// (non-Bloom) containment checks.
pub fn is_subset(a: &[ValueId], b: &[ValueId]) -> bool {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "lhs must be canonical");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "rhs must be canonical");
    if a.len() > b.len() {
        return false;
    }
    let mut j = 0;
    'outer: for &x in a {
        while j < b.len() {
            match b[j].cmp(&x) {
                std::cmp::Ordering::Less => j += 1,
                std::cmp::Ordering::Equal => {
                    j += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// Computes the sorted union of two canonical sets.
pub fn union(a: &[ValueId], b: &[ValueId]) -> ValueSet {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Computes the sorted intersection of two canonical sets.
pub fn intersection(a: &[ValueId], b: &[ValueId]) -> ValueSet {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// String interner mapping each distinct value string to a dense [`ValueId`].
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    by_string: FastMap<Box<str>, ValueId>,
    strings: Vec<Box<str>>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its id (allocating a new one if unseen).
    pub fn intern(&mut self, s: &str) -> ValueId {
        if let Some(&id) = self.by_string.get(s) {
            return id;
        }
        let id = u32::try_from(self.strings.len()).expect("more than u32::MAX distinct values");
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.by_string.insert(boxed, id);
        id
    }

    /// Looks up the id of `s` without interning.
    pub fn get(&self, s: &str) -> Option<ValueId> {
        self.by_string.get(s).copied()
    }

    /// Resolves an id back to its string.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this dictionary.
    pub fn resolve(&self, id: ValueId) -> &str {
        &self.strings[id as usize]
    }

    /// Resolves an id if it is in range.
    pub fn try_resolve(&self, id: ValueId) -> Option<&str> {
        self.strings.get(id as usize).map(AsRef::as_ref)
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether no value has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over `(id, string)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ValueId, &str)> {
        self.strings.iter().enumerate().map(|(i, s)| (i as ValueId, s.as_ref()))
    }

    /// Interns every string of `values` and returns the canonical set.
    pub fn intern_set<I, S>(&mut self, values: I) -> ValueSet
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        canonicalize(values.into_iter().map(|s| self.intern(s.as_ref())).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut d = Dictionary::new();
        let a = d.intern("alpha");
        let b = d.intern("beta");
        let a2 = d.intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(d.len(), 2);
        assert_eq!(d.resolve(a), "alpha");
        assert_eq!(d.get("beta"), Some(b));
        assert_eq!(d.get("gamma"), None);
        assert_eq!(d.try_resolve(99), None);
    }

    #[test]
    fn intern_set_canonicalizes() {
        let mut d = Dictionary::new();
        let set = d.intern_set(["b", "a", "b", "c", "a"]);
        assert_eq!(set.len(), 3);
        assert!(set.windows(2).all(|w| w[0] < w[1]));
        let mut names: Vec<&str> = set.iter().map(|&id| d.resolve(id)).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn subset_checks() {
        assert!(is_subset(&[], &[]));
        assert!(is_subset(&[], &[1, 2]));
        assert!(is_subset(&[2], &[1, 2, 3]));
        assert!(is_subset(&[1, 3], &[1, 2, 3]));
        assert!(!is_subset(&[0], &[1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[1, 2, 3]));
        assert!(!is_subset(&[1, 2, 3], &[1, 2]));
    }

    #[test]
    fn union_and_intersection() {
        assert_eq!(union(&[1, 3, 5], &[2, 3, 6]), vec![1, 2, 3, 5, 6]);
        assert_eq!(union(&[], &[7]), vec![7]);
        assert_eq!(intersection(&[1, 3, 5], &[2, 3, 5]), vec![3, 5]);
        assert_eq!(intersection(&[1, 2], &[3, 4]), Vec::<ValueId>::new());
    }

    #[test]
    fn canonicalize_sorts_and_dedups() {
        assert_eq!(canonicalize(vec![5, 1, 5, 3, 1]), vec![1, 3, 5]);
        assert_eq!(canonicalize(vec![]), Vec::<ValueId>::new());
    }
}
