//! Point-in-time snapshots of a dataset.
//!
//! A snapshot is the classical *static* view: `A[t]` for every attribute at a
//! single timestamp `t`. Static IND discovery (the paper's baseline and the
//! input to `k`-MANY) operates on snapshots.

use crate::dataset::{AttrId, Dataset};
use crate::time::Timestamp;
use crate::value::ValueId;

/// A borrowed view of every attribute's value set at one timestamp.
///
/// Attributes that are unobservable at `t` have an empty value set.
#[derive(Debug)]
pub struct Snapshot<'a> {
    timestamp: Timestamp,
    values: Vec<&'a [ValueId]>,
}

impl<'a> Snapshot<'a> {
    /// Materializes the snapshot of `dataset` at `t`.
    pub fn of(dataset: &'a Dataset, t: Timestamp) -> Self {
        assert!(dataset.timeline().contains(t), "snapshot timestamp {t} outside timeline");
        let values = dataset.attributes().iter().map(|h| h.values_at(t)).collect();
        Snapshot { timestamp: t, values }
    }

    /// The snapshot's timestamp.
    pub fn timestamp(&self) -> Timestamp {
        self.timestamp
    }

    /// `A[t]` for the attribute with the given id.
    pub fn values(&self, id: AttrId) -> &'a [ValueId] {
        self.values[id as usize]
    }

    /// Number of attributes in the snapshot (present or not).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the snapshot covers no attributes.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Ids of attributes that are non-empty at this timestamp.
    pub fn present(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(i, _)| i as AttrId)
    }

    /// Whether the static IND `lhs[t] ⊆ rhs[t]` holds (Definition 3.1).
    ///
    /// Note the empty-set convention: an absent left-hand side is contained
    /// in everything.
    pub fn static_ind_holds(&self, lhs: AttrId, rhs: AttrId) -> bool {
        crate::value::is_subset(self.values(lhs), self.values(rhs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::time::Timeline;

    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new(Timeline::new(10));
        b.add_attribute("q", &[(2, vec!["x", "y"])], 6); // observable [2,6]
        b.add_attribute("a", &[(0, vec!["x", "y", "z"])], 9);
        b.add_attribute("b", &[(0, vec!["x"]), (5, vec!["q"])], 9);
        b.build()
    }

    #[test]
    fn snapshot_reflects_observability() {
        let d = dataset();
        let s0 = d.snapshot_at(0);
        assert!(s0.values(0).is_empty());
        assert_eq!(s0.present().collect::<Vec<_>>(), vec![1, 2]);
        let s3 = d.snapshot_at(3);
        assert_eq!(s3.values(0).len(), 2);
        assert_eq!(s3.timestamp(), 3);
        assert_eq!(s3.len(), 3);
    }

    #[test]
    fn static_ind_check() {
        let d = dataset();
        let s3 = d.snapshot_at(3);
        assert!(s3.static_ind_holds(0, 1)); // {x,y} ⊆ {x,y,z}
        assert!(!s3.static_ind_holds(1, 0));
        assert!(!s3.static_ind_holds(0, 2)); // {x,y} ⊄ {x}
        let s0 = d.snapshot_at(0);
        assert!(s0.static_ind_holds(0, 2), "empty set contained in everything");
    }

    #[test]
    #[should_panic(expected = "outside timeline")]
    fn snapshot_requires_valid_timestamp() {
        let d = dataset();
        let _ = d.snapshot_at(10);
    }
}
