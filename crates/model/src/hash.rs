//! Fast, non-cryptographic hashing used across the workspace.
//!
//! Bloom filters need two independent 64-bit hashes per value (double
//! hashing, Kirsch–Mitzenmacher). Because values are interned to stable
//! [`crate::ValueId`]s, it is enough — and much faster — to mix the id
//! itself instead of re-hashing the underlying string. Determinism per id is
//! exactly what preserves the subset property of Bloom filters (Section 4.1).

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
///
/// Passes the avalanche tests used for SplitMix64's output function; every
/// input bit affects every output bit.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A pair of independent 64-bit hashes for double hashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hash128 {
    /// Base hash `h1`.
    pub h1: u64,
    /// Step hash `h2`; forced odd so that the double-hashing probe sequence
    /// `h1 + i·h2 (mod m)` cycles through all positions for power-of-two `m`.
    pub h2: u64,
}

impl Hash128 {
    /// Derives the hash pair for a stable 64-bit key (e.g. a value id).
    #[inline]
    pub fn of_key(key: u64) -> Self {
        let h1 = splitmix64(key);
        let h2 = splitmix64(h1 ^ 0x6A09_E667_F3BC_C909) | 1;
        Hash128 { h1, h2 }
    }

    /// The `i`-th probe position in a filter of `m` bits.
    #[inline]
    pub fn probe(&self, i: u32, m: u32) -> u32 {
        debug_assert!(m > 0);
        ((self.h1.wrapping_add(u64::from(i).wrapping_mul(self.h2))) % u64::from(m)) as u32
    }
}

/// FxHash-style string hash; used where we need a fast hash of raw bytes
/// (dictionary interning fast path).
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let v = u64::from_le_bytes(c.try_into().expect("exact 8-byte chunk"));
        h = (h.rotate_left(5) ^ v).wrapping_mul(SEED);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut buf = [0u8; 8];
        buf[..rem.len()].copy_from_slice(rem);
        let v = u64::from_le_bytes(buf) ^ (rem.len() as u64) << 56;
        h = (h.rotate_left(5) ^ v).wrapping_mul(SEED);
    }
    splitmix64(h)
}

/// A `BuildHasher` for [`std::collections::HashMap`] that mixes `u32`/`u64`
/// keys with SplitMix64. Substantially faster than SipHash for the id-keyed
/// maps on hot paths (violation tracking, sliding-window count maps).
#[derive(Debug, Default, Clone, Copy)]
pub struct MixBuildHasher;

impl std::hash::BuildHasher for MixBuildHasher {
    type Hasher = MixHasher;

    #[inline]
    fn build_hasher(&self) -> MixHasher {
        MixHasher { state: 0 }
    }
}

/// Hasher produced by [`MixBuildHasher`].
#[derive(Debug)]
pub struct MixHasher {
    state: u64,
}

impl std::hash::Hasher for MixHasher {
    #[inline]
    fn finish(&self) -> u64 {
        splitmix64(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fall-back; the fast paths below cover the id-keyed maps.
        self.state = self.state.rotate_left(7) ^ hash_bytes(bytes);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.state = self.state.rotate_left(7) ^ u64::from(i);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = self.state.rotate_left(7) ^ i;
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// A `HashMap` keyed with the fast mixing hasher.
pub type FastMap<K, V> = std::collections::HashMap<K, V, MixBuildHasher>;
/// A `HashSet` keyed with the fast mixing hasher.
pub type FastSet<K> = std::collections::HashSet<K, MixBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::hash::{BuildHasher, Hasher};

    #[test]
    fn splitmix_is_deterministic_and_disperses() {
        assert_eq!(splitmix64(42), splitmix64(42));
        let outs: HashSet<u64> = (0..10_000u64).map(splitmix64).collect();
        assert_eq!(outs.len(), 10_000, "no collisions on small consecutive keys");
    }

    #[test]
    fn hash128_h2_is_odd() {
        for key in 0..1000u64 {
            assert_eq!(Hash128::of_key(key).h2 & 1, 1);
        }
    }

    #[test]
    fn probes_stay_in_range_and_vary() {
        let h = Hash128::of_key(7);
        let m = 97;
        let probes: Vec<u32> = (0..10).map(|i| h.probe(i, m)).collect();
        assert!(probes.iter().all(|&p| p < m));
        let distinct: HashSet<u32> = probes.iter().copied().collect();
        assert!(distinct.len() > 5, "double hashing should not collapse");
    }

    #[test]
    fn hash_bytes_discriminates_lengths_and_content() {
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
        assert_ne!(hash_bytes(b"abc"), hash_bytes(b"abd"));
        assert_ne!(hash_bytes(b"abcdefgh"), hash_bytes(b"abcdefg"));
        assert_eq!(hash_bytes(b"hello world"), hash_bytes(b"hello world"));
    }

    #[test]
    fn fast_map_works_with_u32_keys() {
        let mut m: FastMap<u32, u32> = FastMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&500], 1000);
    }

    #[test]
    fn mix_hasher_distinguishes_write_paths() {
        let b = MixBuildHasher;
        let mut h1 = b.build_hasher();
        h1.write_u32(5);
        let mut h2 = b.build_hasher();
        h2.write_u32(6);
        assert_ne!(h1.finish(), h2.finish());
    }
}
