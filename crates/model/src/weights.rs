//! Timestamp weight functions `w` (Definition 3.6).
//!
//! The w-weighted ε,δ-relaxed tIND sums `w(t)` over all violated timestamps
//! and compares against an absolute budget ε. Index construction and
//! validation need *interval* sums `Σ_{t ∈ [i,j]} w(t)`; every variant here
//! provides them in `O(1)` (exponential decay via the closed geometric-sum
//! formula of Equation 5, piecewise via prefix sums).

use crate::time::{Interval, Timeline, Timestamp};

/// A weight function over timestamps.
///
/// # Examples
///
/// ```
/// use tind_model::{Interval, Timeline, WeightFn};
///
/// let tl = Timeline::new(100);
/// let w = WeightFn::exponential(0.9, tl);
/// // The most recent timestamp weighs 1; older ones decay.
/// assert!((w.weight(99) - 1.0).abs() < 1e-12);
/// assert!(w.weight(0) < 1e-4);
/// // Interval sums come from the closed geometric formula, in O(1).
/// let closed = w.interval_weight(Interval::new(90, 99));
/// let naive: f64 = (90..=99).map(|t| w.weight(t)).sum();
/// assert!((closed - naive).abs() < 1e-9);
/// ```
///
/// The paper's special cases map as follows:
/// * strict tIND — any weights with ε = 0,
/// * ε-relaxed tIND (relative ε) — [`WeightFn::uniform_normalized`],
/// * ε,δ-relaxed tIND measured in days — [`WeightFn::constant_one`],
/// * wεδ-tIND with decay — [`WeightFn::exponential`] / [`WeightFn::linear`],
/// * arbitrary user functions — [`WeightFn::piecewise`].
#[derive(Debug, Clone, PartialEq)]
pub enum WeightFn {
    /// `w(t) = c` for every timestamp.
    Constant {
        /// Weight per timestamp.
        per_timestamp: f64,
    },
    /// Exponential decay `w(t) = a^(n-1-t)` (0-indexed form of Equation 4):
    /// the most recent timestamp has weight 1, older ones decay by `a`.
    ExponentialDecay {
        /// Decay base, `0 < a < 1`.
        a: f64,
        /// Timeline length `n`.
        n: u32,
    },
    /// Linear decay `w(t) = (t + 1) / n`: the most recent timestamp has
    /// weight 1, the oldest `1/n`.
    LinearDecay {
        /// Timeline length `n`.
        n: u32,
    },
    /// Arbitrary per-timestamp weights with O(1) interval sums via prefix
    /// sums. Supports e.g. zero-weighting known bad time periods (§3.3).
    Piecewise {
        /// `prefix[i] = Σ_{t < i} w(t)`; length `n + 1`.
        prefix: std::sync::Arc<Vec<f64>>,
    },
}

impl WeightFn {
    /// Every timestamp weighs 1; ε is then a violation budget in timestamps
    /// (days). The paper's default setting (`w(t) = 1`, ε = 3 days).
    pub fn constant_one() -> Self {
        WeightFn::Constant { per_timestamp: 1.0 }
    }

    /// Every timestamp weighs `1/n`, making ε the *fraction* of violated
    /// time, as in Definition 3.3/3.5.
    pub fn uniform_normalized(timeline: Timeline) -> Self {
        WeightFn::Constant { per_timestamp: 1.0 / f64::from(timeline.len()) }
    }

    /// Exponential decay with base `a ∈ (0, 1)`.
    ///
    /// # Panics
    /// Panics unless `0 < a < 1`.
    pub fn exponential(a: f64, timeline: Timeline) -> Self {
        assert!(a > 0.0 && a < 1.0, "decay base must be in (0, 1), got {a}");
        WeightFn::ExponentialDecay { a, n: timeline.len() }
    }

    /// Linear decay from `1/n` (oldest) to 1 (most recent).
    pub fn linear(timeline: Timeline) -> Self {
        WeightFn::LinearDecay { n: timeline.len() }
    }

    /// Arbitrary non-negative per-timestamp weights.
    ///
    /// # Panics
    /// Panics if any weight is negative or non-finite.
    pub fn piecewise(weights: &[f64]) -> Self {
        let mut prefix = Vec::with_capacity(weights.len() + 1);
        let mut acc = 0.0;
        prefix.push(0.0);
        for (i, &w) in weights.iter().enumerate() {
            assert!(w.is_finite() && w >= 0.0, "weight at {i} must be finite and >= 0, got {w}");
            acc += w;
            prefix.push(acc);
        }
        WeightFn::Piecewise { prefix: std::sync::Arc::new(prefix) }
    }

    /// `w(t)`.
    pub fn weight(&self, t: Timestamp) -> f64 {
        match self {
            WeightFn::Constant { per_timestamp } => *per_timestamp,
            WeightFn::ExponentialDecay { a, n } => {
                debug_assert!(t < *n);
                a.powi((*n - 1 - t) as i32)
            }
            WeightFn::LinearDecay { n } => {
                debug_assert!(t < *n);
                f64::from(t + 1) / f64::from(*n)
            }
            WeightFn::Piecewise { prefix } => {
                let i = t as usize;
                prefix[i + 1] - prefix[i]
            }
        }
    }

    /// `Σ_{t ∈ I} w(t)` in O(1).
    pub fn interval_weight(&self, interval: Interval) -> f64 {
        let (i, j) = (interval.start, interval.end);
        match self {
            WeightFn::Constant { per_timestamp } => per_timestamp * f64::from(interval.len()),
            WeightFn::ExponentialDecay { a, n } => {
                debug_assert!(j < *n);
                // Σ_{t=i}^{j} a^(n-1-t) = a^(n-1-j) · (1 - a^(j-i+1)) / (1 - a)
                let lead = a.powi((*n - 1 - j) as i32);
                lead * (1.0 - a.powi((j - i + 1) as i32)) / (1.0 - a)
            }
            WeightFn::LinearDecay { n } => {
                // Σ_{t=i}^{j} (t+1)/n = (Σ_{u=i+1}^{j+1} u) / n
                let lo = f64::from(i) + 1.0;
                let hi = f64::from(j) + 1.0;
                (hi * (hi + 1.0) / 2.0 - lo * (lo - 1.0) / 2.0) / f64::from(*n)
            }
            WeightFn::Piecewise { prefix } => prefix[j as usize + 1] - prefix[i as usize],
        }
    }

    /// Total weight of the whole timeline.
    pub fn total(&self, timeline: Timeline) -> f64 {
        self.interval_weight(timeline.full_interval())
    }

    /// Materializes this weight function over a concrete timeline as a
    /// prefix-sum table — the validation kernel's O(1) source of interval
    /// and suffix weights for *any* variant (see [`WeightTable`]).
    pub fn table(&self, timeline: Timeline) -> WeightTable {
        WeightTable::build(self, timeline)
    }

    /// The smallest interval starting at `start` whose summed weight
    /// strictly exceeds `eps`, or `None` if even the remaining timeline does
    /// not reach it. Used for slice-length sizing (`w(I) > ε`, §4.4.1).
    pub fn interval_exceeding(&self, start: Timestamp, eps: f64, timeline: Timeline) -> Option<Interval> {
        let last = timeline.last();
        if start > last {
            return None;
        }
        if self.interval_weight(Interval::new(start, last)) <= eps {
            return None;
        }
        // Binary search over the end timestamp; interval_weight is monotone
        // non-decreasing in the end point (weights are non-negative).
        let (mut lo, mut hi) = (start, last);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.interval_weight(Interval::new(start, mid)) > eps {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Some(Interval::new(start, lo))
    }
}

/// A weight function materialized over one concrete timeline as prefix
/// sums: `prefix[i] = Σ_{t < i} w(t)`, length `n + 1`.
///
/// [`WeightFn::interval_weight`] is already O(1) per variant, but the
/// exponential closed form costs two `powi` evaluations per call — far more
/// than the two loads and one subtract a prefix table needs. Validation
/// builds the table once per (weights, timeline) and reuses it across every
/// pair, which also supplies the O(1) *suffix* weights behind the
/// prove-valid early exit (violation + max-remaining-suffix ≤ ε).
///
/// Cloning is cheap (the table is shared behind an `Arc`), so one table can
/// serve many query plans concurrently.
///
/// Accumulated sums can differ from the closed forms in the final ulps;
/// the `EPS_TOLERANCE` slack that validation applies to ε comparisons
/// absorbs this (for `constant_one`, integer sums are exact either way).
///
/// # Examples
///
/// ```
/// use tind_model::{Interval, Timeline, WeightFn};
///
/// let tl = Timeline::new(100);
/// let w = WeightFn::exponential(0.9, tl);
/// let table = w.table(tl);
/// let i = Interval::new(90, 99);
/// assert!((table.interval_weight(i) - w.interval_weight(i)).abs() < 1e-9);
/// assert!((table.suffix_weight(0) - w.total(tl)).abs() < 1e-9);
/// assert_eq!(table.suffix_weight(100), 0.0, "past the end nothing remains");
/// ```
#[derive(Debug, Clone)]
pub struct WeightTable {
    /// `prefix[i] = Σ_{t < i} w(t)`; length `n + 1`.
    prefix: std::sync::Arc<Vec<f64>>,
}

impl WeightTable {
    /// Builds the table for `w` over `timeline` in O(n).
    pub fn build(w: &WeightFn, timeline: Timeline) -> Self {
        // Piecewise already *is* a prefix table — share it instead of
        // re-accumulating (also keeps its sums bit-identical).
        if let WeightFn::Piecewise { prefix } = w {
            assert_eq!(
                prefix.len(),
                timeline.len() as usize + 1,
                "piecewise weights cover a different timeline"
            );
            return WeightTable { prefix: prefix.clone() };
        }
        let n = timeline.len();
        let mut prefix = Vec::with_capacity(n as usize + 1);
        let mut acc = 0.0;
        prefix.push(0.0);
        for t in 0..n {
            acc += w.weight(t);
            prefix.push(acc);
        }
        WeightTable { prefix: std::sync::Arc::new(prefix) }
    }

    /// Number of timestamps covered (`n`).
    pub fn len(&self) -> usize {
        self.prefix.len() - 1
    }

    /// Always false — tables are built from non-empty timelines.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `Σ_{t ∈ I} w(t)`: two loads and a subtract.
    #[inline]
    pub fn interval_weight(&self, interval: Interval) -> f64 {
        debug_assert!((interval.end as usize) < self.prefix.len() - 1);
        self.prefix[interval.end as usize + 1] - self.prefix[interval.start as usize]
    }

    /// `Σ_{t ≥ from} w(t)`, zero once `from` runs past the timeline. This is
    /// the largest weight any set of not-yet-examined timestamps can still
    /// contribute — the prove-valid early-exit bound.
    #[inline]
    pub fn suffix_weight(&self, from: Timestamp) -> f64 {
        let i = (from as usize).min(self.prefix.len() - 1);
        self.prefix[self.prefix.len() - 1] - self.prefix[i]
    }

    /// Total weight of the whole timeline.
    #[inline]
    pub fn total(&self) -> f64 {
        self.prefix[self.prefix.len() - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_interval_weight(w: &WeightFn, interval: Interval) -> f64 {
        interval.iter().map(|t| w.weight(t)).sum()
    }

    #[test]
    fn constant_one_counts_days() {
        let w = WeightFn::constant_one();
        assert_eq!(w.weight(5), 1.0);
        assert_eq!(w.interval_weight(Interval::new(3, 7)), 5.0);
    }

    #[test]
    fn uniform_normalized_sums_to_one() {
        let tl = Timeline::new(40);
        let w = WeightFn::uniform_normalized(tl);
        assert!((w.total(tl) - 1.0).abs() < 1e-12);
        assert!((w.weight(0) - 0.025).abs() < 1e-12);
    }

    #[test]
    fn exponential_closed_form_matches_naive() {
        let tl = Timeline::new(50);
        let w = WeightFn::exponential(0.9, tl);
        for (s, e) in [(0, 49), (0, 0), (49, 49), (10, 30), (45, 49)] {
            let i = Interval::new(s, e);
            let closed = w.interval_weight(i);
            let naive = naive_interval_weight(&w, i);
            assert!((closed - naive).abs() < 1e-9, "interval {i}: {closed} vs {naive}");
        }
    }

    #[test]
    fn exponential_most_recent_weighs_one() {
        let tl = Timeline::new(100);
        let w = WeightFn::exponential(0.5, tl);
        assert!((w.weight(99) - 1.0).abs() < 1e-12);
        assert!((w.weight(98) - 0.5).abs() < 1e-12);
        assert!(w.weight(0) < 1e-20);
    }

    #[test]
    #[should_panic(expected = "decay base")]
    fn exponential_rejects_bad_base() {
        WeightFn::exponential(1.0, Timeline::new(10));
    }

    #[test]
    fn linear_closed_form_matches_naive() {
        let tl = Timeline::new(30);
        let w = WeightFn::linear(tl);
        assert!((w.weight(29) - 1.0).abs() < 1e-12);
        for (s, e) in [(0, 29), (5, 5), (0, 0), (12, 20)] {
            let i = Interval::new(s, e);
            assert!((w.interval_weight(i) - naive_interval_weight(&w, i)).abs() < 1e-9);
        }
    }

    #[test]
    fn piecewise_prefix_sums() {
        let w = WeightFn::piecewise(&[1.0, 0.0, 2.5, 0.5, 1.0]);
        assert_eq!(w.weight(0), 1.0);
        assert_eq!(w.weight(1), 0.0);
        assert!((w.weight(2) - 2.5).abs() < 1e-12);
        assert!((w.interval_weight(Interval::new(1, 3)) - 3.0).abs() < 1e-12);
        assert!((w.total(Timeline::new(5)) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite and >= 0")]
    fn piecewise_rejects_negative() {
        WeightFn::piecewise(&[1.0, -0.5]);
    }

    #[test]
    fn interval_exceeding_constant() {
        let tl = Timeline::new(100);
        let w = WeightFn::constant_one();
        // ε = 3 → need weight > 3 → 4 timestamps.
        assert_eq!(w.interval_exceeding(10, 3.0, tl), Some(Interval::new(10, 13)));
        assert_eq!(w.interval_exceeding(0, 0.0, tl), Some(Interval::new(0, 0)));
        // Not enough timeline left.
        assert_eq!(w.interval_exceeding(98, 3.0, tl), None);
        assert_eq!(w.interval_exceeding(200, 0.0, tl), None);
    }

    #[test]
    fn table_matches_closed_forms_for_every_variant() {
        let tl = Timeline::new(60);
        for w in [
            WeightFn::constant_one(),
            WeightFn::uniform_normalized(tl),
            WeightFn::exponential(0.9, tl),
            WeightFn::linear(tl),
            WeightFn::piecewise(&(0..60).map(|t| (t % 7) as f64 * 0.25).collect::<Vec<_>>()),
        ] {
            let table = w.table(tl);
            assert_eq!(table.len(), 60);
            for (s, e) in [(0, 59), (0, 0), (59, 59), (13, 41), (55, 59)] {
                let i = Interval::new(s, e);
                assert!(
                    (table.interval_weight(i) - w.interval_weight(i)).abs() < 1e-9,
                    "{w:?} interval {i}"
                );
            }
            for from in [0u32, 1, 30, 59, 60, 1000] {
                let naive: f64 = (from..60).map(|t| w.weight(t)).sum();
                assert!(
                    (table.suffix_weight(from) - naive).abs() < 1e-9,
                    "{w:?} suffix from {from}"
                );
            }
            assert!((table.total() - w.total(tl)).abs() < 1e-9);
        }
    }

    #[test]
    fn table_constant_one_is_exact() {
        let tl = Timeline::new(4000);
        let table = WeightFn::constant_one().table(tl);
        // Integer sums are exact in f64: bit-identical to the multiply form.
        assert_eq!(table.interval_weight(Interval::new(17, 3016)), 3000.0);
        assert_eq!(table.suffix_weight(3999), 1.0);
        assert_eq!(table.total(), 4000.0);
    }

    #[test]
    fn table_shares_piecewise_prefix() {
        let weights: Vec<f64> = vec![1.0, 0.0, 2.5, 0.5, 1.0];
        let w = WeightFn::piecewise(&weights);
        let table = w.table(Timeline::new(5));
        for (s, e) in [(0, 4), (1, 3), (2, 2)] {
            let i = Interval::new(s, e);
            assert_eq!(table.interval_weight(i), w.interval_weight(i), "shared prefix is exact");
        }
    }

    #[test]
    #[should_panic(expected = "different timeline")]
    fn table_rejects_mismatched_piecewise() {
        WeightFn::piecewise(&[1.0, 2.0]).table(Timeline::new(5));
    }

    #[test]
    fn interval_exceeding_exponential_grows_in_past() {
        let tl = Timeline::new(365);
        let w = WeightFn::exponential(0.99, tl);
        let recent = w.interval_exceeding(350, 2.0, tl).expect("recent interval fits");
        let old = w.interval_exceeding(0, 2.0, tl).expect("old interval fits");
        assert!(
            old.len() > recent.len(),
            "older slices need more timestamps under decay: {} vs {}",
            old.len(),
            recent.len()
        );
        assert!(w.interval_weight(old) > 2.0);
        // Minimality: one timestamp shorter must not exceed ε.
        if old.len() > 1 {
            assert!(w.interval_weight(Interval::new(old.start, old.end - 1)) <= 2.0);
        }
    }
}
