//! Temporal *tables*: row-aligned version histories.
//!
//! The unary model ([`crate::history`]) flattens each column into a value
//! set per version — all the paper's algorithms need. n-ary dependencies
//! (the paper's §6 future work) additionally need *row alignment*: the
//! projection of a table on a column list is a set of **tuples**, not a
//! set of independent values. [`TemporalTable`] keeps that alignment, and
//! [`TupleInterner`] maps projected tuples into ordinary [`ValueId`]s so
//! the entire unary machinery (Algorithm 2, indexes) applies unchanged to
//! n-ary projections.

use crate::hash::FastMap;
use crate::time::{Interval, Timestamp};
use crate::value::{ValueId, ValueSet};

/// One version of a table: the full row set valid from `start` until the
/// next version. Cells are `None` when empty/missing in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableVersion {
    /// First timestamp at which this version is valid.
    pub start: Timestamp,
    /// Rows; every row has exactly one cell per column.
    pub rows: Vec<Vec<Option<ValueId>>>,
}

/// A table's full observable history with stable, row-aligned columns.
///
/// # Examples
///
/// ```
/// use tind_model::{TableVersion, TemporalTable, TupleInterner};
///
/// let table = TemporalTable::new(
///     "games",
///     vec!["Game".into(), "Composer".into()],
///     vec![TableVersion {
///         start: 0,
///         rows: vec![vec![Some(1), Some(20)], vec![Some(2), None]],
///     }],
///     9,
/// );
/// // Projection on both columns keeps only complete tuples.
/// assert_eq!(table.project_version(0, &[0, 1]), vec![vec![1, 20]]);
/// // Tuple interning turns the projection into a unary history.
/// let mut interner = TupleInterner::new();
/// let history = table.project_history(&[0, 1], &mut interner);
/// assert_eq!(history.values_at(5).len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TemporalTable {
    name: String,
    columns: Vec<String>,
    versions: Vec<TableVersion>,
    last_observed: Timestamp,
}

impl TemporalTable {
    /// Assembles a table history.
    ///
    /// # Panics
    /// Panics if there are no versions, versions are not strictly
    /// increasing in `start`, a row's width differs from the column count,
    /// or `last_observed` precedes the final version.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<String>,
        versions: Vec<TableVersion>,
        last_observed: Timestamp,
    ) -> Self {
        assert!(!versions.is_empty(), "table needs at least one version");
        assert!(!columns.is_empty(), "table needs at least one column");
        for w in versions.windows(2) {
            assert!(w[0].start < w[1].start, "versions must be strictly increasing");
        }
        for (vi, v) in versions.iter().enumerate() {
            for row in &v.rows {
                assert_eq!(
                    row.len(),
                    columns.len(),
                    "version {vi}: row width {} != {} columns",
                    row.len(),
                    columns.len()
                );
            }
        }
        let final_start = versions.last().expect("non-empty").start;
        assert!(last_observed >= final_start, "last_observed precedes final version");
        TemporalTable { name: name.into(), columns, versions, last_observed }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column headers.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// All versions in order.
    pub fn versions(&self) -> &[TableVersion] {
        &self.versions
    }

    /// First observed timestamp.
    pub fn first_observed(&self) -> Timestamp {
        self.versions[0].start
    }

    /// Last observed timestamp (inclusive).
    pub fn last_observed(&self) -> Timestamp {
        self.last_observed
    }

    /// Validity interval of version `i`.
    pub fn version_validity(&self, i: usize) -> Interval {
        let start = self.versions[i].start;
        let end = match self.versions.get(i + 1) {
            Some(next) => next.start - 1,
            None => self.last_observed,
        };
        Interval::new(start, end)
    }

    /// The projection of version `i` on `cols`: the set of complete tuples
    /// (rows with a `None` in any projected column are skipped, the usual
    /// n-ary IND convention for nulls).
    pub fn project_version(&self, i: usize, cols: &[usize]) -> Vec<Vec<ValueId>> {
        assert!(cols.iter().all(|&c| c < self.columns.len()), "column index out of range");
        let mut tuples: Vec<Vec<ValueId>> = self.versions[i]
            .rows
            .iter()
            .filter_map(|row| cols.iter().map(|&c| row[c]).collect::<Option<Vec<ValueId>>>())
            .collect();
        tuples.sort_unstable();
        tuples.dedup();
        tuples
    }

    /// Projects the whole history on `cols`, interning each tuple through
    /// `interner`, yielding an ordinary unary [`crate::AttributeHistory`]
    /// over tuple ids — ready for Algorithm 2 and the tIND index.
    pub fn project_history(
        &self,
        cols: &[usize],
        interner: &mut TupleInterner,
    ) -> crate::AttributeHistory {
        let label = cols
            .iter()
            .map(|&c| self.columns[c].as_str())
            .collect::<Vec<_>>()
            .join(", ");
        let mut builder =
            crate::HistoryBuilder::new(format!("{} ▸ ({label})", self.name));
        for i in 0..self.versions.len() {
            let tuples = self.project_version(i, cols);
            let ids: ValueSet =
                tuples.into_iter().map(|t| interner.intern(&t)).collect();
            builder.push(self.versions[i].start, ids);
        }
        builder.finish(self.last_observed)
    }
}

/// Interns value-id tuples into fresh dense ids, so tuple sets behave like
/// ordinary value sets. Shared across all projections taking part in one
/// discovery run (ids must be consistent between LHS and RHS).
#[derive(Debug, Default)]
pub struct TupleInterner {
    by_tuple: FastMap<Vec<ValueId>, ValueId>,
    tuples: Vec<Vec<ValueId>>,
}

impl TupleInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns one tuple.
    pub fn intern(&mut self, tuple: &[ValueId]) -> ValueId {
        if let Some(&id) = self.by_tuple.get(tuple) {
            return id;
        }
        let id = u32::try_from(self.tuples.len()).expect("too many distinct tuples");
        self.by_tuple.insert(tuple.to_vec(), id);
        self.tuples.push(tuple.to_vec());
        id
    }

    /// Resolves a tuple id.
    pub fn resolve(&self, id: ValueId) -> &[ValueId] {
        &self.tuples[id as usize]
    }

    /// Number of distinct tuples interned.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(id: u32) -> Option<ValueId> {
        Some(id)
    }

    fn sample() -> TemporalTable {
        TemporalTable::new(
            "games",
            vec!["Game".into(), "Year".into(), "Composer".into()],
            vec![
                TableVersion {
                    start: 0,
                    rows: vec![
                        vec![v(1), v(10), v(20)],
                        vec![v(2), v(11), None],
                    ],
                },
                TableVersion {
                    start: 5,
                    rows: vec![
                        vec![v(1), v(10), v(20)],
                        vec![v(2), v(11), v(21)],
                        vec![v(3), v(11), v(20)],
                    ],
                },
            ],
            9,
        )
    }

    #[test]
    fn projection_skips_incomplete_tuples() {
        let t = sample();
        assert_eq!(t.project_version(0, &[0, 2]), vec![vec![1, 20]]);
        assert_eq!(t.project_version(0, &[0, 1]), vec![vec![1, 10], vec![2, 11]]);
        assert_eq!(t.project_version(1, &[0, 2]).len(), 3);
    }

    #[test]
    fn projection_dedups_tuples() {
        let t = TemporalTable::new(
            "dup",
            vec!["A".into(), "B".into()],
            vec![TableVersion {
                start: 0,
                rows: vec![vec![v(1), v(2)], vec![v(1), v(2)], vec![v(3), v(2)]],
            }],
            3,
        );
        assert_eq!(t.project_version(0, &[0, 1]), vec![vec![1, 2], vec![3, 2]]);
        assert_eq!(t.project_version(0, &[1]), vec![vec![2]]);
    }

    #[test]
    fn project_history_builds_unary_attribute() {
        let t = sample();
        let mut interner = TupleInterner::new();
        let h = t.project_history(&[0, 1], &mut interner);
        assert_eq!(h.name(), "games ▸ (Game, Year)");
        assert_eq!(h.versions().len(), 2);
        assert_eq!(h.first_observed(), 0);
        assert_eq!(h.last_observed(), 9);
        assert_eq!(h.values_at(0).len(), 2);
        assert_eq!(h.values_at(6).len(), 3);
        // The (1, 10) tuple is in both versions → same interned id.
        let id = interner.intern(&[1, 10]);
        assert!(h.values_at(0).contains(&id));
        assert!(h.values_at(6).contains(&id));
    }

    #[test]
    fn validity_intervals() {
        let t = sample();
        assert_eq!(t.version_validity(0), Interval::new(0, 4));
        assert_eq!(t.version_validity(1), Interval::new(5, 9));
        assert_eq!(t.first_observed(), 0);
        assert_eq!(t.last_observed(), 9);
    }

    #[test]
    fn tuple_interner_is_idempotent() {
        let mut i = TupleInterner::new();
        let a = i.intern(&[1, 2]);
        let b = i.intern(&[2, 1]);
        assert_ne!(a, b, "order matters in tuples");
        assert_eq!(i.intern(&[1, 2]), a);
        assert_eq!(i.resolve(b), &[2, 1]);
        assert_eq!(i.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        TemporalTable::new(
            "bad",
            vec!["A".into(), "B".into()],
            vec![TableVersion { start: 0, rows: vec![vec![v(1)]] }],
            3,
        );
    }

    #[test]
    #[should_panic(expected = "column index out of range")]
    fn rejects_bad_projection() {
        sample().project_version(0, &[5]);
    }
}
