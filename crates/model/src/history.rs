//! Attribute version histories.
//!
//! An attribute history records every distinct state (`version`) of a table
//! column over time. Versions are stored as runs: version `i` is valid from
//! `versions[i].start` until `versions[i+1].start - 1` (or until the
//! attribute's last observed timestamp for the final version). `A[t]` for a
//! `t` outside the observation period is the empty set (see crate docs).

use crate::time::{Interval, Timestamp};
use crate::value::{self, ValueId, ValueSet};

/// One version of an attribute: the value set valid from `start` until the
/// next change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Version {
    /// First timestamp at which this version is valid.
    pub start: Timestamp,
    /// Canonical (sorted, deduplicated) value set.
    ///
    /// This canonical form is a load-bearing invariant, not a convention:
    /// `value::is_subset`, the Bloom matrix builders, and the validation
    /// kernel's window union all binary-probe or merge these slices
    /// without re-sorting. [`HistoryBuilder::push`] canonicalizes every
    /// set it accepts; code constructing `Version`s directly must uphold
    /// the invariant itself (the validation kernel re-checks it with a
    /// `debug_assert` at query-plan build time).
    pub values: ValueSet,
}

/// The full observable history of one attribute.
///
/// # Examples
///
/// ```
/// use tind_model::HistoryBuilder;
///
/// let mut b = HistoryBuilder::new("games");
/// b.push(2, vec![0, 1]);      // {red, blue} from day 2
/// b.push(7, vec![0, 1, 2]);   // gains a value on day 7
/// let history = b.finish(10); // observed through day 10
///
/// assert_eq!(history.change_count(), 1);
/// assert_eq!(history.values_at(5), &[0, 1]);
/// assert_eq!(history.values_at(9), &[0, 1, 2]);
/// assert!(history.values_at(0).is_empty(), "not yet observable");
/// assert_eq!(history.value_universe(), vec![0, 1, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeHistory {
    name: String,
    /// Versions, strictly increasing in `start`; `versions[0].start` is the
    /// first observed timestamp.
    versions: Vec<Version>,
    /// Last timestamp at which the attribute was observed (inclusive).
    last_observed: Timestamp,
}

impl AttributeHistory {
    /// Human-readable attribute name, e.g. `"Pokémon games ▸ Game"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// First timestamp at which the attribute exists.
    pub fn first_observed(&self) -> Timestamp {
        self.versions[0].start
    }

    /// Last timestamp at which the attribute exists (inclusive).
    pub fn last_observed(&self) -> Timestamp {
        self.last_observed
    }

    /// The observation interval `[first, last]`.
    pub fn observation(&self) -> Interval {
        Interval::new(self.first_observed(), self.last_observed)
    }

    /// Lifespan in timestamps.
    pub fn lifespan(&self) -> u32 {
        self.observation().len()
    }

    /// All versions in chronological order.
    pub fn versions(&self) -> &[Version] {
        &self.versions
    }

    /// Number of *changes*, i.e. `versions - 1` (the paper's bucketing
    /// dimension in Table 2).
    pub fn change_count(&self) -> usize {
        self.versions.len() - 1
    }

    /// Index of the version valid at `t`, or `None` outside the observation
    /// period.
    pub fn version_index_at(&self, t: Timestamp) -> Option<usize> {
        if t < self.first_observed() || t > self.last_observed {
            return None;
        }
        // partition_point returns the first index whose start exceeds t; the
        // version valid at t is the one before it.
        let idx = self.versions.partition_point(|v| v.start <= t);
        debug_assert!(idx > 0);
        Some(idx - 1)
    }

    /// `A[t]`: the value set valid at `t`, empty outside observation.
    ///
    /// The returned slice is canonical — sorted ascending and free of
    /// duplicates (see [`Version::values`]). Consumers such as
    /// `WindowUnion::contains_all` and the plan-based validation scratch
    /// rely on this to probe and size-compare sets without normalizing.
    pub fn values_at(&self, t: Timestamp) -> &[ValueId] {
        match self.version_index_at(t) {
            Some(i) => &self.versions[i].values,
            None => &[],
        }
    }

    /// The validity interval of version `i` (clipped to the observation
    /// period).
    pub fn version_validity(&self, i: usize) -> Interval {
        let start = self.versions[i].start;
        let end = match self.versions.get(i + 1) {
            Some(next) => next.start - 1,
            None => self.last_observed,
        };
        Interval::new(start, end)
    }

    /// Indices of versions whose validity overlaps `interval`.
    pub fn version_range_in(&self, interval: Interval) -> std::ops::Range<usize> {
        if interval.end < self.first_observed() || interval.start > self.last_observed {
            return 0..0;
        }
        // First version whose validity reaches into the interval: the last
        // version starting at or before interval.start, or the first version
        // overall if the interval starts before observation.
        let lo = self.versions.partition_point(|v| v.start <= interval.start).saturating_sub(1);
        // One past the last version starting within the interval. Since the
        // early return above guarantees interval.end >= versions[0].start,
        // hi >= 1 and hi > lo always hold.
        let hi = self.versions.partition_point(|v| v.start <= interval.end);
        lo..hi
    }

    /// `A[I]`: the union of all value sets valid at some `t ∈ I`, as a
    /// canonical set. Empty if the attribute is unobservable throughout `I`.
    pub fn values_in(&self, interval: Interval) -> ValueSet {
        let range = self.version_range_in(interval);
        let mut acc: ValueSet = Vec::new();
        for v in &self.versions[range] {
            if acc.is_empty() {
                acc.extend_from_slice(&v.values);
            } else {
                acc = value::union(&acc, &v.values);
            }
        }
        acc
    }

    /// Number of distinct values appearing anywhere in `interval`
    /// (`|A[I]|`; used by the weighted-random slice selection, Section 4.4.2).
    pub fn distinct_count_in(&self, interval: Interval) -> usize {
        self.values_in(interval).len()
    }

    /// The union of all value sets across the whole history (`A[T]`; the
    /// contents of the `M_T` index column, Section 4.2.1).
    pub fn value_universe(&self) -> ValueSet {
        self.values_in(Interval::new(self.first_observed(), self.last_observed))
    }

    /// Timestamps at which the attribute changes (the `V_A` of Algorithm 2):
    /// the start of every version, plus the first timestamp *after* the
    /// observation period (where the attribute reverts to the empty set), if
    /// any, given the timeline length `n`.
    pub fn change_points(&self, n: u32) -> Vec<Timestamp> {
        let mut out: Vec<Timestamp> = self.versions.iter().map(|v| v.start).collect();
        if self.last_observed + 1 < n {
            out.push(self.last_observed + 1);
        }
        out
    }

    /// Median cardinality over all versions (the paper's ≥5 filter in §5.1).
    pub fn median_cardinality(&self) -> usize {
        let mut sizes: Vec<usize> = self.versions.iter().map(|v| v.values.len()).collect();
        sizes.sort_unstable();
        sizes[sizes.len() / 2]
    }

    /// Mean cardinality over all versions.
    pub fn mean_cardinality(&self) -> f64 {
        let total: usize = self.versions.iter().map(|v| v.values.len()).sum();
        total as f64 / self.versions.len() as f64
    }
}

/// Incremental builder enforcing history invariants.
#[derive(Debug, Clone)]
pub struct HistoryBuilder {
    name: String,
    versions: Vec<Version>,
}

impl HistoryBuilder {
    /// Starts a history for the named attribute.
    pub fn new(name: impl Into<String>) -> Self {
        HistoryBuilder { name: name.into(), versions: Vec::new() }
    }

    /// Records that the attribute changed to `values` at `start`.
    ///
    /// Values are canonicalized. A version identical to the previous one is
    /// silently merged (no change happened). Out-of-order or duplicate start
    /// timestamps panic: callers own chronological ordering.
    pub fn push(&mut self, start: Timestamp, values: Vec<ValueId>) -> &mut Self {
        let values = value::canonicalize(values);
        if let Some(prev) = self.versions.last() {
            assert!(
                start > prev.start,
                "versions must be pushed in strictly increasing start order ({} after {})",
                start,
                prev.start
            );
            if prev.values == values {
                return self; // no actual change
            }
        }
        self.versions.push(Version { start, values });
        self
    }

    /// Number of versions recorded so far.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Whether no version has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Finalizes the history, observed up to and including `last_observed`.
    ///
    /// # Panics
    /// Panics if no version was pushed or `last_observed` precedes the final
    /// version's start.
    pub fn finish(self, last_observed: Timestamp) -> AttributeHistory {
        assert!(!self.versions.is_empty(), "history needs at least one version");
        let final_start = self.versions.last().expect("non-empty").start;
        assert!(
            last_observed >= final_start,
            "last_observed {last_observed} precedes final version start {final_start}"
        );
        AttributeHistory { name: self.name, versions: self.versions, last_observed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AttributeHistory {
        // versions: [2,5): {1,2}; [5,9): {1,2,3}; [9,..=12]: {2,3}
        let mut b = HistoryBuilder::new("sample");
        b.push(2, vec![2, 1]);
        b.push(5, vec![1, 2, 3]);
        b.push(9, vec![3, 2]);
        b.finish(12)
    }

    #[test]
    fn values_at_respects_runs_and_observation() {
        let h = sample();
        assert_eq!(h.values_at(0), &[] as &[ValueId]);
        assert_eq!(h.values_at(1), &[] as &[ValueId]);
        assert_eq!(h.values_at(2), &[1, 2]);
        assert_eq!(h.values_at(4), &[1, 2]);
        assert_eq!(h.values_at(5), &[1, 2, 3]);
        assert_eq!(h.values_at(8), &[1, 2, 3]);
        assert_eq!(h.values_at(9), &[2, 3]);
        assert_eq!(h.values_at(12), &[2, 3]);
        assert_eq!(h.values_at(13), &[] as &[ValueId]);
    }

    #[test]
    fn metadata_accessors() {
        let h = sample();
        assert_eq!(h.name(), "sample");
        assert_eq!(h.first_observed(), 2);
        assert_eq!(h.last_observed(), 12);
        assert_eq!(h.lifespan(), 11);
        assert_eq!(h.change_count(), 2);
        assert_eq!(h.versions().len(), 3);
    }

    #[test]
    fn version_validity_intervals() {
        let h = sample();
        assert_eq!(h.version_validity(0), Interval::new(2, 4));
        assert_eq!(h.version_validity(1), Interval::new(5, 8));
        assert_eq!(h.version_validity(2), Interval::new(9, 12));
    }

    #[test]
    fn values_in_unions_overlapping_versions() {
        let h = sample();
        assert_eq!(h.values_in(Interval::new(0, 1)), Vec::<ValueId>::new());
        assert_eq!(h.values_in(Interval::new(0, 3)), vec![1, 2]);
        assert_eq!(h.values_in(Interval::new(4, 5)), vec![1, 2, 3]);
        assert_eq!(h.values_in(Interval::new(0, 20)), vec![1, 2, 3]);
        assert_eq!(h.values_in(Interval::new(9, 20)), vec![2, 3]);
        assert_eq!(h.values_in(Interval::new(13, 20)), Vec::<ValueId>::new());
        assert_eq!(h.value_universe(), vec![1, 2, 3]);
    }

    #[test]
    fn change_points_include_disappearance() {
        let h = sample();
        assert_eq!(h.change_points(20), vec![2, 5, 9, 13]);
        // If the timeline ends exactly at last_observed, there is no
        // disappearance point.
        assert_eq!(h.change_points(13), vec![2, 5, 9]);
    }

    #[test]
    fn builder_merges_identical_versions() {
        let mut b = HistoryBuilder::new("x");
        b.push(0, vec![1, 2]);
        b.push(3, vec![2, 1]); // same set, different order
        b.push(5, vec![1]);
        let h = b.finish(6);
        assert_eq!(h.versions().len(), 2);
        assert_eq!(h.change_count(), 1);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn builder_rejects_out_of_order() {
        let mut b = HistoryBuilder::new("x");
        b.push(5, vec![1]);
        b.push(5, vec![2]);
    }

    #[test]
    #[should_panic(expected = "at least one version")]
    fn builder_rejects_empty() {
        HistoryBuilder::new("x").finish(3);
    }

    #[test]
    fn cardinality_stats() {
        let h = sample();
        assert_eq!(h.median_cardinality(), 2); // sizes [2,3,2] sorted -> [2,2,3]
        assert!((h.mean_cardinality() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_version_history() {
        let mut b = HistoryBuilder::new("solo");
        b.push(4, vec![9]);
        let h = b.finish(4);
        assert_eq!(h.lifespan(), 1);
        assert_eq!(h.change_count(), 0);
        assert_eq!(h.values_at(4), &[9]);
        assert_eq!(h.values_at(5), &[] as &[ValueId]);
        assert_eq!(h.version_validity(0), Interval::new(4, 4));
    }

    #[test]
    fn version_range_in_edges() {
        let h = sample();
        assert_eq!(h.version_range_in(Interval::new(0, 1)), 0..0);
        assert_eq!(h.version_range_in(Interval::new(13, 15)), 0..0);
        assert_eq!(h.version_range_in(Interval::new(2, 2)), 0..1);
        assert_eq!(h.version_range_in(Interval::new(6, 10)), 1..3);
        assert_eq!(h.version_range_in(Interval::new(0, 100)), 0..3);
    }
}
