//! Datasets: the attribute collection `D` of the discovery problem.

use crate::hash::FastMap;
use crate::history::AttributeHistory;
use crate::time::{Timeline, Timestamp};
use crate::value::{Dictionary, ValueId, ValueSet};

/// Dense identifier of an attribute within a dataset: the index into
/// [`Dataset::attributes`]. Bloom-matrix columns use the same numbering.
pub type AttrId = u32;

/// A collection of attribute histories over a shared timeline and value
/// dictionary — the input `D` of tIND search and discovery.
#[derive(Debug, Clone)]
pub struct Dataset {
    timeline: Timeline,
    dictionary: Dictionary,
    attributes: Vec<AttributeHistory>,
    by_name: FastMap<String, AttrId>,
}

impl Dataset {
    /// The shared timeline.
    pub fn timeline(&self) -> Timeline {
        self.timeline
    }

    /// The shared value dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dictionary
    }

    /// All attribute histories, indexed by [`AttrId`].
    pub fn attributes(&self) -> &[AttributeHistory] {
        &self.attributes
    }

    /// Number of attributes `|D|`.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// Whether the dataset holds no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// The history with the given id.
    pub fn attribute(&self, id: AttrId) -> &AttributeHistory {
        &self.attributes[id as usize]
    }

    /// Looks an attribute up by name.
    pub fn attribute_by_name(&self, name: &str) -> Option<(AttrId, &AttributeHistory)> {
        self.by_name.get(name).map(|&id| (id, &self.attributes[id as usize]))
    }

    /// Iterates `(id, history)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &AttributeHistory)> {
        self.attributes.iter().enumerate().map(|(i, h)| (i as AttrId, h))
    }

    /// `A[t]` for every attribute: the dataset state at one timestamp.
    pub fn snapshot_at(&self, t: Timestamp) -> crate::snapshot::Snapshot<'_> {
        crate::snapshot::Snapshot::of(self, t)
    }

    /// Resolves a set of value ids to their strings (diagnostics/UI).
    pub fn resolve_set(&self, set: &[ValueId]) -> Vec<&str> {
        set.iter().map(|&v| self.dictionary.resolve(v)).collect()
    }

    /// Dissolves the dataset back into a builder so more attributes can be
    /// appended. Used by checkpointed ingestion: a partial dataset decoded
    /// from a checkpoint resumes exactly where it left off, preserving the
    /// dictionary's intern order so the final encoding stays byte-identical.
    pub fn into_builder(self) -> DatasetBuilder {
        DatasetBuilder {
            timeline: self.timeline,
            dictionary: self.dictionary,
            attributes: self.attributes,
        }
    }

    /// Keeps only attributes satisfying `keep`, renumbering ids densely.
    /// Returns the mapping `old AttrId -> new AttrId`.
    pub fn retain<F>(&mut self, mut keep: F) -> FastMap<AttrId, AttrId>
    where
        F: FnMut(&AttributeHistory) -> bool,
    {
        let mut mapping = FastMap::default();
        let mut kept = Vec::with_capacity(self.attributes.len());
        for (old_id, hist) in self.attributes.drain(..).enumerate() {
            if keep(&hist) {
                mapping.insert(old_id as AttrId, kept.len() as AttrId);
                kept.push(hist);
            }
        }
        self.attributes = kept;
        self.by_name = self
            .attributes
            .iter()
            .enumerate()
            .map(|(i, h)| (h.name().to_owned(), i as AttrId))
            .collect();
        mapping
    }
}

/// Builder assembling a [`Dataset`] from interned histories.
///
/// `Clone` so long-running ingestion can snapshot the partial build into a
/// checkpoint without disturbing the in-progress state.
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    timeline: Timeline,
    dictionary: Dictionary,
    attributes: Vec<AttributeHistory>,
}

impl DatasetBuilder {
    /// Starts an empty dataset over `timeline`.
    pub fn new(timeline: Timeline) -> Self {
        DatasetBuilder { timeline, dictionary: Dictionary::new(), attributes: Vec::new() }
    }

    /// Mutable access to the dictionary for interning values.
    pub fn dictionary_mut(&mut self) -> &mut Dictionary {
        &mut self.dictionary
    }

    /// Read access to the dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dictionary
    }

    /// The timeline this dataset is being built over.
    pub fn timeline(&self) -> Timeline {
        self.timeline
    }

    /// Adds a fully built history; returns its id.
    ///
    /// # Panics
    /// Panics if the history extends beyond the timeline.
    pub fn add_history(&mut self, history: AttributeHistory) -> AttrId {
        assert!(
            self.timeline.contains(history.last_observed()),
            "history '{}' ends at {} beyond timeline of length {}",
            history.name(),
            history.last_observed(),
            self.timeline.len()
        );
        let id = self.attributes.len() as AttrId;
        self.attributes.push(history);
        id
    }

    /// Adds `history`, or replaces the existing history of the same name
    /// in place, keeping its [`AttrId`]. Returns `(id, replaced)`.
    ///
    /// This is the delta-ingestion primitive: a page re-staged with newer
    /// revisions yields fresh histories for columns that already have ids,
    /// and those ids must stay stable so an incrementally maintained index
    /// can update the touched columns instead of appending duplicates.
    ///
    /// Name lookup is a linear scan — callers batch at page granularity,
    /// where the handful of columns per page is dwarfed by re-staging cost.
    ///
    /// # Panics
    /// Panics if the history extends beyond the timeline.
    pub fn upsert_history(&mut self, history: AttributeHistory) -> (AttrId, bool) {
        if let Some(pos) = self.attributes.iter().position(|h| h.name() == history.name()) {
            assert!(
                self.timeline.contains(history.last_observed()),
                "history '{}' ends at {} beyond timeline of length {}",
                history.name(),
                history.last_observed(),
                self.timeline.len()
            );
            self.attributes[pos] = history;
            (pos as AttrId, true)
        } else {
            (self.add_history(history), false)
        }
    }

    /// Convenience: builds and adds a history from `(start, values)` string
    /// versions, observed through `last_observed`.
    pub fn add_attribute<S: AsRef<str>>(
        &mut self,
        name: &str,
        versions: &[(Timestamp, Vec<S>)],
        last_observed: Timestamp,
    ) -> AttrId {
        let mut b = crate::history::HistoryBuilder::new(name);
        for (start, values) in versions {
            let set: ValueSet = values.iter().map(|s| self.dictionary.intern(s.as_ref())).collect();
            b.push(*start, set);
        }
        self.add_history(b.finish(last_observed))
    }

    /// Number of attributes added so far.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// Whether no attribute has been added.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// Finalizes the dataset.
    pub fn build(self) -> Dataset {
        let by_name = self
            .attributes
            .iter()
            .enumerate()
            .map(|(i, h)| (h.name().to_owned(), i as AttrId))
            .collect();
        Dataset {
            timeline: self.timeline,
            dictionary: self.dictionary,
            attributes: self.attributes,
            by_name,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dataset() -> Dataset {
        let mut b = DatasetBuilder::new(Timeline::new(10));
        b.add_attribute("games", &[(0, vec!["red", "blue"]), (4, vec!["red", "blue", "gold"])], 9);
        b.add_attribute("all", &[(0, vec!["red", "blue", "gold", "silver"])], 9);
        b.build()
    }

    #[test]
    fn builder_assembles_and_indexes() {
        let d = small_dataset();
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        let (id, hist) = d.attribute_by_name("games").expect("exists");
        assert_eq!(id, 0);
        assert_eq!(hist.change_count(), 1);
        assert!(d.attribute_by_name("nope").is_none());
        assert_eq!(d.iter().count(), 2);
    }

    #[test]
    fn shared_dictionary_assigns_same_ids() {
        let d = small_dataset();
        let games = d.attribute(0).values_at(0);
        let all = d.attribute(1).values_at(0);
        // "red" and "blue" must have identical ids in both attributes.
        assert!(crate::value::is_subset(games, all));
        assert_eq!(d.resolve_set(games).len(), 2);
    }

    #[test]
    #[should_panic(expected = "beyond timeline")]
    fn rejects_history_past_timeline() {
        let mut b = DatasetBuilder::new(Timeline::new(5));
        b.add_attribute::<&str>("x", &[(0, vec!["a"])], 5);
    }

    #[test]
    fn upsert_replaces_in_place_and_appends_new() {
        let mut b = small_dataset().into_builder();
        let mut fresh = crate::history::HistoryBuilder::new("games");
        fresh.push(0, vec![0, 1]);
        fresh.push(6, vec![0, 1, 2]);
        let (id, replaced) = b.upsert_history(fresh.finish(9));
        assert_eq!((id, replaced), (0, true), "existing name keeps its id");

        let mut new = crate::history::HistoryBuilder::new("brand-new");
        new.push(2, vec![3]);
        let (id, replaced) = b.upsert_history(new.finish(9));
        assert_eq!((id, replaced), (2, false), "new name appends");

        let d = b.build();
        assert_eq!(d.len(), 3);
        assert_eq!(d.attribute(0).change_count(), 1);
        assert_eq!(d.attribute(0).versions().len(), 2);
        assert_eq!(d.attribute_by_name("brand-new").map(|(i, _)| i), Some(2));
    }

    #[test]
    fn retain_renumbers_densely() {
        let mut d = small_dataset();
        let mapping = d.retain(|h| h.name() == "all");
        assert_eq!(d.len(), 1);
        assert_eq!(d.attribute(0).name(), "all");
        assert_eq!(mapping.get(&1), Some(&0));
        assert_eq!(mapping.get(&0), None);
        assert_eq!(d.attribute_by_name("all").map(|(id, _)| id), Some(0));
        assert!(d.attribute_by_name("games").is_none());
    }
}
