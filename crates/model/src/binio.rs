//! Compact hand-rolled binary serialization for datasets.
//!
//! Datasets at experiment scale hold millions of versions; a dedicated
//! binary format (varints, delta-encoded timestamps and value ids) keeps
//! files small and loading fast without pulling in a serialization
//! framework. The format is versioned via a magic header.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::dataset::{Dataset, DatasetBuilder};
use crate::history::HistoryBuilder;
use crate::time::Timeline;
use crate::value::ValueId;

/// Magic bytes identifying a serialized dataset, including a format version.
/// Version 2 appended the CRC-32 integrity trailer (see [`crate::checksum`]).
pub const MAGIC: &[u8; 8] = b"TINDDS\x00\x02";

/// Errors arising while decoding a serialized dataset.
#[derive(Debug)]
pub enum BinIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The byte stream does not conform to the format.
    Corrupt(String),
    /// The integrity trailer does not match the payload: the file was
    /// truncated or bit-flipped after it was written.
    Checksum {
        /// CRC-32 stored in the trailer.
        stored: u32,
        /// CRC-32 recomputed over the payload.
        computed: u32,
        /// Byte offset of the trailer within the file — everything before
        /// this offset is covered by the checksum, so this is also the
        /// payload length the verifier hashed. Operators use it to locate
        /// where a file was cut or copied short.
        offset: u64,
    },
}

impl std::fmt::Display for BinIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinIoError::Io(e) => write!(f, "i/o error: {e}"),
            BinIoError::Corrupt(msg) => write!(f, "corrupt dataset file: {msg}"),
            BinIoError::Checksum { stored, computed, offset } => write!(
                f,
                "checksum mismatch over bytes 0..{offset}: trailer at byte offset {offset} says \
                 {stored:#010x} but payload hashes to {computed:#010x} (file truncated or \
                 corrupted)"
            ),
        }
    }
}

impl std::error::Error for BinIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BinIoError::Io(e) => Some(e),
            BinIoError::Corrupt(_) | BinIoError::Checksum { .. } => None,
        }
    }
}

impl From<std::io::Error> for BinIoError {
    fn from(e: std::io::Error) -> Self {
        BinIoError::Io(e)
    }
}

fn corrupt(msg: impl Into<String>) -> BinIoError {
    BinIoError::Corrupt(msg.into())
}

/// Validates an 8-byte magic header (7-byte identifier + version byte),
/// distinguishing "not this kind of file" from "right file, wrong
/// version" so operators see an actionable message.
pub fn check_magic(bytes: &[u8], magic: &[u8; 8], what: &str) -> Result<(), BinIoError> {
    if bytes.len() < magic.len() || bytes[..magic.len() - 1] != magic[..magic.len() - 1] {
        return Err(corrupt(format!("bad {what} magic header")));
    }
    let version = bytes[magic.len() - 1];
    if version != magic[magic.len() - 1] {
        return Err(corrupt(format!(
            "unsupported {what} format version {version} (this build reads version {}; \
             re-generate the file)",
            magic[magic.len() - 1]
        )));
    }
    Ok(())
}

/// LEB128-style unsigned varint encoding.
pub fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Decodes a varint, failing on truncation or overlong (>10 byte) encodings.
pub fn get_varint(buf: &mut Bytes) -> Result<u64, BinIoError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(corrupt("truncated varint"));
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(corrupt("varint overflows u64"));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Encodes a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut BytesMut, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

/// Decodes a length-prefixed UTF-8 string.
pub fn get_str(buf: &mut Bytes) -> Result<String, BinIoError> {
    let len = get_varint(buf)? as usize;
    if buf.remaining() < len {
        return Err(corrupt("truncated string"));
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| corrupt("invalid utf-8 in string"))
}

/// Serializes `dataset` into a byte buffer.
pub fn encode_dataset(dataset: &Dataset) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 << 20);
    buf.put_slice(MAGIC);
    put_varint(&mut buf, u64::from(dataset.timeline().len()));
    // Dictionary, in id order so ids are implicit.
    put_varint(&mut buf, dataset.dictionary().len() as u64);
    for (_, s) in dataset.dictionary().iter() {
        put_str(&mut buf, s);
    }
    put_varint(&mut buf, dataset.len() as u64);
    for h in dataset.attributes() {
        put_str(&mut buf, h.name());
        put_varint(&mut buf, u64::from(h.last_observed()));
        put_varint(&mut buf, h.versions().len() as u64);
        let mut prev_start = 0u32;
        for v in h.versions() {
            put_varint(&mut buf, u64::from(v.start - prev_start));
            prev_start = v.start;
            put_varint(&mut buf, v.values.len() as u64);
            let mut prev_val: u64 = 0;
            for &val in &v.values {
                // Values are sorted ascending; delta-encode.
                put_varint(&mut buf, u64::from(val) - prev_val);
                prev_val = u64::from(val);
            }
        }
    }
    crate::checksum::append_trailer(&mut buf);
    buf.freeze()
}

/// Deserializes a dataset from bytes produced by [`encode_dataset`].
pub fn decode_dataset(bytes: Bytes) -> Result<Dataset, BinIoError> {
    check_magic(&bytes, MAGIC, "dataset")?;
    let mut buf = crate::checksum::verify_and_strip(bytes)?;
    buf.advance(MAGIC.len());
    let timeline_len =
        u32::try_from(get_varint(&mut buf)?).map_err(|_| corrupt("timeline length overflow"))?;
    if timeline_len == 0 {
        return Err(corrupt("zero-length timeline"));
    }
    let mut builder = DatasetBuilder::new(Timeline::new(timeline_len));
    let dict_len = get_varint(&mut buf)? as usize;
    for expected_id in 0..dict_len {
        let s = get_str(&mut buf)?;
        let id = builder.dictionary_mut().intern(&s);
        if id as usize != expected_id {
            return Err(corrupt(format!("duplicate dictionary entry '{s}'")));
        }
    }
    let num_attrs = get_varint(&mut buf)? as usize;
    for _ in 0..num_attrs {
        let name = get_str(&mut buf)?;
        let last_observed =
            u32::try_from(get_varint(&mut buf)?).map_err(|_| corrupt("last_observed overflow"))?;
        let num_versions = get_varint(&mut buf)? as usize;
        if num_versions == 0 {
            return Err(corrupt(format!("attribute '{name}' has no versions")));
        }
        let mut hb = HistoryBuilder::new(&name);
        let mut start = 0u32;
        for vi in 0..num_versions {
            let delta =
                u32::try_from(get_varint(&mut buf)?).map_err(|_| corrupt("start delta overflow"))?;
            if vi > 0 && delta == 0 {
                return Err(corrupt(format!("attribute '{name}': non-increasing version start")));
            }
            start += delta;
            let card = get_varint(&mut buf)? as usize;
            let mut values: Vec<ValueId> = Vec::with_capacity(card);
            let mut val: u64 = 0;
            for ci in 0..card {
                let d = get_varint(&mut buf)?;
                if ci > 0 && d == 0 {
                    return Err(corrupt("duplicate value id in version"));
                }
                val += d;
                let id = u32::try_from(val).map_err(|_| corrupt("value id overflow"))?;
                if id as usize >= dict_len {
                    return Err(corrupt(format!("value id {id} outside dictionary")));
                }
                values.push(id);
            }
            hb.push(start, values);
        }
        if last_observed < start || last_observed >= timeline_len {
            return Err(corrupt(format!("attribute '{name}': invalid last_observed")));
        }
        builder.add_history(hb.finish(last_observed));
    }
    if buf.has_remaining() {
        return Err(corrupt("trailing bytes after dataset"));
    }
    Ok(builder.build())
}

/// Serializes a weight function (tag byte + payload).
pub fn put_weight_fn(buf: &mut BytesMut, w: &crate::WeightFn) {
    use crate::WeightFn;
    match w {
        WeightFn::Constant { per_timestamp } => {
            buf.put_u8(0);
            buf.put_f64(*per_timestamp);
        }
        WeightFn::ExponentialDecay { a, n } => {
            buf.put_u8(1);
            buf.put_f64(*a);
            put_varint(buf, u64::from(*n));
        }
        WeightFn::LinearDecay { n } => {
            buf.put_u8(2);
            put_varint(buf, u64::from(*n));
        }
        WeightFn::Piecewise { prefix } => {
            buf.put_u8(3);
            put_varint(buf, prefix.len() as u64);
            for &p in prefix.iter() {
                buf.put_f64(p);
            }
        }
    }
}

/// Deserializes a weight function written by [`put_weight_fn`].
pub fn get_weight_fn(buf: &mut Bytes) -> Result<crate::WeightFn, BinIoError> {
    use crate::WeightFn;
    if !buf.has_remaining() {
        return Err(corrupt("truncated weight function"));
    }
    let tag = buf.get_u8();
    let need = |buf: &Bytes, n: usize| {
        if buf.remaining() < n {
            Err(corrupt("truncated weight function payload"))
        } else {
            Ok(())
        }
    };
    match tag {
        0 => {
            need(buf, 8)?;
            Ok(WeightFn::Constant { per_timestamp: buf.get_f64() })
        }
        1 => {
            need(buf, 8)?;
            let a = buf.get_f64();
            let n = u32::try_from(get_varint(buf)?).map_err(|_| corrupt("n overflow"))?;
            if !(a > 0.0 && a < 1.0) {
                return Err(corrupt("decay base out of range"));
            }
            Ok(WeightFn::ExponentialDecay { a, n })
        }
        2 => {
            let n = u32::try_from(get_varint(buf)?).map_err(|_| corrupt("n overflow"))?;
            Ok(WeightFn::LinearDecay { n })
        }
        3 => {
            let len = get_varint(buf)? as usize;
            need(buf, len.checked_mul(8).ok_or_else(|| corrupt("prefix overflow"))?)?;
            let mut prefix = Vec::with_capacity(len);
            for _ in 0..len {
                prefix.push(buf.get_f64());
            }
            if prefix.windows(2).any(|w| w[1] < w[0]) || prefix.first() != Some(&0.0) {
                return Err(corrupt("invalid weight prefix sums"));
            }
            Ok(WeightFn::Piecewise { prefix: std::sync::Arc::new(prefix) })
        }
        other => Err(corrupt(format!("unknown weight function tag {other}"))),
    }
}

/// A 64-bit fingerprint of a dataset's serialized form; persisted indexes
/// store it so a stale index cannot silently be used with a different
/// dataset.
pub fn dataset_fingerprint(dataset: &Dataset) -> u64 {
    crate::hash::hash_bytes(&encode_dataset(dataset))
}

/// Writes `dataset` to the file at `path`.
pub fn write_dataset_file(dataset: &Dataset, path: &std::path::Path) -> Result<(), BinIoError> {
    std::fs::write(path, encode_dataset(dataset))?;
    Ok(())
}

/// Reads a dataset from the file at `path`.
pub fn read_dataset_file(path: &std::path::Path) -> Result<Dataset, BinIoError> {
    let raw = std::fs::read(path)?;
    decode_dataset(Bytes::from(raw))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timeline;

    fn sample() -> Dataset {
        let mut b = DatasetBuilder::new(Timeline::new(100));
        b.add_attribute(
            "games",
            &[(0, vec!["red", "blue"]), (40, vec!["red", "blue", "gold"])],
            99,
        );
        b.add_attribute("devs", &[(10, vec!["masuda", "morimoto"])], 80);
        b.add_attribute("empty-ish", &[(5, Vec::<&str>::new())], 9);
        b.build()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let d = sample();
        let bytes = encode_dataset(&d);
        let d2 = decode_dataset(bytes).expect("decodes");
        assert_eq!(d2.timeline(), d.timeline());
        assert_eq!(d2.len(), d.len());
        assert_eq!(d2.dictionary().len(), d.dictionary().len());
        for (id, h) in d.iter() {
            let h2 = d2.attribute(id);
            assert_eq!(h2.name(), h.name());
            assert_eq!(h2.versions(), h.versions());
            assert_eq!(h2.last_observed(), h.last_observed());
        }
        // Interning must produce identical ids after roundtrip.
        assert_eq!(d.dictionary().get("gold"), d2.dictionary().get("gold"));
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = BytesMut::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut bytes = buf.freeze();
        for &v in &values {
            assert_eq!(get_varint(&mut bytes).expect("decodes"), v);
        }
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn rejects_bad_magic() {
        let err = decode_dataset(Bytes::from_static(b"NOTADATASET")).expect_err("must fail");
        assert!(matches!(err, BinIoError::Corrupt(_)));
    }

    #[test]
    fn rejects_truncation() {
        let bytes = encode_dataset(&sample());
        for cut in [MAGIC.len(), bytes.len() / 2, bytes.len() - 1] {
            let truncated = bytes.slice(0..cut);
            assert!(decode_dataset(truncated).is_err(), "truncation at {cut} must fail");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut raw = encode_dataset(&sample()).to_vec();
        raw.push(0x42);
        assert!(decode_dataset(Bytes::from(raw)).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("tind-model-binio-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("sample.tind");
        let d = sample();
        write_dataset_file(&d, &path).expect("write");
        let d2 = read_dataset_file(&path).expect("read");
        assert_eq!(d2.len(), d.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn weight_fn_roundtrip() {
        let tl = Timeline::new(30);
        let fns = [
            crate::WeightFn::constant_one(),
            crate::WeightFn::uniform_normalized(tl),
            crate::WeightFn::exponential(0.97, tl),
            crate::WeightFn::linear(tl),
            crate::WeightFn::piecewise(&[1.0, 0.5, 0.0, 2.0]),
        ];
        for w in fns {
            let mut buf = BytesMut::new();
            put_weight_fn(&mut buf, &w);
            let mut bytes = buf.freeze();
            let w2 = get_weight_fn(&mut bytes).expect("roundtrip decodes");
            assert_eq!(w, w2);
            assert!(!bytes.has_remaining());
        }
    }

    #[test]
    fn weight_fn_rejects_garbage() {
        assert!(get_weight_fn(&mut Bytes::from_static(&[9])).is_err());
        assert!(get_weight_fn(&mut Bytes::new()).is_err());
        assert!(get_weight_fn(&mut Bytes::from_static(&[1, 0, 0])).is_err());
    }

    #[test]
    fn fingerprint_distinguishes_datasets() {
        let a = sample();
        let mut b = DatasetBuilder::new(Timeline::new(100));
        b.add_attribute("other", &[(0, vec!["x", "y", "z", "w", "v"])], 99);
        let b = b.build();
        assert_eq!(dataset_fingerprint(&a), dataset_fingerprint(&a));
        assert_ne!(dataset_fingerprint(&a), dataset_fingerprint(&b));
    }

    #[test]
    fn error_display_and_source() {
        let e = corrupt("boom");
        assert!(e.to_string().contains("boom"));
        let io: BinIoError = std::io::Error::other("disk on fire").into();
        assert!(io.to_string().contains("disk on fire"));
        use std::error::Error;
        assert!(io.source().is_some());
    }
}
