//! Memory budget accounting (re-export).
//!
//! The budget accountant originally lived here, motivated by k-MANY's
//! per-query violation arrays running a 256 GB machine out of memory at
//! paper scale (Figure 7). It moved to [`tind_model::memory`] — the
//! dependency root of the workspace — so that `tind-core`'s all-pairs
//! discovery can charge worker scratch space against the *same* budget
//! and degrade to sequential execution instead of aborting. This module
//! re-exports it to keep `tind_baseline::memory::MemoryBudget` paths
//! working.

pub use tind_model::memory::{Charge, MemoryBudget};
