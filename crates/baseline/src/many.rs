//! MANY-style static IND discovery on a single snapshot.
//!
//! MANY (Tschirschnitz et al.) finds unary INDs across very many small
//! tables by Bloom-hashing every attribute's value set into a bit-matrix
//! (Section 4.1 of the tIND paper recaps the idea). Applied to the *latest*
//! snapshot this is the paper's static baseline: the INDs it reports hold
//! at one point in time only, which §5.2 shows to be spurious 77% of the
//! time.

use std::sync::Arc;

use tind_bloom::{BitVec, BloomMatrix, BloomMatrixBuilder};
use tind_model::{AttrId, Dataset, Timestamp};

/// A Bloom-matrix index over one snapshot of a dataset.
#[derive(Debug)]
pub struct ManyIndex {
    dataset: Arc<Dataset>,
    timestamp: Timestamp,
    matrix: BloomMatrix,
}

impl ManyIndex {
    /// Builds the index on the snapshot at `t`.
    pub fn build(dataset: Arc<Dataset>, t: Timestamp, m: u32, k_hashes: u32) -> Self {
        let _span = tind_obs::span("baseline.many.build");
        let snapshot = dataset.snapshot_at(t);
        let mut b = BloomMatrixBuilder::new(m, dataset.len(), k_hashes);
        for id in 0..dataset.len() {
            let values = snapshot.values(id as AttrId);
            if !values.is_empty() {
                b.insert_column(id, values);
            }
        }
        let matrix = b.build();
        ManyIndex { dataset, timestamp: t, matrix }
    }

    /// Builds the index on the latest snapshot (the paper's static
    /// baseline configuration).
    pub fn build_latest(dataset: Arc<Dataset>, m: u32, k_hashes: u32) -> Self {
        let t = dataset.timeline().last();
        Self::build(dataset, t, m, k_hashes)
    }

    /// The snapshot timestamp the index covers.
    pub fn timestamp(&self) -> Timestamp {
        self.timestamp
    }

    /// The indexed dataset.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.dataset
    }

    /// All attributes `A` with the static IND `Q[t] ⊆ A[t]`
    /// (Definition 3.1), validated exactly after Bloom pruning. Returns an
    /// empty result for a query that is empty at `t` (an empty left-hand
    /// side holds trivially everywhere and carries no signal).
    pub fn search(&self, query: AttrId) -> Vec<AttrId> {
        let _span = tind_obs::span("baseline.many.query");
        let snapshot = self.dataset.snapshot_at(self.timestamp);
        let qv = snapshot.values(query);
        if qv.is_empty() {
            return Vec::new();
        }
        let qf = self.matrix.query_filter(qv);
        let mut candidates = BitVec::ones(self.dataset.len());
        candidates.clear(query as usize);
        self.matrix.narrow_to_supersets(&qf, &mut candidates);
        candidates
            .iter_ones()
            .filter(|&c| tind_model::value::is_subset(qv, snapshot.values(c as AttrId)))
            .map(|c| c as AttrId)
            .collect()
    }

    /// All static INDs at the snapshot (non-reflexive, non-empty left-hand
    /// sides), sorted.
    pub fn all_pairs(&self) -> Vec<(AttrId, AttrId)> {
        let mut pairs = Vec::new();
        for q in 0..self.dataset.len() as AttrId {
            for rhs in self.search(q) {
                pairs.push((q, rhs));
            }
        }
        pairs.sort_unstable();
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tind_model::{DatasetBuilder, Timeline};

    fn dataset() -> Arc<Dataset> {
        let mut b = DatasetBuilder::new(Timeline::new(20));
        // "sub" is contained in "super" only until t = 10.
        b.add_attribute("sub", &[(0, vec!["a"]), (10, vec!["a", "z"])], 19);
        b.add_attribute("super", &[(0, vec!["a", "b"])], 19);
        b.add_attribute("gone", &[(0, vec!["a"])], 5);
        Arc::new(b.build())
    }

    #[test]
    fn search_reflects_the_chosen_snapshot() {
        let d = dataset();
        let early = ManyIndex::build(d.clone(), 5, 512, 2);
        assert_eq!(early.search(0), vec![1, 2], "at t=5 'sub' fits both");
        let late = ManyIndex::build_latest(d.clone(), 512, 2);
        assert_eq!(late.timestamp(), 19);
        assert_eq!(late.search(0), Vec::<AttrId>::new(), "z breaks containment at t=19");
    }

    #[test]
    fn empty_query_yields_nothing() {
        let d = dataset();
        let late = ManyIndex::build_latest(d.clone(), 512, 2);
        assert_eq!(late.search(2), Vec::<AttrId>::new(), "'gone' is empty at t=19");
    }

    #[test]
    fn all_pairs_excludes_reflexive_and_empty() {
        let d = dataset();
        let early = ManyIndex::build(d.clone(), 0, 512, 2);
        let pairs = early.all_pairs();
        // At t=0: sub={a} ⊆ super, sub ⊆ gone (equal sets both {a}),
        // gone ⊆ sub, gone ⊆ super.
        assert_eq!(pairs, vec![(0, 1), (0, 2), (2, 0), (2, 1)]);
        for (l, r) in pairs {
            assert_ne!(l, r);
        }
    }

    #[test]
    fn bloom_pruning_never_loses_a_static_ind() {
        let d = dataset();
        // Tiny filter: heavy collisions, but exact validation must recover.
        let idx = ManyIndex::build(d.clone(), 5, 4, 1);
        let snapshot = d.snapshot_at(5);
        for q in 0..d.len() as AttrId {
            let got = idx.search(q);
            let expected: Vec<AttrId> = (0..d.len() as AttrId)
                .filter(|&a| a != q && !snapshot.values(q).is_empty())
                .filter(|&a| snapshot.static_ind_holds(q, a))
                .collect();
            assert_eq!(got, expected, "query {q}");
        }
    }
}
