//! # tind-baseline
//!
//! The two baselines the paper evaluates against:
//!
//! * [`many`] — MANY-style **static** IND discovery on a single snapshot
//!   (Tschirschnitz et al.); the basis for the "static INDs on the latest
//!   snapshot" comparisons in §5.2/§5.5 and for Table 2's buckets.
//! * [`kmany`] — **k-MANY** (§5.1): the straightforward temporal adaptation
//!   of MANY that builds `k` Bloom matrices on randomly chosen snapshots.
//!   Because a single snapshot can only ever witness one timestamp's worth
//!   of violation, it can almost never prune within a realistic ε, and so
//!   must track violations for *every* attribute per query — the memory
//!   blow-up that makes it run out of memory at paper scale (Figure 7).
//!   The [`memory`] module's budget accountant reproduces that OOM
//!   behaviourally without exhausting the host machine.

pub mod kmany;
pub mod many;
pub mod memory;

pub use kmany::{KManyError, KManyIndex};
pub use many::ManyIndex;
pub use memory::{Charge, MemoryBudget};
