//! k-MANY: the straightforward temporal adaptation of MANY (§5.1).
//!
//! k Bloom matrices are built on randomly chosen snapshot timestamps (each
//! matrix indexes `A[[t-δ, t+δ]]` so that a detected non-containment is
//! genuine evidence under the query's δ). The structural weakness the paper
//! exploits as a baseline: a snapshot can only witness **one timestamp's
//! worth** of violation weight, so under any realistic ε the index almost
//! never prunes outright and must keep per-candidate violation state of
//! size |D| alive for every in-flight query — the memory blow-up of
//! Figure 7. Violation state is charged against a [`MemoryBudget`]; see
//! [`crate::memory`].

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tind_bloom::{BitVec, BloomMatrix, BloomMatrixBuilder};
use tind_core::search::{SearchOutcome, SearchStats};
use tind_core::{validate, TindParams};
use tind_model::{AttrId, Dataset, Timestamp};

use crate::memory::MemoryBudget;

/// Failure modes of a k-MANY query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KManyError {
    /// The per-query violation state exceeded the memory budget — the
    /// paper-observed OOM from 1.2 M attributes onwards.
    OutOfMemory {
        /// Bytes the query attempted to allocate.
        requested: usize,
        /// The budget's configured limit.
        limit: usize,
    },
}

impl std::fmt::Display for KManyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KManyError::OutOfMemory { requested, limit } => write!(
                f,
                "k-MANY out of memory: violation tracking needs {requested} bytes, budget {limit}"
            ),
        }
    }
}

impl std::error::Error for KManyError {}

/// Bytes of per-candidate violation state a k-MANY query must keep alive.
/// One f64 violation accumulator per attribute (the candidate bitmap is
/// negligible next to it and charged together).
pub const TRACKING_BYTES_PER_CANDIDATE: usize = std::mem::size_of::<f64>();

/// The k-MANY index: k snapshot Bloom matrices.
#[derive(Debug)]
pub struct KManyIndex {
    dataset: Arc<Dataset>,
    max_delta: u32,
    snapshots: Vec<(Timestamp, BloomMatrix)>,
}

impl KManyIndex {
    /// Builds k snapshot matrices at distinct random timestamps.
    pub fn build(
        dataset: Arc<Dataset>,
        k: usize,
        m: u32,
        k_hashes: u32,
        max_delta: u32,
        seed: u64,
    ) -> Self {
        let _span = tind_obs::span("baseline.kmany.build");
        let timeline = dataset.timeline();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut all: Vec<Timestamp> = timeline.iter().collect();
        all.shuffle(&mut rng);
        let mut chosen: Vec<Timestamp> = all.into_iter().take(k).collect();
        chosen.sort_unstable();

        let snapshots = chosen
            .into_iter()
            .map(|t| {
                let window = timeline.delta_window(t, max_delta);
                let mut b = BloomMatrixBuilder::new(m, dataset.len(), k_hashes);
                for (id, hist) in dataset.iter() {
                    let values = hist.values_in(window);
                    if !values.is_empty() {
                        b.insert_column(id as usize, &values);
                    }
                }
                (t, b.build())
            })
            .collect();
        KManyIndex { dataset, max_delta, snapshots }
    }

    /// The indexed snapshot timestamps.
    pub fn snapshot_timestamps(&self) -> Vec<Timestamp> {
        self.snapshots.iter().map(|&(t, _)| t).collect()
    }

    /// The indexed dataset.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.dataset
    }

    /// tIND search via snapshot pruning. Semantically equivalent to
    /// [`tind_core::TindIndex::search`] (no false negatives, exact
    /// validation at the end) but with the baseline's weak pruning and
    /// |D|-sized violation tracking.
    pub fn search(
        &self,
        query: AttrId,
        params: &TindParams,
        budget: &MemoryBudget,
    ) -> Result<SearchOutcome, KManyError> {
        let _span = tind_obs::span("baseline.kmany.query");
        let num_attrs = self.dataset.len();
        let tracking_bytes = num_attrs * TRACKING_BYTES_PER_CANDIDATE;
        let _charge = budget.try_charge(tracking_bytes).ok_or(KManyError::OutOfMemory {
            requested: tracking_bytes,
            limit: budget.limit_bytes(),
        })?;

        let q = self.dataset.attribute(query);
        let timeline = self.dataset.timeline();
        let mut stats = SearchStats { initial: num_attrs - 1, ..SearchStats::default() };

        let mut candidates = BitVec::ones(num_attrs);
        candidates.clear(query as usize);
        stats.after_required = stats.initial; // k-MANY has no required-values stage

        // The |D|-sized violation state — k-MANY's defining cost.
        let mut violations = vec![0.0f64; num_attrs];
        let slices_usable = params.delta <= self.max_delta;
        stats.slices_used = slices_usable;
        if slices_usable {
            let mut scratch = BitVec::zeros(num_attrs);
            for (t, matrix) in &self.snapshots {
                let qv = q.values_at(*t);
                if qv.is_empty() {
                    continue;
                }
                scratch.copy_from(&candidates);
                let qf = matrix.query_filter(qv);
                matrix.narrow_to_supersets(&qf, &mut scratch);
                let w = params.weights.weight(*t);
                let mut to_clear = Vec::new();
                for c in candidates.iter_ones() {
                    if scratch.get(c) {
                        continue;
                    }
                    violations[c] += w;
                    if params.exceeds_budget(violations[c]) {
                        to_clear.push(c);
                    }
                }
                for c in to_clear {
                    candidates.clear(c);
                }
            }
        }
        stats.after_slices = candidates.count_ones();
        stats.after_exact = stats.after_slices;

        let mut results = Vec::new();
        for c in candidates.iter_ones() {
            stats.validations_run += 1;
            if validate::validate(q, self.dataset.attribute(c as u32), params, timeline) {
                results.push(c as AttrId);
            }
        }
        stats.validated = results.len();
        Ok(SearchOutcome { results, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tind_core::search::brute_force_search;
    use tind_core::{IndexConfig, TindIndex};
    use tind_model::{DatasetBuilder, Timeline, WeightFn};

    fn dataset() -> Arc<Dataset> {
        let mut b = DatasetBuilder::new(Timeline::new(60));
        b.add_attribute("q", &[(0, vec!["a", "b"]), (30, vec!["a", "b", "c"])], 59);
        b.add_attribute("sup", &[(0, vec!["a", "b", "c", "d"])], 59);
        b.add_attribute("late", &[(0, vec!["a", "b"]), (35, vec!["a", "b", "c"])], 59);
        b.add_attribute("no", &[(0, vec!["x"])], 59);
        Arc::new(b.build())
    }

    #[test]
    fn kmany_matches_brute_force() {
        let d = dataset();
        let idx = KManyIndex::build(d.clone(), 8, 512, 2, 7, 42);
        let budget = MemoryBudget::unlimited();
        let core_idx = TindIndex::build(d.clone(), IndexConfig::default());
        for qid in 0..d.len() as AttrId {
            for p in [
                TindParams::strict(),
                TindParams::paper_default(),
                TindParams::weighted(6.0, 2, WeightFn::constant_one()),
            ] {
                let got = idx.search(qid, &p, &budget).expect("within budget").results;
                let expected = brute_force_search(&core_idx, d.attribute(qid), Some(qid), &p);
                assert_eq!(got, expected, "query {qid} {p:?}");
            }
        }
    }

    #[test]
    fn oom_when_budget_too_small() {
        let d = dataset();
        let idx = KManyIndex::build(d.clone(), 4, 256, 2, 7, 1);
        let budget = MemoryBudget::new(TRACKING_BYTES_PER_CANDIDATE * d.len() - 1);
        let err = idx.search(0, &TindParams::paper_default(), &budget).unwrap_err();
        assert!(matches!(err, KManyError::OutOfMemory { .. }));
        assert!(err.to_string().contains("out of memory"));
        // Budget fully released after the failed query.
        assert_eq!(budget.used_bytes(), 0);
    }

    #[test]
    fn snapshots_are_distinct_and_sorted() {
        let d = dataset();
        let idx = KManyIndex::build(d.clone(), 16, 128, 2, 3, 9);
        let ts = idx.snapshot_timestamps();
        assert_eq!(ts.len(), 16);
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn prunes_little_under_realistic_eps() {
        // The defining weakness: with ε = 3 and k = 8 single-timestamp
        // witnesses, nothing gets pruned outright; almost everything
        // reaches validation.
        let d = dataset();
        let idx = KManyIndex::build(d.clone(), 8, 512, 2, 7, 42);
        let out = idx
            .search(0, &TindParams::paper_default(), &MemoryBudget::unlimited())
            .expect("fits");
        assert!(
            out.stats.validations_run >= d.len() - 2,
            "k-MANY should barely prune: {} validations",
            out.stats.validations_run
        );
    }

    #[test]
    fn query_delta_above_max_skips_snapshots() {
        let d = dataset();
        let idx = KManyIndex::build(d.clone(), 8, 512, 2, 1, 7);
        let p = TindParams::weighted(0.0, 10, WeightFn::constant_one());
        let out = idx.search(0, &p, &MemoryBudget::unlimited()).expect("fits");
        assert!(!out.stats.slices_used);
        let core_idx = TindIndex::build(d.clone(), IndexConfig::default());
        assert_eq!(out.results, brute_force_search(&core_idx, d.attribute(0), Some(0), &p));
    }
}
