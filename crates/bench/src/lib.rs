//! Shared fixtures for the Criterion benchmarks.
//!
//! Each bench regenerates one of the paper's runtime figures at bench
//! scale; the full-size reproductions live in `tind-eval` (run them with
//! `tind experiment <id>`).

use std::sync::Arc;

use tind_datagen::{generate, GeneratorConfig};
use tind_model::{AttrId, Dataset};

/// Generates a bench-sized paper-shaped dataset.
pub fn bench_dataset(num_attributes: usize, seed: u64) -> Arc<Dataset> {
    let mut cfg = GeneratorConfig::paper_shaped(num_attributes, seed);
    cfg.timeline_days = 1000;
    cfg.mean_lifespan_days = 400.0;
    Arc::new(generate(&cfg).dataset)
}

/// Deterministic query sample.
pub fn bench_queries(num_attributes: usize, count: usize) -> Vec<AttrId> {
    // Evenly spread ids: deterministic without an RNG, covers sources,
    // derived and noise attributes alike.
    let step = (num_attributes / count.max(1)).max(1);
    (0..num_attributes).step_by(step).take(count).map(|i| i as AttrId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        let a = bench_dataset(80, 1);
        let b = bench_dataset(80, 1);
        assert_eq!(a.len(), b.len());
        let q = bench_queries(100, 10);
        assert_eq!(q.len(), 10);
        assert!(q.iter().all(|&i| i < 100));
    }
}
