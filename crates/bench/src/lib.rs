//! Shared fixtures for the Criterion benchmarks.
//!
//! Each bench regenerates one of the paper's runtime figures at bench
//! scale; the full-size reproductions live in `tind-eval` (run them with
//! `tind experiment <id>`).

use std::sync::Arc;

use tind_datagen::{generate, GeneratorConfig};
use tind_model::{AttrId, Dataset};

/// Generates a bench-sized paper-shaped dataset.
pub fn bench_dataset(num_attributes: usize, seed: u64) -> Arc<Dataset> {
    let mut cfg = GeneratorConfig::paper_shaped(num_attributes, seed);
    cfg.timeline_days = 1000;
    cfg.mean_lifespan_days = 400.0;
    Arc::new(generate(&cfg).dataset)
}

/// Deterministic query sample.
pub fn bench_queries(num_attributes: usize, count: usize) -> Vec<AttrId> {
    // Evenly spread ids: deterministic without an RNG, covers sources,
    // derived and noise attributes alike.
    let step = (num_attributes / count.max(1)).max(1);
    (0..num_attributes).step_by(step).take(count).map(|i| i as AttrId).collect()
}

/// Deterministic query batches for the batched-search benches and the
/// batch/per-query differential tests. Strided so batches overlap but are
/// not identical; duplicate ids within a batch are allowed (the batch API
/// must handle them).
pub fn bench_query_batches(
    num_attributes: usize,
    batch_size: usize,
    batches: usize,
) -> Vec<Vec<AttrId>> {
    assert!(num_attributes > 0, "need a non-empty dataset");
    (0..batches)
        .map(|b| {
            (0..batch_size).map(|i| ((b * 131 + i * 17) % num_attributes) as AttrId).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        let a = bench_dataset(80, 1);
        let b = bench_dataset(80, 1);
        assert_eq!(a.len(), b.len());
        let q = bench_queries(100, 10);
        assert_eq!(q.len(), 10);
        assert!(q.iter().all(|&i| i < 100));
    }

    #[test]
    fn query_batches_are_deterministic_and_in_range() {
        let a = bench_query_batches(100, 16, 3);
        let b = bench_query_batches(100, 16, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        for batch in &a {
            assert_eq!(batch.len(), 16);
            assert!(batch.iter().all(|&i| (i as usize) < 100));
        }
        assert_ne!(a[0], a[1], "batches should differ");
    }
}
