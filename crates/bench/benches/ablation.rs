//! Ablation: contribution of each Algorithm-1 pruning stage.
//!
//! DESIGN.md calls out the three-stage candidate pipeline (required values
//! vs `M_T`, time-slice violation tracking, exact Bloom-FP filtering) as
//! the core design choice; this bench measures query latency with each
//! stage disabled. Expected: disabling the required-values stage is
//! catastrophic (everything reaches validation); disabling slices hurts
//! moderately; disabling the exact filter hurts only when Bloom false
//! positives are common (small m).

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use tind_bench::{bench_dataset, bench_queries};
use tind_core::{IndexConfig, SearchOptions, TindIndex, TindParams};

fn bench_ablation(c: &mut Criterion) {
    let dataset = bench_dataset(1500, 21);
    let queries = bench_queries(dataset.len(), 20);
    let params = TindParams::paper_default();
    let index = TindIndex::build(dataset.clone(), IndexConfig::default());

    let cases: [(&str, SearchOptions); 5] = [
        ("full_pipeline", SearchOptions::default()),
        (
            "no_required_values",
            SearchOptions { use_required_values: false, ..SearchOptions::default() },
        ),
        ("no_time_slices", SearchOptions { use_time_slices: false, ..SearchOptions::default() }),
        ("no_exact_filter", SearchOptions { use_exact_filter: false, ..SearchOptions::default() }),
        (
            "validation_only",
            SearchOptions {
                use_required_values: false,
                use_time_slices: false,
                use_exact_filter: false,
            },
        ),
    ];

    let mut group = c.benchmark_group("ablation");
    group.measurement_time(Duration::from_secs(3)).sample_size(10);
    for (name, options) in cases {
        group.bench_function(name, |bench| {
            bench.iter(|| {
                for &q in &queries {
                    black_box(index.search_with_options(q, &params, &options).results.len());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
