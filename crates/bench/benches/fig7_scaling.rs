//! Figure 7 at bench scale: per-query latency of tIND search, reverse
//! search, and k-MANY for growing numbers of indexed attributes.
//!
//! Expected shape: search fastest, reverse ~2× slower, k-MANY an order of
//! magnitude slower; all grow slowly with |D|.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tind_baseline::{KManyIndex, MemoryBudget};
use tind_bench::{bench_dataset, bench_queries};
use tind_core::{IndexConfig, TindIndex, TindParams};

fn bench_scaling(c: &mut Criterion) {
    let params = TindParams::paper_default();
    let mut group = c.benchmark_group("fig7_scaling");
    group.measurement_time(Duration::from_secs(3)).sample_size(10);

    for n in [500usize, 1000, 2000] {
        let dataset = bench_dataset(n, 7);
        let queries = bench_queries(dataset.len(), 20);

        let fwd = TindIndex::build(dataset.clone(), IndexConfig::default());
        group.bench_with_input(BenchmarkId::new("search", n), &n, |bench, _| {
            bench.iter(|| {
                for &q in &queries {
                    black_box(fwd.search(q, &params).results.len());
                }
            })
        });

        let rev = TindIndex::build(dataset.clone(), IndexConfig::reverse_default());
        group.bench_with_input(BenchmarkId::new("reverse", n), &n, |bench, _| {
            bench.iter(|| {
                for &q in &queries {
                    black_box(rev.reverse_search(q, &params).results.len());
                }
            })
        });

        let kmany = KManyIndex::build(dataset.clone(), 16, 4096, 2, params.delta, 7);
        let budget = MemoryBudget::unlimited();
        group.bench_with_input(BenchmarkId::new("k-MANY", n), &n, |bench, _| {
            bench.iter(|| {
                for &q in &queries {
                    black_box(
                        kmany.search(q, &params, &budget).expect("unlimited budget").results.len(),
                    );
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
