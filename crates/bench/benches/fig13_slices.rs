//! Figures 13/14 at bench scale: runtime vs slice count k and selection
//! strategy, for forward and reverse search.
//!
//! Expected shape: forward search benefits from more slices; reverse
//! search peaks at k = 2.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tind_bench::{bench_dataset, bench_queries};
use tind_core::{IndexConfig, SliceConfig, SliceStrategy, TindIndex, TindParams};
use tind_model::WeightFn;

fn slice_config(k: usize, strategy: SliceStrategy, reverse: bool) -> SliceConfig {
    SliceConfig {
        k,
        strategy,
        sizing_eps: 3.0,
        sizing_weights: WeightFn::constant_one(),
        max_delta: 7,
        expanded_disjoint: reverse,
        start_stride: 4,
        attr_sample: 64,
    }
}

fn bench_slices(c: &mut Criterion) {
    let dataset = bench_dataset(1000, 13);
    let queries = bench_queries(dataset.len(), 20);
    let params = TindParams::paper_default();

    let mut group = c.benchmark_group("fig13_fig14_slices");
    group.measurement_time(Duration::from_secs(3)).sample_size(10);

    for (strategy, name) in
        [(SliceStrategy::Random, "random"), (SliceStrategy::WeightedRandom, "weighted")]
    {
        for k in [1usize, 4, 16] {
            let fwd = TindIndex::build(
                dataset.clone(),
                IndexConfig {
                    slices: slice_config(k, strategy, false),
                    ..IndexConfig::default()
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("search_{name}"), k),
                &k,
                |bench, _| {
                    bench.iter(|| {
                        for &q in &queries {
                            black_box(fwd.search(q, &params).results.len());
                        }
                    })
                },
            );
        }
    }

    for k in [1usize, 2, 8] {
        let rev = TindIndex::build(
            dataset.clone(),
            IndexConfig {
                m: 512,
                slices: slice_config(k, SliceStrategy::WeightedRandom, true),
                build_reverse: true,
                ..IndexConfig::default()
            },
        );
        group.bench_with_input(BenchmarkId::new("reverse_weighted", k), &k, |bench, _| {
            bench.iter(|| {
                for &q in &queries {
                    black_box(rev.reverse_search(q, &params).results.len());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_slices);
criterion_main!(benches);
