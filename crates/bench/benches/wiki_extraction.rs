//! Wiki-substrate benchmarks: wikitext table parsing and the end-to-end
//! extraction pipeline (the preprocessing effort §5.1 implies).

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tind_datagen::{generate, revisions::render_revisions, GeneratorConfig};
use tind_wiki::{extract_dataset, parse_tables, PipelineConfig};

fn render_page(rows: usize) -> String {
    let mut text = String::from("{| class=\"wikitable\"\n|+ Bench\n! Name !! Year !! Place\n");
    for i in 0..rows {
        text.push_str(&format!("|-\n| [[Entity {i}]] || {} || City {}\n", 1990 + i % 30, i % 50));
    }
    text.push_str("|}\n");
    text
}

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("wikitext_parse");
    group.measurement_time(Duration::from_secs(2)).sample_size(30);
    for rows in [10usize, 100, 1000] {
        let page = render_page(rows);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |bench, _| {
            bench.iter(|| black_box(parse_tables(black_box(&page)).len()))
        });
    }
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let generated = generate(&GeneratorConfig::small(200, 5));
    let revisions = render_revisions(&generated.dataset);
    let config = PipelineConfig::new(730);
    let mut group = c.benchmark_group("wiki_pipeline");
    group.measurement_time(Duration::from_secs(5)).sample_size(10);
    group.bench_function("extract_200_attributes", |bench| {
        bench.iter(|| {
            let (dataset, _) = extract_dataset(revisions.clone(), &config);
            black_box(dataset.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_parse, bench_pipeline);
criterion_main!(benches);
