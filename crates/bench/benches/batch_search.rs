//! Parallel index construction throughput and batched-search QPS.
//!
//! Three questions the tentpole kernels must answer with numbers:
//!
//! * does `TindIndex::build_with` scale with worker threads while staying
//!   bit-identical to the sequential build,
//! * does the blocked batch sweep of `M_T` beat per-query narrowing on
//!   the same filters, and
//! * does `search_batch` beat the equivalent per-query `search` loop?
//!
//! `TIND_BENCH_ATTRS` overrides the dataset size (default 1500) so the
//! offline smoke harness can run one iteration at a reduced scale.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tind_bench::{bench_dataset, bench_query_batches};
use tind_bloom::{BitVec, BloomFilter};
use tind_core::required::required_values;
use tind_core::{BatchOptions, BuildOptions, IndexConfig, TindIndex, TindParams};

fn num_attrs() -> usize {
    std::env::var("TIND_BENCH_ATTRS").ok().and_then(|v| v.parse().ok()).unwrap_or(1500)
}

fn bench_build_threads(c: &mut Criterion) {
    let dataset = bench_dataset(num_attrs(), 31);

    let mut group = c.benchmark_group("index_build_threads");
    group.measurement_time(Duration::from_secs(5)).sample_size(10);
    group.bench_function("sequential", |bench| {
        bench.iter(|| {
            black_box(TindIndex::build(dataset.clone(), IndexConfig::default()).bloom_bytes())
        })
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |bench, &t| {
            bench.iter(|| {
                let options = BuildOptions { threads: t, ..BuildOptions::default() };
                black_box(
                    TindIndex::build_with(dataset.clone(), IndexConfig::default(), &options)
                        .bloom_bytes(),
                )
            })
        });
    }
    group.finish();
}

/// Stage 1 in isolation: the blocked batch sweep of `M_T` vs. the
/// per-query narrowing loop, on identical query filters. This is where
/// the batch path's cache amortization lives — the later stages do the
/// same per-query work either way (they win through worker threads, not
/// through batching).
fn bench_stage1_narrow(c: &mut Criterion) {
    let dataset = bench_dataset(num_attrs(), 31);
    let index = TindIndex::build(dataset.clone(), IndexConfig::default());
    let params = TindParams::paper_default();
    let timeline = dataset.timeline();
    let queries = &bench_query_batches(dataset.len(), 64, 1)[0];
    let filters: Vec<BloomFilter> = queries
        .iter()
        .map(|&q| index.m_t().query_filter(&required_values(dataset.attribute(q), &params, timeline)))
        .collect();

    let mut group = c.benchmark_group("stage1_narrow");
    group.measurement_time(Duration::from_secs(5)).sample_size(20);
    group.bench_function("per_query", |bench| {
        bench.iter(|| {
            let mut ones = 0usize;
            for f in &filters {
                let mut cands = BitVec::ones(dataset.len());
                index.m_t().narrow_to_supersets(f, &mut cands);
                ones += cands.count_ones();
            }
            black_box(ones)
        })
    });
    group.bench_function("batched", |bench| {
        bench.iter(|| {
            let mut cands: Vec<BitVec> =
                filters.iter().map(|_| BitVec::ones(dataset.len())).collect();
            index.m_t().narrow_batch_to_supersets(&filters, &mut cands);
            black_box(cands.iter().map(BitVec::count_ones).sum::<usize>())
        })
    });
    group.finish();
}

fn bench_batch_qps(c: &mut Criterion) {
    let dataset = bench_dataset(num_attrs(), 31);
    let index = TindIndex::build(dataset.clone(), IndexConfig::default());
    let params = TindParams::paper_default();
    let batches = bench_query_batches(dataset.len(), 64, 4);

    let mut group = c.benchmark_group("batch_search");
    group.measurement_time(Duration::from_secs(5)).sample_size(10);
    group.bench_function("per_query_loop", |bench| {
        bench.iter(|| {
            let mut results = 0usize;
            for batch in &batches {
                for &q in batch {
                    results += index.search(q, &params).results.len();
                }
            }
            black_box(results)
        })
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |bench, &t| {
            let options = BatchOptions { threads: t, ..BatchOptions::default() };
            bench.iter(|| {
                let mut results = 0usize;
                for batch in &batches {
                    let out = index.search_batch_with(batch, &params, &options);
                    results += out
                        .outcomes
                        .iter()
                        .map(|o| {
                            o.as_ref().expect("no cancellation configured").results.len()
                        })
                        .sum::<usize>();
                }
                black_box(results)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build_threads, bench_stage1_narrow, bench_batch_qps);
criterion_main!(benches);
