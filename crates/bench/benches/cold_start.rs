//! Cold-start guard + `BENCH_coldstart.json` emission.
//!
//! Measures **open-to-first-query** latency and the resident index
//! footprint for the two ways a packed store can come up:
//!
//! * `heap` — legacy-style deep open: every shard is fully read, CRC- and
//!   digest-verified, and decoded into owned words (the pre-arena
//!   behavior, and still what `StoreBacking::Heap` does on arena shards).
//! * `mmap` — the arena zero-copy open: header CRC + bounds checks only,
//!   matrix words borrowed straight from the mapped file; pages fault in
//!   as the first query touches them.
//!
//! Three index sizes are swept (1×, 2×, 4× of `TIND_BENCH_ATTRS`,
//! default 1200) and the results are written as JSON to
//! `TIND_BENCH_COLDSTART_OUT` (default `BENCH_coldstart.json`). The
//! checked-in artifact records the ≥10× open-to-first-query improvement
//! at the largest size from an optimized run; the assertion is skipped
//! in unoptimized smoke runs, where constant factors drown the I/O.
//!
//! Run as a plain `harness = false` binary.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

use tind_bench::bench_dataset;
use tind_core::{
    open_store_with, pack_store, IndexConfig, OpenOptions, PackOptions, ShardFormat,
    StoreBacking, TindIndex, TindParams,
};
use tind_model::Dataset;
use std::sync::Arc;

fn base_attrs() -> usize {
    std::env::var("TIND_BENCH_ATTRS").ok().and_then(|v| v.parse().ok()).unwrap_or(1200)
}

/// One cold open followed by one query — the metric the issue names.
/// Returns (elapsed, resident index bytes after the query, results).
fn open_to_first_query(
    dir: &std::path::Path,
    dataset: &Arc<Dataset>,
    backing: StoreBacking,
    probe: u32,
    params: &TindParams,
) -> (Duration, usize, Vec<u32>) {
    let options = OpenOptions { backing, memory_budget: None };
    let started = Instant::now();
    let (index, report) = open_store_with(dir, dataset.clone(), &options).expect("open store");
    assert!(report.is_clean(), "bench store must be intact: {report:?}");
    let results = black_box(index.search(probe, params)).results;
    (started.elapsed(), index.bloom_bytes(), results)
}

/// Best-of-N to reject scheduler noise; the OS page cache is warm for
/// both sides (this benchmarks decode work, not disk spin-up).
fn best_of(
    n: usize,
    dir: &std::path::Path,
    dataset: &Arc<Dataset>,
    backing: StoreBacking,
    probe: u32,
    params: &TindParams,
) -> (Duration, usize, Vec<u32>) {
    let mut best = open_to_first_query(dir, dataset, backing, probe, params);
    for _ in 1..n {
        let run = open_to_first_query(dir, dataset, backing, probe, params);
        if run.0 < best.0 {
            best = (run.0, best.1, best.2.clone());
        }
    }
    best
}

fn main() {
    let base = base_attrs();
    let params = TindParams::paper_default();
    let tmp = std::env::temp_dir().join("tind-bench-coldstart");
    let _ = std::fs::remove_dir_all(&tmp);

    let mut rows = String::new();
    let mut last_speedup = 0.0f64;
    let mut largest_attrs = 0usize;

    for (i, scale) in [1usize, 2, 4].iter().enumerate() {
        let attrs = base * scale;
        largest_attrs = attrs;
        let dataset = bench_dataset(attrs, 37);
        let index = TindIndex::build(dataset.clone(), IndexConfig::default());
        let dir = tmp.join(format!("arena-{attrs}"));
        let packed = pack_store(
            &index,
            &dir,
            &PackOptions { format: ShardFormat::Arena, ..Default::default() },
        )
        .expect("pack arena store");
        let probe = (attrs as u32) / 2;

        let (heap_t, heap_resident, heap_results) =
            best_of(3, &dir, &dataset, StoreBacking::Heap, probe, &params);
        let (mmap_t, mmap_resident, mmap_results) =
            best_of(3, &dir, &dataset, StoreBacking::Mmap, probe, &params);
        assert_eq!(heap_results, mmap_results, "backings must answer identically");

        let speedup = heap_t.as_nanos().max(1) as f64 / mmap_t.as_nanos().max(1) as f64;
        last_speedup = speedup;
        println!(
            "cold_start: {attrs} attrs, {} shard(s), {} store bytes — heap {} ({} resident), \
             mmap {} ({} resident), speedup {speedup:.1}x",
            packed.shards,
            packed.bytes_written,
            tind_obs::fmt_duration_ns(heap_t.as_nanos() as u64),
            heap_resident,
            tind_obs::fmt_duration_ns(mmap_t.as_nanos() as u64),
            mmap_resident,
        );
        assert!(
            mmap_resident < heap_resident,
            "mapped matrix words must not count as resident ({mmap_resident} vs {heap_resident})"
        );

        let _ = write!(
            rows,
            "{}    {{\"attrs\": {attrs}, \"store_bytes\": {}, \"shards\": {}, \
             \"heap\": {{\"open_to_first_query_ns\": {}, \"resident_bytes\": {heap_resident}}}, \
             \"mmap\": {{\"open_to_first_query_ns\": {}, \"resident_bytes\": {mmap_resident}}}, \
             \"speedup\": {speedup:.2}}}",
            if i == 0 { "" } else { ",\n" },
            packed.bytes_written,
            packed.shards,
            heap_t.as_nanos(),
            mmap_t.as_nanos(),
        );
    }

    // The ≥10× acceptance bound is an optimized-build property at real
    // index sizes; the unoptimized reduced-scale smoke run only checks
    // the two paths agree (above) and that mmap is not slower.
    if cfg!(debug_assertions) || largest_attrs < 1000 {
        println!(
            "cold_start: speedup bound skipped (unoptimized or reduced scale; measured {last_speedup:.1}x)"
        );
    } else {
        assert!(
            last_speedup >= 10.0,
            "arena mmap open-to-first-query must be >=10x faster than heap decode at the \
             largest size (measured {last_speedup:.1}x)"
        );
    }

    let out = std::env::var("TIND_BENCH_COLDSTART_OUT")
        .unwrap_or_else(|_| "BENCH_coldstart.json".into());
    let optimized = !cfg!(debug_assertions);
    let json = format!(
        "{{\n  \"bench\": \"cold_start\",\n  \"base_attrs\": {base},\n  \"optimized\": {optimized},\n  \"sizes\": [\n{rows}\n  ]\n}}\n"
    );
    std::fs::write(&out, json).expect("write BENCH_coldstart.json");
    println!("cold_start: report written to {out}");
    let _ = std::fs::remove_dir_all(&tmp);
}
