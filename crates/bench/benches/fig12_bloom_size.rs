//! Figure 12 at bench scale: runtime vs Bloom filter size m.
//!
//! Expected shape: forward search gets faster with m, reverse search gets
//! slower.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tind_bench::{bench_dataset, bench_queries};
use tind_core::{IndexConfig, SliceConfig, TindIndex, TindParams};
use tind_model::WeightFn;

fn bench_bloom_size(c: &mut Criterion) {
    let dataset = bench_dataset(1000, 12);
    let queries = bench_queries(dataset.len(), 20);
    let params = TindParams::paper_default();

    let mut group = c.benchmark_group("fig12_bloom_size");
    group.measurement_time(Duration::from_secs(3)).sample_size(10);

    for m in [512u32, 2048, 8192] {
        let fwd = TindIndex::build(dataset.clone(), IndexConfig { m, ..IndexConfig::default() });
        group.bench_with_input(BenchmarkId::new("search", m), &m, |bench, _| {
            bench.iter(|| {
                for &q in &queries {
                    black_box(fwd.search(q, &params).results.len());
                }
            })
        });

        let rev = TindIndex::build(
            dataset.clone(),
            IndexConfig {
                m,
                slices: SliceConfig::reverse_default(3.0, WeightFn::constant_one(), 7),
                build_reverse: true,
                ..IndexConfig::default()
            },
        );
        group.bench_with_input(BenchmarkId::new("reverse", m), &m, |bench, _| {
            bench.iter(|| {
                for &q in &queries {
                    black_box(rev.reverse_search(q, &params).results.len());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bloom_size);
criterion_main!(benches);
