//! All-pairs discovery thread scaling (§4.2.2: parallelize across
//! queries) and incremental-index maintenance costs.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tind_bench::bench_dataset;
use tind_core::incremental::IncrementalIndex;
use tind_core::{discover_all_pairs, AllPairsOptions, IndexConfig, TindIndex, TindParams};

fn bench_allpairs_threads(c: &mut Criterion) {
    let dataset = bench_dataset(1500, 31);
    let index = TindIndex::build(dataset.clone(), IndexConfig::default());
    let params = TindParams::paper_default();

    let mut group = c.benchmark_group("allpairs_threads");
    group.measurement_time(Duration::from_secs(5)).sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |bench, &t| {
            bench.iter(|| {
                let out = discover_all_pairs(
                    &index,
                    &params,
                    &AllPairsOptions { threads: t, ..AllPairsOptions::default() },
                )
                .expect("no checkpointing configured, discovery cannot fail");
                black_box(out.pairs.len())
            })
        });
    }
    group.finish();
}

fn bench_incremental(c: &mut Criterion) {
    let dataset = bench_dataset(1500, 33);
    let params = TindParams::paper_default();

    let mut group = c.benchmark_group("incremental");
    group.measurement_time(Duration::from_secs(3)).sample_size(10);

    group.bench_function("full_rebuild", |bench| {
        bench.iter(|| {
            black_box(TindIndex::build(dataset.clone(), IndexConfig::default()).bloom_bytes())
        })
    });

    group.bench_function("upsert_and_search", |bench| {
        let mut inc = IncrementalIndex::build(dataset.clone(), IndexConfig::default());
        inc.set_compact_threshold(usize::MAX / 2);
        let red = inc.intern("bench-value");
        let mut i = 0u32;
        bench.iter(|| {
            i += 1;
            let mut hb = tind_model::HistoryBuilder::new(format!("bench-attr-{i}"));
            hb.push(0, vec![red]);
            inc.upsert(hb.finish(dataset.timeline().last()));
            black_box(inc.search("bench-attr-1", &params).expect("exists").results.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_allpairs_threads, bench_incremental);
criterion_main!(benches);
