//! Validation-kernel throughput (pairs/s): the numbers behind the
//! plan-based fast path.
//!
//! Three comparisons:
//!
//! * `validate_pairs` — legacy per-pair `validate` (hash-map window, weight
//!   recomputed per interval) vs a cold `QueryPlan` built per pair vs one
//!   plan per query reused across all candidates with a shared scratch.
//! * `weight_families` — plan-reuse throughput under constant, exponential
//!   and piecewise weights; the prefix-sum table makes all three O(1) per
//!   interval, so they should land within noise of each other.
//! * `early_exit` — tight vs generous ε budgets, exercising the
//!   prove-invalid and prove-valid exits; hit rates are printed once per
//!   configuration from the scratch counters.
//!
//! `TIND_BENCH_ATTRS` overrides the dataset size (default 1500) so the
//! offline smoke harness can run one iteration at a reduced scale.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tind_bench::bench_dataset;
use tind_core::validate;
use tind_core::{QueryPlan, TindParams, ValidationScratch};
use tind_model::WeightFn;

fn num_attrs() -> usize {
    std::env::var("TIND_BENCH_ATTRS").ok().and_then(|v| v.parse().ok()).unwrap_or(1500)
}

/// Every (query, candidate) pair the throughput benches sweep: a fixed
/// stripe of queries against the whole dataset.
const QUERY_STRIDE: usize = 100;

fn bench_validate_pairs(c: &mut Criterion) {
    let dataset = bench_dataset(num_attrs(), 31);
    let timeline = dataset.timeline();
    let params = TindParams::paper_default();
    let queries: Vec<u32> = (0..dataset.len() as u32).step_by(QUERY_STRIDE).collect();

    let mut group = c.benchmark_group("validate_pairs");
    group.measurement_time(Duration::from_secs(5)).sample_size(10);
    group.bench_function("legacy", |bench| {
        bench.iter(|| {
            let mut valid = 0usize;
            for &qid in &queries {
                let q = dataset.attribute(qid);
                for aid in 0..dataset.len() as u32 {
                    valid += usize::from(validate::validate(
                        q,
                        dataset.attribute(aid),
                        &params,
                        timeline,
                    ));
                }
            }
            black_box(valid)
        })
    });
    group.bench_function("plan_cold", |bench| {
        let mut scratch = ValidationScratch::new();
        bench.iter(|| {
            let mut valid = 0usize;
            for &qid in &queries {
                let q = dataset.attribute(qid);
                for aid in 0..dataset.len() as u32 {
                    // A fresh plan per pair: isolates the cost of the plan
                    // build from the per-candidate win of reusing it.
                    let plan = QueryPlan::new(q, &params, timeline);
                    valid += usize::from(plan.validate(dataset.attribute(aid), &mut scratch));
                }
            }
            black_box(valid)
        })
    });
    group.bench_function("plan_reuse", |bench| {
        let mut scratch = ValidationScratch::new();
        bench.iter(|| {
            let mut valid = 0usize;
            for &qid in &queries {
                let table = scratch.weight_table(&params.weights, timeline);
                let plan = QueryPlan::with_table(dataset.attribute(qid), &params, timeline, table);
                for aid in 0..dataset.len() as u32 {
                    valid += usize::from(plan.validate(dataset.attribute(aid), &mut scratch));
                }
            }
            black_box(valid)
        })
    });
    group.finish();
}

fn bench_weight_families(c: &mut Criterion) {
    let dataset = bench_dataset(num_attrs(), 31);
    let timeline = dataset.timeline();
    let queries: Vec<u32> = (0..dataset.len() as u32).step_by(QUERY_STRIDE).collect();
    let custom: Vec<f64> =
        (0..timeline.len()).map(|t| 0.25 + 1.5 * f64::from(t % 7) / 7.0).collect();
    let families = [
        ("constant", WeightFn::constant_one(), 5.0),
        ("exponential", WeightFn::exponential(0.995, timeline), 2.0),
        ("piecewise", WeightFn::piecewise(&custom), 5.0),
    ];

    let mut group = c.benchmark_group("weight_families");
    group.measurement_time(Duration::from_secs(5)).sample_size(10);
    for (name, weights, eps) in families {
        let params = TindParams::weighted(eps, 7, weights);
        group.bench_with_input(BenchmarkId::from_parameter(name), &params, |bench, params| {
            let mut scratch = ValidationScratch::new();
            bench.iter(|| {
                let mut valid = 0usize;
                for &qid in &queries {
                    let table = scratch.weight_table(&params.weights, timeline);
                    let plan =
                        QueryPlan::with_table(dataset.attribute(qid), params, timeline, table);
                    for aid in 0..dataset.len() as u32 {
                        valid += usize::from(plan.validate(dataset.attribute(aid), &mut scratch));
                    }
                }
                black_box(valid)
            })
        });
    }
    group.finish();
}

fn bench_early_exit(c: &mut Criterion) {
    let dataset = bench_dataset(num_attrs(), 31);
    let timeline = dataset.timeline();
    let queries: Vec<u32> = (0..dataset.len() as u32).step_by(QUERY_STRIDE).collect();
    // Tight budgets make prove-invalid hot; budgets near the total timeline
    // weight make prove-valid hot.
    let budgets = [("tight", 5.0), ("loose", 900.0)];

    let mut group = c.benchmark_group("early_exit");
    group.measurement_time(Duration::from_secs(5)).sample_size(10);
    for (name, eps) in budgets {
        let params = TindParams::weighted(eps, 7, WeightFn::constant_one());

        // Hit rates, measured once outside the timing loop.
        let mut probe = ValidationScratch::new();
        let before = probe.counters();
        for &qid in &queries {
            let table = probe.weight_table(&params.weights, timeline);
            let plan = QueryPlan::with_table(dataset.attribute(qid), &params, timeline, table);
            for aid in 0..dataset.len() as u32 {
                plan.validate(dataset.attribute(aid), &mut probe);
            }
        }
        let d = probe.counters().since(&before);
        eprintln!(
            "early_exit/{name}: {} validations, {:.1}% proved valid early, {:.1}% proved invalid early",
            d.validations,
            100.0 * d.proved_valid_early as f64 / d.validations as f64,
            100.0 * d.proved_invalid_early as f64 / d.validations as f64,
        );

        group.bench_with_input(BenchmarkId::from_parameter(name), &params, |bench, params| {
            let mut scratch = ValidationScratch::new();
            bench.iter(|| {
                let mut valid = 0usize;
                for &qid in &queries {
                    let table = scratch.weight_table(&params.weights, timeline);
                    let plan =
                        QueryPlan::with_table(dataset.attribute(qid), params, timeline, table);
                    for aid in 0..dataset.len() as u32 {
                        valid += usize::from(plan.validate(dataset.attribute(aid), &mut scratch));
                    }
                }
                black_box(valid)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_validate_pairs, bench_weight_families, bench_early_exit);
criterion_main!(benches);
