//! Observability overhead guard + `BENCH_obs.json` emission.
//!
//! Two jobs, run as a plain `harness = false` binary:
//!
//! 1. **Overhead bound.** The validate kernel is the hottest loop the obs
//!    layer touches, and `core::search` instruments it *per query* (one
//!    stage-4 span plus a handful of counter/histogram updates), never per
//!    candidate. This bench times the plan-reuse sweep bare and with
//!    exactly that instrumentation density, and asserts the enabled-obs
//!    sweep is within 2% of the bare one. The bare sweep is what the
//!    `obs-off` feature compiles the instrumented sweep down to (spans and
//!    metric handles become no-ops), so this is the enabled-vs-off bound
//!    from the issue, measured inside one binary.
//! 2. **Report artifact.** Runs a build → search → validate pipeline under
//!    `phase.*` spans and writes the resulting TINDRR report to
//!    `TIND_BENCH_OBS_OUT` (default `BENCH_obs.json`) — the checked-in
//!    sample of the run-report format at bench scale.
//!
//! `TIND_BENCH_ATTRS` overrides the dataset size (default 1500) so the
//! offline smoke harness can run at a reduced scale.

use std::hint::black_box;
use std::time::{Duration, Instant};

use tind_bench::{bench_dataset, bench_queries};
use tind_core::{IndexConfig, QueryPlan, TindIndex, TindParams, ValidationScratch};
use tind_model::Dataset;

fn num_attrs() -> usize {
    std::env::var("TIND_BENCH_ATTRS").ok().and_then(|v| v.parse().ok()).unwrap_or(1500)
}

/// Same query stripe as `validate_kernel.rs`.
const QUERY_STRIDE: usize = 100;

/// Minimum measured time per side and per trial; short sweeps are repeated
/// until they accumulate this much signal so sub-millisecond smoke runs
/// (TIND_BENCH_ATTRS=200) don't drown in timer noise.
const MIN_MEASURE: Duration = Duration::from_millis(40);

/// The bare plan-reuse sweep — the `obs-off` code path.
fn sweep_plain(dataset: &Dataset, queries: &[u32], params: &TindParams) -> usize {
    let timeline = dataset.timeline();
    let mut scratch = ValidationScratch::new();
    let mut valid = 0usize;
    for &qid in queries {
        let table = scratch.weight_table(&params.weights, timeline);
        let plan = QueryPlan::with_table(dataset.attribute(qid), params, timeline, table);
        for aid in 0..dataset.len() as u32 {
            valid += usize::from(plan.validate(dataset.attribute(aid), &mut scratch));
        }
    }
    valid
}

/// The same sweep at the instrumentation density `core::search` uses on
/// its hot path: one span and a few metric updates per *query*, nothing
/// per candidate.
fn sweep_instrumented(dataset: &Dataset, queries: &[u32], params: &TindParams) -> usize {
    let timeline = dataset.timeline();
    let candidates_hist = tind_obs::histogram("bench.candidates_validated");
    let validations = tind_obs::counter("bench.validations");
    let mut scratch = ValidationScratch::new();
    let mut valid = 0usize;
    for &qid in queries {
        let _span = tind_obs::span("bench.validate.query");
        let table = scratch.weight_table(&params.weights, timeline);
        let plan = QueryPlan::with_table(dataset.attribute(qid), params, timeline, table);
        for aid in 0..dataset.len() as u32 {
            valid += usize::from(plan.validate(dataset.attribute(aid), &mut scratch));
        }
        validations.add(dataset.len() as u64);
        candidates_hist.record(dataset.len() as u64);
    }
    valid
}

/// The same sweep with a *live* trace context — the request-tracing hot
/// path a forced-sample `/search` pays: one bounded-ring write per query
/// span on top of the span/metric instrumentation, no allocation. Ring
/// overflow degrades to a dropped-event count, so long sweeps stay O(1)
/// per record either way.
fn sweep_traced(dataset: &Dataset, queries: &[u32], params: &TindParams) -> usize {
    use tind_obs::trace;
    let timeline = dataset.timeline();
    let candidates_hist = tind_obs::histogram("bench.candidates_validated");
    let validations = tind_obs::counter("bench.validations");
    let root = trace::alloc_context();
    let mut scratch = ValidationScratch::new();
    let mut valid = 0usize;
    for &qid in queries {
        let _span = tind_obs::span("bench.validate.query");
        let _trace = trace::TraceSpan::start(Some(root), "bench.validate.query");
        let table = scratch.weight_table(&params.weights, timeline);
        let plan = QueryPlan::with_table(dataset.attribute(qid), params, timeline, table);
        for aid in 0..dataset.len() as u32 {
            valid += usize::from(plan.validate(dataset.attribute(aid), &mut scratch));
        }
        validations.add(dataset.len() as u64);
        candidates_hist.record(dataset.len() as u64);
    }
    valid
}

/// Mean time per sweep, repeating until at least [`MIN_MEASURE`] has been
/// accumulated.
fn measure(mut sweep: impl FnMut() -> usize) -> Duration {
    let mut iters = 0u32;
    let started = Instant::now();
    loop {
        black_box(sweep());
        iters += 1;
        let elapsed = started.elapsed();
        if elapsed >= MIN_MEASURE {
            return elapsed / iters;
        }
    }
}

fn main() {
    let attrs = num_attrs();
    let dataset = bench_dataset(attrs, 31);
    let params = TindParams::paper_default();
    let queries: Vec<u32> = (0..dataset.len() as u32).step_by(QUERY_STRIDE).collect();

    tind_obs::reset();
    let run_started = Instant::now();

    let build_phase = tind_obs::span("phase.index_build");
    let index = TindIndex::build(dataset.clone(), IndexConfig::default());
    drop(build_phase);
    {
        let _phase = tind_obs::span("phase.search");
        for qid in bench_queries(attrs, 16) {
            black_box(index.search(qid, &params));
        }
    }

    // Warm both sweeps once, then alternate trials and keep each side's
    // minimum — the standard way to reject scheduler noise when bounding
    // a small delta.
    let validate_phase = tind_obs::span("phase.validate");
    let expected = sweep_plain(&dataset, &queries, &params);
    assert_eq!(expected, sweep_instrumented(&dataset, &queries, &params), "sweeps must agree");
    assert_eq!(expected, sweep_traced(&dataset, &queries, &params), "traced sweep must agree");

    let (mut best_plain, mut best_obs, mut best_traced) =
        (Duration::MAX, Duration::MAX, Duration::MAX);
    for _ in 0..5 {
        best_plain = best_plain.min(measure(|| sweep_plain(&dataset, &queries, &params)));
        best_obs = best_obs.min(measure(|| sweep_instrumented(&dataset, &queries, &params)));
        best_traced = best_traced.min(measure(|| sweep_traced(&dataset, &queries, &params)));
    }
    drop(validate_phase);

    let plain_ns = best_plain.as_nanos().max(1) as f64;
    let overhead_pct = 100.0 * (best_obs.as_nanos() as f64 - plain_ns) / plain_ns;
    let traced_pct = 100.0 * (best_traced.as_nanos() as f64 - plain_ns) / plain_ns;
    println!(
        "obs_overhead: {attrs} attrs, {} queries/sweep — plain {}, instrumented {} ({overhead_pct:+.2}%), traced {} ({traced_pct:+.2}%)",
        queries.len(),
        tind_obs::fmt_duration_ns(best_plain.as_nanos() as u64),
        tind_obs::fmt_duration_ns(best_obs.as_nanos() as u64),
        tind_obs::fmt_duration_ns(best_traced.as_nanos() as u64),
    );
    // The 2% bound is an optimized-build property: without -O (the offline
    // shim harness smoke-runs this unoptimized at reduced scale) the
    // constant per-span cost is ~10x inflated, so only a loose sanity
    // bound is asserted there.
    let tolerance = if cfg!(debug_assertions) { 25.0 } else { 2.0 };
    assert!(
        overhead_pct < tolerance,
        "per-query span+metric instrumentation must stay under {tolerance}% of the validate \
         kernel (measured {overhead_pct:+.2}%)"
    );
    assert!(
        traced_pct < tolerance,
        "live request tracing must stay under {tolerance}% of the validate kernel \
         (measured {traced_pct:+.2}%)"
    );

    let out = std::env::var("TIND_BENCH_OBS_OUT").unwrap_or_else(|_| "BENCH_obs.json".into());
    let wall_ns = run_started.elapsed().as_nanos() as u64;
    let report = tind_obs::RunReport::collect(
        "bench_obs",
        &[format!("--attributes={attrs}")],
        wall_ns,
    );
    std::fs::write(&out, report.to_json()).expect("write BENCH_obs.json");
    println!("obs_overhead: report written to {out}");
}
