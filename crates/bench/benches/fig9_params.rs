//! Figure 9 at bench scale: query runtime for varying ε and δ.
//!
//! Expected shape: runtime grows ~linearly with ε; δ nearly flat until
//! very large settings.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tind_bench::{bench_dataset, bench_queries};
use tind_core::{IndexConfig, SliceConfig, TindIndex, TindParams};
use tind_model::WeightFn;

fn bench_params(c: &mut Criterion) {
    let dataset = bench_dataset(1000, 9);
    let queries = bench_queries(dataset.len(), 20);

    let mut group = c.benchmark_group("fig9_params");
    group.measurement_time(Duration::from_secs(3)).sample_size(10);

    for eps in [0.0f64, 3.0, 15.0, 39.0] {
        let index = TindIndex::build(
            dataset.clone(),
            IndexConfig {
                slices: SliceConfig::search_default(eps, WeightFn::constant_one(), 7),
                ..IndexConfig::default()
            },
        );
        let params = TindParams::weighted(eps, 7, WeightFn::constant_one());
        group.bench_with_input(BenchmarkId::new("eps", format!("{eps}")), &eps, |bench, _| {
            bench.iter(|| {
                for &q in &queries {
                    black_box(index.search(q, &params).results.len());
                }
            })
        });
    }

    for delta in [0u32, 7, 31, 365] {
        let index = TindIndex::build(
            dataset.clone(),
            IndexConfig {
                slices: SliceConfig::search_default(3.0, WeightFn::constant_one(), delta),
                ..IndexConfig::default()
            },
        );
        let params = TindParams::weighted(3.0, delta, WeightFn::constant_one());
        group.bench_with_input(BenchmarkId::new("delta", delta), &delta, |bench, _| {
            bench.iter(|| {
                for &q in &queries {
                    black_box(index.search(q, &params).results.len());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_params);
criterion_main!(benches);
