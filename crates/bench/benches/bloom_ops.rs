//! Micro-benchmarks of the Bloom substrate: bit-vector algebra, filter
//! construction, and matrix candidate queries (the inner loops of §4.1).

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tind_bloom::{BitVec, BloomFilter, BloomMatrixBuilder};

fn bench_bitvec(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitvec");
    group.measurement_time(Duration::from_secs(2)).sample_size(30);
    for bits in [4_096usize, 65_536, 1_048_576] {
        let a = BitVec::ones(bits);
        let mut b = BitVec::ones(bits);
        group.bench_with_input(BenchmarkId::new("and_assign", bits), &bits, |bench, _| {
            bench.iter(|| {
                b.and_assign(black_box(&a));
                black_box(b.count_ones())
            })
        });
    }
    group.finish();
}

fn bench_filter(c: &mut Criterion) {
    let mut group = c.benchmark_group("bloom_filter");
    group.measurement_time(Duration::from_secs(2)).sample_size(30);
    let values: Vec<u32> = (0..28).collect(); // paper's mean cardinality
    for m in [512u32, 4096] {
        group.bench_with_input(BenchmarkId::new("from_values", m), &m, |bench, &m| {
            bench.iter(|| BloomFilter::from_values(black_box(&values), m, 2))
        });
    }
    group.finish();
}

fn bench_matrix_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("bloom_matrix");
    group.measurement_time(Duration::from_secs(3)).sample_size(20);
    let cols = 50_000;
    let m = 4096;
    let mut builder = BloomMatrixBuilder::new(m, cols, 2);
    for col in 0..cols {
        let base = (col * 7) as u32;
        let values: Vec<u32> = (base..base + 28).collect();
        builder.insert_column(col, &values);
    }
    let matrix = builder.build();
    let query: Vec<u32> = (70..98).collect();
    let qf = matrix.query_filter(&query);

    group.bench_function("superset_query_50k_cols", |bench| {
        bench.iter(|| {
            let mut candidates = BitVec::ones(cols);
            matrix.narrow_to_supersets(black_box(&qf), &mut candidates);
            black_box(candidates.count_ones())
        })
    });
    group.bench_function("subset_query_50k_cols", |bench| {
        bench.iter(|| {
            let mut candidates = BitVec::ones(cols);
            matrix.narrow_to_subsets(black_box(&qf), &mut candidates);
            black_box(candidates.count_ones())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bitvec, bench_filter, bench_matrix_query);
criterion_main!(benches);
