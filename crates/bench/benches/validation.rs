//! Algorithm 2 (interval-partitioned validation) vs the naive
//! per-timestamp validator — the speedup that makes per-candidate
//! validation affordable (§4.3).

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use tind_core::validate::{naive_violation_weight, violation_weight};
use tind_core::TindParams;
use tind_model::{DatasetBuilder, Timeline};

fn fixture() -> (tind_model::Dataset, Timeline) {
    let tl = Timeline::new(6000); // paper-scale timeline
    let mut b = DatasetBuilder::new(tl);
    // ~15 versions each, overlapping value sets.
    let q_versions: Vec<(u32, Vec<String>)> = (0..15)
        .map(|i| (i * 380, (0..25 + i).map(|v| format!("v{v}")).collect()))
        .collect();
    let a_versions: Vec<(u32, Vec<String>)> = (0..15)
        .map(|i| (i * 380 + 5, (0..40 + i).map(|v| format!("v{v}")).collect()))
        .collect();
    b.add_attribute("q", &q_versions, 5999);
    b.add_attribute("a", &a_versions, 5999);
    (b.build(), tl)
}

fn bench_validation(c: &mut Criterion) {
    let (d, tl) = fixture();
    let q = d.attribute(0);
    let a = d.attribute(1);
    let params = TindParams::paper_default();

    let mut group = c.benchmark_group("validation");
    group.measurement_time(Duration::from_secs(3)).sample_size(20);
    group.bench_function("algorithm2", |bench| {
        bench.iter(|| black_box(violation_weight(q, a, &params, tl, false)))
    });
    group.bench_function("algorithm2_early_exit", |bench| {
        bench.iter(|| black_box(violation_weight(q, a, &params, tl, true)))
    });
    group.bench_function("naive_per_timestamp", |bench| {
        bench.iter(|| black_box(naive_violation_weight(q, a, &params, tl)))
    });
    group.finish();
}

criterion_group!(benches, bench_validation);
criterion_main!(benches);
