//! Typed serve errors: every failure a client can observe maps to one
//! stable `(status, code)` pair and a canonical JSON body. Nothing else
//! ever reaches the wire — the fault-injection suite asserts the daemon
//! answers hostile input with exactly these shapes, never a hang or a
//! torn response.

use tind_obs::Value;

/// A client-visible serve failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeError {
    /// HTTP status code.
    pub status: u16,
    /// Stable machine-readable code, independent of the message text.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
    /// Back-off hint for load-shedding responses, derived from queue
    /// depth (`retry_unit × depth`): deeper queue, longer hint.
    pub retry_after_ms: Option<u64>,
}

impl ServeError {
    fn new(status: u16, code: &'static str, message: impl Into<String>) -> ServeError {
        ServeError { status, code, message: message.into(), retry_after_ms: None }
    }

    /// 400 — unparsable JSON, unknown field, bad parameter, unknown
    /// attribute.
    pub fn bad_request(message: impl Into<String>) -> ServeError {
        Self::new(400, "bad_request", message)
    }

    /// 404 — no route for the path.
    pub fn not_found(path: &str) -> ServeError {
        Self::new(404, "not_found", format!("no route for '{path}'"))
    }

    /// 405 — route exists but not for this method.
    pub fn method_not_allowed(method: &str, path: &str) -> ServeError {
        Self::new(405, "method_not_allowed", format!("method {method} not allowed for '{path}'"))
    }

    /// 408 — the client fed the request slower than the read budget
    /// (slow-loris defense).
    pub fn request_timeout(budget_ms: u64) -> ServeError {
        Self::new(408, "request_timeout", format!("request not received within {budget_ms} ms"))
    }

    /// 413 — declared body exceeds the configured cap; rejected before
    /// the body is read.
    pub fn payload_too_large(got: usize, limit: usize) -> ServeError {
        Self::new(413, "payload_too_large", format!("body of {got} bytes exceeds limit {limit}"))
    }

    /// 431 — request head exceeds the configured cap.
    pub fn header_too_large(limit: usize) -> ServeError {
        Self::new(431, "header_too_large", format!("request head exceeds limit {limit} bytes"))
    }

    /// 429 — admission queue full; carries a depth-derived back-off hint.
    pub fn overloaded(retry_after_ms: u64) -> ServeError {
        ServeError {
            retry_after_ms: Some(retry_after_ms),
            ..Self::new(429, "overloaded", "admission queue full, request shed")
        }
    }

    /// 500 — the request panicked inside the worker; the panic was
    /// quarantined and the worker lives on.
    pub fn internal_panic() -> ServeError {
        Self::new(500, "internal_panic", "request panicked and was quarantined")
    }

    /// 503 — the index is still loading; liveness is up, readiness is not.
    pub fn loading() -> ServeError {
        ServeError {
            retry_after_ms: Some(500),
            ..Self::new(503, "loading", "index is loading, not ready for queries")
        }
    }

    /// 503 — the daemon is draining after SIGINT/SIGTERM.
    pub fn draining() -> ServeError {
        Self::new(503, "draining", "server is draining, not accepting new queries")
    }

    /// 503 — the query attribute's index columns live in a store shard
    /// that was quarantined at load; the daemon is serving degraded and
    /// cannot answer for this attribute until `tind store repair` (or a
    /// background re-verify) restores the shard. Queries outside the lost
    /// range answer normally.
    pub fn shard_unavailable(attr: &str, shard: usize) -> ServeError {
        ServeError {
            retry_after_ms: Some(1000),
            ..Self::new(
                503,
                "shard_unavailable",
                format!(
                    "attribute '{attr}' is covered by quarantined store shard {shard}; \
                     repair the store to restore it"
                ),
            )
        }
    }

    /// 503 — the memory budget cannot cover even an uncoalesced request.
    pub fn overloaded_memory(retry_after_ms: u64) -> ServeError {
        ServeError {
            retry_after_ms: Some(retry_after_ms),
            ..Self::new(503, "overloaded_memory", "memory budget exhausted, request shed")
        }
    }

    /// 504 — the per-request deadline expired before (or while) the
    /// query ran; the `CancelToken` latched `Deadline` as the reason.
    pub fn deadline_exceeded() -> ServeError {
        Self::new(504, "deadline_exceeded", "request deadline expired")
    }

    /// The canonical JSON body: `{"error":{...}}`.
    pub fn to_value(&self) -> Value {
        let mut inner = Value::obj([
            ("code", Value::str(self.code)),
            ("status", Value::num(f64::from(self.status))),
            ("message", Value::str(self.message.clone())),
        ]);
        if let Some(ms) = self.retry_after_ms {
            inner.set("retry_after_ms", Value::num(ms as f64));
        }
        Value::obj([("error", inner)])
    }
}

/// Reason phrase for the status line; only the statuses serve emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_bodies_carry_stable_codes() {
        let e = ServeError::overloaded(75);
        let body = e.to_value().to_json();
        assert!(body.contains("\"code\":\"overloaded\""));
        assert!(body.contains("\"status\":429"));
        assert!(body.contains("\"retry_after_ms\":75"));
    }

    #[test]
    fn non_shedding_errors_have_no_retry_hint() {
        let e = ServeError::deadline_exceeded();
        assert_eq!(e.retry_after_ms, None);
        assert!(!e.to_value().to_json().contains("retry_after_ms"));
    }

    #[test]
    fn shard_unavailable_names_the_shard_and_attribute() {
        let e = ServeError::shard_unavailable("prices", 3);
        assert_eq!(e.status, 503);
        let body = e.to_value().to_json();
        assert!(body.contains("\"code\":\"shard_unavailable\""));
        assert!(body.contains("shard 3"));
        assert!(body.contains("'prices'"));
        assert!(body.contains("retry_after_ms"));
    }

    #[test]
    fn every_emitted_status_has_a_reason_phrase() {
        for status in [200, 400, 404, 405, 408, 413, 429, 431, 500, 503, 504] {
            assert_ne!(reason_phrase(status), "Unknown", "status {status}");
        }
    }
}
