//! The serve pipeline: acceptor → reader pool → admission queue →
//! worker pool, with a drain watchdog alongside.
//!
//! ```text
//!   accept loop ──► conns queue ──► readers (parse + route)
//!                     (bounded)       │  healthz/metrics answered inline
//!                                     ▼
//!                                  jobs queue ──► workers (coalesce +
//!                                    (bounded)     execute + respond)
//! ```
//!
//! Every stage is fault-contained:
//!
//! * both queues are bounded; a full queue turns into an immediate typed
//!   429 with a depth-derived `retry_after_ms` (load shedding, not
//!   buffering until collapse);
//! * each admitted request gets a [`CancelToken`] carrying its deadline;
//!   expiry inside the engine latches `Deadline` and surfaces as a typed
//!   504 — a client never waits on a socket longer than its deadline
//!   plus one write;
//! * workers run requests under `catch_unwind`: a panicking query is
//!   quarantined into a typed 500 and the worker thread survives;
//! * a [`MemoryBudget`] degrades service smoothly — coalescing shrinks
//!   first, then whole requests shed with a typed 503;
//! * compatible concurrent searches coalesce into one `search_batch`
//!   wave (identical per-query results — batch equivalence is pinned by
//!   core tests), so a burst is served at batch throughput;
//! * shutdown (SIGINT/SIGTERM → the shutdown token) drains: the
//!   acceptor stops, queued requests finish or are deadline-cancelled,
//!   and past `drain_grace` the watchdog force-cancels in-flight waves
//!   with reason `Drain` and sheds the rest.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

use tind_core::{
    open_store_with, pack_store, verify_store, BatchOptions, BuildOptions, CancelReason,
    CancelToken, DatasetDelta, DeltaReport, IndexConfig, LoadReport, OpenOptions, PackOptions,
    PlanArtifacts, PlanSource, SearchOutcome, ShardFormat, ShardMask, SliceConfig, StoreBacking,
    TindIndex, TindParams,
};
use tind_model::hash::FastMap;
use tind_model::{AttrId, Charge, Dataset, MemoryBudget, Timeline, WeightFn};
use tind_obs::{trace, TraceContext, Value};

use crate::admission::Admission;
use crate::error::{reason_phrase, ServeError};
use crate::http::{self, HttpError, HttpLimits};
use crate::router::{self, ApiCall, ExplainSpec, QuerySpec, TraceFormat, TraceSpec};

/// Test-only fault injection: invoked with each call right before it
/// executes on a worker (inside the panic quarantine, so a panicking
/// hook exercises containment end to end).
pub type ServeFaultHook = Arc<dyn Fn(&ApiCall) + Send + Sync>;

/// Invoked once with a shared handle to the engine right after the
/// loader completes — the handle is how embedders drive live-update
/// APIs ([`Engine::apply_delta`]) against a running server.
pub type EngineHook = Arc<dyn Fn(Arc<Engine>) + Send + Sync>;

/// Results rendered per response when the request doesn't say.
const DEFAULT_LIMIT: usize = 20;

/// Tuning and robustness knobs for [`Server`].
#[derive(Clone)]
pub struct ServeConfig {
    /// Executor threads; `0` picks `min(available_parallelism, 8)`.
    pub workers: usize,
    /// Parse/route threads; `0` picks 2.
    pub readers: usize,
    /// Accepted-connection queue bound.
    pub conn_capacity: usize,
    /// Parsed-request admission queue bound.
    pub queue_capacity: usize,
    /// Deadline for requests that don't send `timeout_ms`.
    pub default_deadline: Duration,
    /// Hard cap on client-requested deadlines.
    pub max_deadline: Duration,
    /// Budget for receiving one complete request (slow-loris bound).
    pub read_timeout: Duration,
    /// Socket write timeout for responses.
    pub write_timeout: Duration,
    /// Request head cap in bytes.
    pub max_header_bytes: usize,
    /// Declared-body cap in bytes.
    pub max_body_bytes: usize,
    /// Max compatible searches coalesced into one batch wave.
    pub coalesce: usize,
    /// Optional memory accountant: coalescing shrinks, then requests
    /// shed, when charges stop fitting.
    pub memory_budget: Option<MemoryBudget>,
    /// How long a drain may run before in-flight work is force-cancelled
    /// with reason `Drain`.
    pub drain_grace: Duration,
    /// Unit for `retry_after_ms` hints: `retry_unit × (depth + 1)`.
    pub retry_unit: Duration,
    /// How often a **degraded** engine re-verifies its store, looking to
    /// promote back to `serving` once the quarantined shards are repaired.
    pub reverify_interval: Duration,
    /// Result-cache capacity in entries; `0` (the default) disables
    /// caching. Entries are keyed by direction, resolved parameters, and
    /// query attribute; [`Engine::apply_delta`] invalidates exactly the
    /// entries the delta affected.
    pub cache: usize,
    /// Plan-cache capacity in entries; `0` (the default) disables it.
    /// Entries are keyed by query attribute and resolved (ε, δ, w), hold
    /// the query's reusable [`PlanArtifacts`], and are evicted LRU. The
    /// same delta-invalidation hook that scrubs the result cache scrubs
    /// plans whose query a delta touched.
    pub plan_cache: usize,
    /// How store shards are backed when the engine loads from a store:
    /// `Auto` (the default) memory-maps arena shards and heap-decodes
    /// legacy ones; `Windowed` serves beyond-RAM indices through
    /// budget-charged pread windows.
    pub store_backing: StoreBacking,
    /// Tail-sample capacity for `GET /debug/trace`: the K slowest and the
    /// K most recent completed request traces are retained (`0` disables
    /// retention; `X-Tind-Trace: 1` force-samples regardless and returns
    /// the trace id, but the trace is only fetchable while retained).
    pub trace_last: usize,
    /// Period between metrics-history snapshots (`GET /metrics/history`);
    /// zero disables ticking.
    pub metrics_tick: Duration,
    /// Test-only fault injection hook.
    pub fault_hook: Option<ServeFaultHook>,
    /// Handed a shared engine handle once loading completes (live
    /// updates; see [`EngineHook`]).
    pub engine_hook: Option<EngineHook>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            readers: 0,
            conn_capacity: 128,
            queue_capacity: 64,
            default_deadline: Duration::from_secs(2),
            max_deadline: Duration::from_secs(30),
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            max_header_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
            coalesce: 16,
            memory_budget: None,
            drain_grace: Duration::from_secs(5),
            retry_unit: Duration::from_millis(25),
            reverify_interval: Duration::from_millis(500),
            cache: 0,
            plan_cache: 0,
            store_backing: StoreBacking::Auto,
            trace_last: 4,
            metrics_tick: Duration::from_secs(1),
            fault_hook: None,
            engine_hook: None,
        }
    }
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("workers", &self.workers)
            .field("readers", &self.readers)
            .field("conn_capacity", &self.conn_capacity)
            .field("queue_capacity", &self.queue_capacity)
            .field("default_deadline", &self.default_deadline)
            .field("max_deadline", &self.max_deadline)
            .field("read_timeout", &self.read_timeout)
            .field("write_timeout", &self.write_timeout)
            .field("max_header_bytes", &self.max_header_bytes)
            .field("max_body_bytes", &self.max_body_bytes)
            .field("coalesce", &self.coalesce)
            .field("memory_budget", &self.memory_budget)
            .field("drain_grace", &self.drain_grace)
            .field("retry_unit", &self.retry_unit)
            .field("reverify_interval", &self.reverify_interval)
            .field("cache", &self.cache)
            .field("plan_cache", &self.plan_cache)
            .field("store_backing", &self.store_backing)
            .field("trace_last", &self.trace_last)
            .field("metrics_tick", &self.metrics_tick)
            .field("fault_hook", &self.fault_hook.is_some())
            .field("engine_hook", &self.engine_hook.is_some())
            .finish()
    }
}

/// The live query state: the dataset and both index directions always
/// swap together, so a wave pinning one snapshot never resolves names
/// against a dataset newer (or older) than the index it searches.
#[derive(Clone)]
struct HotState {
    dataset: Arc<Dataset>,
    forward: Arc<TindIndex>,
    reverse: Arc<TindIndex>,
}

/// The hot query state: one dataset, both index directions, and the
/// default parameters the indices were sized for.
///
/// The configs mirror the one-shot CLI exactly (`tind search` /
/// `tind reverse-search` with the same ε/δ/decay), which is what makes
/// serve responses differentially comparable to one-shot runs.
///
/// The state lives behind one lock because it swaps as a unit: a
/// degraded engine promotes a clean forward index once its store is
/// repaired, and [`Engine::apply_delta`] folds a dataset delta into both
/// directions without a cold rebuild. Readers clone the `Arc`s, so a
/// swap never stalls an in-flight wave.
pub struct Engine {
    state: RwLock<HotState>,
    /// Present iff `forward` was loaded from a sharded store; enables
    /// [`Engine::try_promote`] and the store flip in
    /// [`Engine::apply_delta`].
    store_dir: Option<PathBuf>,
    /// Shard count the store was packed with, preserved across flips.
    store_shards: usize,
    /// Shard payload format the store was loaded with; delta flips repack
    /// in the same format so a migration survives live updates.
    store_format: ShardFormat,
    /// Backing/budget the store was opened with, reused verbatim by
    /// [`Engine::try_promote`]'s reopen.
    open_options: OpenOptions,
    default_eps: f64,
    default_delta: u32,
    default_decay: Option<f64>,
    cache: ResultCache,
    plans: Arc<PlanCache>,
    /// Accountant the engine charges its resident index bytes to, plus
    /// the RAII charges currently held. During a delta swap only the
    /// *increment* over the old generation is charged while the two
    /// generations briefly coexist — the overlap is counted once, never
    /// twice (pinned by `delta_swap_never_double_counts_index_bytes`).
    budget: Option<MemoryBudget>,
    index_charge: Mutex<IndexCharge>,
}

/// The engine's held index-byte charges and the byte total they aim for
/// (the two differ only after an overcommit, when the budget could not
/// cover the target and the engine proceeds partially uncharged).
#[derive(Default)]
struct IndexCharge {
    charges: Vec<Charge>,
    bytes: usize,
}

impl Engine {
    /// Builds both directions' indices for `dataset`, sized for the
    /// given default parameters. `build_threads: 0` uses every core.
    pub fn build(
        dataset: Arc<Dataset>,
        eps: f64,
        delta: u32,
        decay: Option<f64>,
        build_threads: usize,
    ) -> Engine {
        let weights = match decay {
            Some(a) => WeightFn::exponential(a, dataset.timeline()),
            None => WeightFn::constant_one(),
        };
        let options = BuildOptions { threads: build_threads, ..BuildOptions::default() };
        let forward_config = IndexConfig {
            slices: SliceConfig::search_default(eps, weights.clone(), delta),
            ..IndexConfig::default()
        };
        let reverse_config = IndexConfig {
            slices: SliceConfig::reverse_default(eps, weights.clone(), delta),
            ..IndexConfig::reverse_default()
        };
        let forward = TindIndex::build_with(dataset.clone(), forward_config, &options);
        let reverse = TindIndex::build_with(dataset.clone(), reverse_config, &options);
        Engine {
            state: RwLock::new(HotState {
                dataset,
                forward: Arc::new(forward),
                reverse: Arc::new(reverse),
            }),
            store_dir: None,
            store_shards: 0,
            store_format: ShardFormat::default(),
            open_options: OpenOptions::default(),
            default_eps: eps,
            default_delta: delta,
            default_decay: decay,
            cache: ResultCache::new(0),
            plans: Arc::new(PlanCache::new(0)),
            budget: None,
            index_charge: Mutex::new(IndexCharge::default()),
        }
    }

    /// Enables the result cache with room for `capacity` outcomes
    /// (`0` keeps it disabled). Entries are invalidated delta-aware by
    /// [`Engine::apply_delta`] and cleared on store promotion.
    #[must_use]
    pub fn with_cache(mut self, capacity: usize) -> Engine {
        self.cache = ResultCache::new(capacity);
        self
    }

    /// Enables the plan cache with room for `capacity` entries (`0`
    /// keeps it disabled). Entries are evicted LRU, invalidated
    /// delta-aware by [`Engine::apply_delta`], and cleared on store
    /// promotion.
    #[must_use]
    pub fn with_plan_cache(mut self, capacity: usize) -> Engine {
        self.plans = Arc::new(PlanCache::new(capacity));
        self
    }

    /// Charges the engine's resident index bytes (both directions)
    /// against `budget` and keeps the accountant for delta swaps, which
    /// then charge only the increment over the old generation. A budget
    /// too small for the index logs an overcommit and serves uncharged
    /// rather than refusing to start.
    #[must_use]
    pub fn with_memory_accounting(self, budget: Option<MemoryBudget>) -> Engine {
        let mut engine = self;
        engine.budget = budget;
        if let Some(b) = &engine.budget {
            let snap = engine.snapshot();
            let bytes = snap.forward.bloom_bytes() + snap.reverse.bloom_bytes();
            let mut held = lock(&engine.index_charge);
            held.bytes = bytes;
            match b.try_charge(bytes) {
                Some(c) => held.charges.push(c),
                None => tind_obs::counter("serve.index_overcommits").incr(),
            }
        }
        engine
    }

    /// Loads the forward index from the sharded store at `dir` — accepting
    /// a **degraded** load with quarantined shards — and builds the
    /// reverse index in memory. The returned [`LoadReport`] says whether
    /// the engine starts degraded; the server then re-verifies the store
    /// periodically and promotes itself once repaired.
    pub fn from_store(
        dir: &Path,
        dataset: Arc<Dataset>,
        eps: f64,
        delta: u32,
        decay: Option<f64>,
        build_threads: usize,
    ) -> Result<(Engine, LoadReport), String> {
        Self::from_store_with(dir, dataset, eps, delta, decay, build_threads, &OpenOptions::default())
    }

    /// [`Engine::from_store`] with explicit [`OpenOptions`]: choose the
    /// shard backing (heap decode, zero-copy mmap, or budget-charged
    /// pread windows) and the budget windowed sections are charged to.
    /// The loaded format and options are remembered — delta flips repack
    /// in the same shard format, and [`Engine::try_promote`] reopens with
    /// the same backing.
    #[allow(clippy::too_many_arguments)]
    pub fn from_store_with(
        dir: &Path,
        dataset: Arc<Dataset>,
        eps: f64,
        delta: u32,
        decay: Option<f64>,
        build_threads: usize,
        open: &OpenOptions,
    ) -> Result<(Engine, LoadReport), String> {
        let (forward, report) = open_store_with(dir, dataset.clone(), open)
            .map_err(|e| format!("store at {}: {e}", dir.display()))?;
        let weights = match decay {
            Some(a) => WeightFn::exponential(a, dataset.timeline()),
            None => WeightFn::constant_one(),
        };
        let options = BuildOptions { threads: build_threads, ..BuildOptions::default() };
        let reverse_config = IndexConfig {
            slices: SliceConfig::reverse_default(eps, weights, delta),
            ..IndexConfig::reverse_default()
        };
        let reverse = TindIndex::build_with(dataset.clone(), reverse_config, &options);
        let engine = Engine {
            state: RwLock::new(HotState {
                dataset,
                forward: Arc::new(forward),
                reverse: Arc::new(reverse),
            }),
            store_dir: Some(dir.to_path_buf()),
            store_shards: report.shards_total,
            store_format: report.format,
            open_options: open.clone(),
            default_eps: eps,
            default_delta: delta,
            default_decay: decay,
            cache: ResultCache::new(0),
            plans: Arc::new(PlanCache::new(0)),
            budget: None,
            index_charge: Mutex::new(IndexCharge::default()),
        };
        Ok((engine, report))
    }

    /// One coherent snapshot of the live state.
    fn snapshot(&self) -> HotState {
        lock_read(&self.state).clone()
    }

    /// The dataset this engine currently serves (a cheap `Arc` clone;
    /// [`Engine::apply_delta`] may swap the underlying dataset, but a
    /// held clone stays consistent for the wave using it).
    pub fn dataset(&self) -> Arc<Dataset> {
        lock_read(&self.state).dataset.clone()
    }

    /// The forward-direction index (a cheap `Arc` clone; promotion or a
    /// delta may swap the underlying index, but a held clone stays
    /// consistent for the wave using it).
    pub fn forward(&self) -> Arc<TindIndex> {
        lock_read(&self.state).forward.clone()
    }

    /// The reverse-direction index.
    pub fn reverse(&self) -> Arc<TindIndex> {
        lock_read(&self.state).reverse.clone()
    }

    /// Whether the forward index currently has quarantined shards.
    pub fn is_degraded(&self) -> bool {
        self.forward().shard_mask().is_some()
    }

    /// `(live shard fraction, quarantined shard ids)` while degraded.
    pub fn degraded_status(&self) -> Option<(f64, Vec<usize>)> {
        let forward = self.forward();
        let mask = forward.shard_mask()?;
        Some((
            mask.live_fraction(),
            mask.quarantined().iter().map(|q| q.shard).collect(),
        ))
    }

    /// Re-opens the store and swaps in the freshly loaded forward index if
    /// — and only if — every shard now verifies. Returns `true` on
    /// promotion. A no-op for engines not loaded from a store or already
    /// clean.
    pub fn try_promote(&self) -> bool {
        let Some(dir) = &self.store_dir else { return false };
        if !self.is_degraded() {
            return false;
        }
        // Probe with the read-only verifier first: `open_store` runs the
        // recovery sweep, and sweeping every poll tick would race an
        // out-of-band `tind store repair` — deleting its in-flight temp
        // file out from under the rename. Only a store that already
        // verifies clean is worth (and safe for) a full reopen.
        match verify_store(dir) {
            Ok(report) if report.faults.is_empty() => {}
            _ => return false,
        }
        match open_store_with(dir, self.dataset(), &self.open_options) {
            Ok((index, report)) if report.is_clean() => {
                lock_write(&self.state).forward = Arc::new(index);
                // Results cached while degraded would be wrong anyway
                // (the cache is bypassed then), but entries filled before
                // the store went bad may describe a different generation.
                self.cache.clear();
                self.plans.clear();
                // Resident bytes can change shape across the swap (a
                // quarantined shard's zero-fill gives way to real words,
                // or the backing changes residency) — resettle the charge
                // at the fresh index's footprint.
                self.settle_index_charge();
                true
            }
            _ => false,
        }
    }

    /// Re-points the engine's held index charge at the *current*
    /// snapshot's resident bytes: drops the old charges, then charges the
    /// new total. Overcommits (budget too small, or a racing request
    /// claimed the freed bytes first) are logged and served uncharged.
    fn settle_index_charge(&self) {
        let Some(budget) = &self.budget else { return };
        let snap = self.snapshot();
        let bytes = snap.forward.bloom_bytes() + snap.reverse.bloom_bytes();
        let mut held = lock(&self.index_charge);
        held.charges.clear();
        held.bytes = bytes;
        match budget.try_charge(bytes) {
            Some(c) => held.charges.push(c),
            None => tind_obs::counter("serve.index_overcommits").incr(),
        }
    }

    /// Folds a page-granular dataset delta into the live engine without
    /// a cold rebuild: both index directions are updated semi-naively
    /// via [`tind_core::DatasetDelta`], the sharded store (when the
    /// engine is store-backed) is flipped to a new generation through
    /// the same atomic-commit-and-sweep machinery that quarantine→repair
    /// rides, and only the result-cache entries the delta could have
    /// affected are invalidated.
    ///
    /// In-flight waves keep answering from the pre-delta snapshot they
    /// pinned; waves admitted after the swap see the merged dataset.
    ///
    /// # Errors
    /// Refused (with a repair hint) while the store has quarantined
    /// shards — updating around the hole would diverge from the manifest
    /// digests — and when `new_dataset` is not a valid successor of the
    /// served dataset. A refused delta leaves engine, store, and cache
    /// untouched.
    pub fn apply_delta(&self, new_dataset: Arc<Dataset>) -> Result<EngineDeltaReport, String> {
        let _span = tind_obs::span("serve.apply_delta");
        let snap = self.snapshot();
        if let Some(mask) = snap.forward.shard_mask() {
            let shards: Vec<usize> = mask.quarantined().iter().map(|q| q.shard).collect();
            return Err(format!(
                "delta rejected: store shard(s) {shards:?} are quarantined; run \
                 `tind store repair` before applying updates"
            ));
        }
        let delta = DatasetDelta::diff(&snap.dataset, new_dataset.clone())
            .map_err(|e| format!("delta rejected: {e}"))?;
        let mut forward = (*snap.forward).clone();
        let index = forward.apply_delta(&delta).map_err(|e| format!("delta rejected: {e}"))?;
        let mut reverse = (*snap.reverse).clone();
        reverse.apply_delta(&delta).map_err(|e| format!("delta rejected: {e}"))?;

        // While old and new generations coexist, charge only the
        // *increment* over the already-charged old footprint — the
        // overlap is counted once, never twice. The held old charge plus
        // this increment sums to exactly the new generation's bytes, so
        // the post-swap settle is a push, not a release-and-recharge.
        let old_bytes = lock(&self.index_charge).bytes;
        let new_bytes = forward.bloom_bytes() + reverse.bloom_bytes();
        let mut overlap = None;
        if let Some(budget) = &self.budget {
            let increment = new_bytes.saturating_sub(old_bytes);
            if increment > 0 {
                match budget.try_charge(increment) {
                    Some(c) => overlap = Some(c),
                    None => tind_obs::counter("serve.index_overcommits").incr(),
                }
            }
        }

        // Persist before swapping: pack_store commits the new generation
        // atomically (manifest rename is the commit point), so a crash
        // leaves either the old store or the new one — and a pack error
        // leaves the engine serving the old snapshot untouched. The flip
        // repacks in the same shard format the store was loaded with, so
        // an arena migration survives live updates.
        let mut store_generation = None;
        if let Some(dir) = &self.store_dir {
            let packed = pack_store(
                &forward,
                dir,
                &PackOptions {
                    shards: self.store_shards,
                    format: self.store_format,
                    ..PackOptions::default()
                },
            )
            .map_err(|e| format!("store flip at {} failed: {e}", dir.display()))?;
            store_generation = Some(packed.generation);
        }

        let (cache_evicted, cache_retained) = self.cache.invalidate(&new_dataset, delta.touched());
        let plans_evicted = self.plans.invalidate(&new_dataset, delta.touched());
        {
            let mut state = lock_write(&self.state);
            state.dataset = new_dataset;
            state.forward = Arc::new(forward);
            state.reverse = Arc::new(reverse);
        }
        if self.budget.is_some() {
            let mut held = lock(&self.index_charge);
            if new_bytes >= old_bytes {
                if let Some(c) = overlap {
                    held.charges.push(c);
                }
                held.bytes = new_bytes;
            } else {
                // The new generation shrank: release everything and
                // charge the smaller footprint fresh.
                drop(held);
                drop(overlap);
                self.settle_index_charge();
            }
        }
        tind_obs::counter("serve.deltas_applied").incr();
        Ok(EngineDeltaReport { index, cache_evicted, cache_retained, plans_evicted, store_generation })
    }

    /// Resolve request parameters against the defaults. The key
    /// identifies the resolved parameter set for coalescing: only
    /// requests with bit-identical parameters share a batch wave.
    fn resolve_params(
        &self,
        eps: Option<f64>,
        delta: Option<u32>,
        decay: Option<f64>,
    ) -> (TindParams, ParamsKey) {
        let eps = eps.unwrap_or(self.default_eps);
        let delta = delta.unwrap_or(self.default_delta);
        let decay = decay.or(self.default_decay);
        let weights = match decay {
            Some(a) => WeightFn::exponential(a, self.dataset().timeline()),
            None => WeightFn::constant_one(),
        };
        (TindParams::weighted(eps, delta, weights), (eps.to_bits(), delta, decay.map(f64::to_bits)))
    }

    /// Resolve an attribute by name or numeric id, as the CLI does.
    fn resolve_attr(&self, dataset: &Dataset, raw: &str) -> Result<AttrId, ServeError> {
        if let Some((id, _)) = dataset.attribute_by_name(raw) {
            return Ok(id);
        }
        if let Ok(id) = raw.parse::<AttrId>() {
            if (id as usize) < dataset.len() {
                return Ok(id);
            }
        }
        Err(ServeError::bad_request(format!("attribute '{raw}' not found (name or id)")))
    }

    /// Rough per-request scratch estimate charged against the memory
    /// budget: candidate tracking is O(|D|), plus a fixed overhead.
    fn request_cost(&self) -> usize {
        self.dataset().len() * 64 + 4096
    }
}

/// Outcome of [`Engine::apply_delta`].
#[derive(Debug)]
pub struct EngineDeltaReport {
    /// The core index-maintenance report (forward direction).
    pub index: DeltaReport,
    /// Result-cache entries dropped because the delta affected them.
    pub cache_evicted: usize,
    /// Result-cache entries proven unaffected and kept.
    pub cache_retained: usize,
    /// Plan-cache entries dropped because the delta touched their query.
    pub plans_evicted: usize,
    /// Store generation the flip committed, when store-backed.
    pub store_generation: Option<u64>,
}

/// Bit-exact identity of a resolved parameter set.
type ParamsKey = (u64, u32, Option<u64>);

/// `(reverse?, resolved parameters, query attribute)`.
type CacheKey = (bool, ParamsKey, AttrId);

/// Rebuilds the [`TindParams`] a [`ParamsKey`] encodes.
fn params_from_key(key: ParamsKey, timeline: Timeline) -> TindParams {
    let (eps_bits, delta, decay_bits) = key;
    let weights = match decay_bits {
        Some(a) => WeightFn::exponential(f64::from_bits(a), timeline),
        None => WeightFn::constant_one(),
    };
    TindParams::weighted(f64::from_bits(eps_bits), delta, weights)
}

#[derive(Default)]
struct CacheInner {
    map: FastMap<CacheKey, Arc<SearchOutcome>>,
    /// Insertion order, for FIFO eviction at capacity.
    order: VecDeque<CacheKey>,
}

/// Opt-in cache of search outcomes, keyed by direction, bit-exact
/// resolved parameters, and query attribute.
///
/// Delta-aware invalidation: a delta can change an entry's *result set*
/// only through the touched attributes — either the query itself changed
/// (full eviction), a touched attribute sits in the cached results and
/// may have dropped out, or a touched attribute newly validates against
/// the query and is missing from them. [`ResultCache::invalidate`]
/// checks exactly those memberships with the exact validator against the
/// merged dataset and keeps every entry it proves unaffected. Kept
/// entries' `stats` still describe the computation that filled them —
/// results are the contract, stats are diagnostics.
///
/// Degraded serving bypasses the cache entirely: partial results are
/// never cached and clean cached results never leak past a quarantine.
struct ResultCache {
    /// `0` disables the cache; every operation is then a no-op.
    capacity: usize,
    hot: Mutex<CacheInner>,
}

impl ResultCache {
    fn new(capacity: usize) -> ResultCache {
        ResultCache { capacity, hot: Mutex::new(CacheInner::default()) }
    }

    fn enabled(&self) -> bool {
        self.capacity > 0
    }

    fn len(&self) -> usize {
        if !self.enabled() {
            return 0;
        }
        lock(&self.hot).map.len()
    }

    fn get(&self, key: &CacheKey) -> Option<Arc<SearchOutcome>> {
        if !self.enabled() {
            return None;
        }
        lock(&self.hot).map.get(key).cloned()
    }

    fn insert(&self, key: CacheKey, outcome: Arc<SearchOutcome>) {
        if !self.enabled() {
            return;
        }
        let mut inner = lock(&self.hot);
        if inner.map.insert(key, outcome).is_none() {
            inner.order.push_back(key);
            if inner.order.len() > self.capacity {
                if let Some(oldest) = inner.order.pop_front() {
                    inner.map.remove(&oldest);
                }
            }
        }
        tind_obs::gauge("serve.cache_entries").set(inner.map.len() as f64);
    }

    fn clear(&self) {
        if !self.enabled() {
            return;
        }
        let mut inner = lock(&self.hot);
        inner.map.clear();
        inner.order.clear();
        tind_obs::gauge("serve.cache_entries").set(0.0);
    }

    /// Evicts every entry whose result set the delta to `dataset` (the
    /// merged successor) could have changed, returns
    /// `(evicted, retained)`. `touched` is ascending, as produced by
    /// [`DatasetDelta::touched`].
    fn invalidate(&self, dataset: &Dataset, touched: &[AttrId]) -> (usize, usize) {
        if !self.enabled() {
            return (0, 0);
        }
        let timeline = dataset.timeline();
        let mut inner = lock(&self.hot);
        let keys: Vec<CacheKey> = inner.map.keys().copied().collect();
        let mut evicted = 0;
        for key in keys {
            let (rev, pkey, query) = key;
            let stale = if touched.binary_search(&query).is_ok() {
                true
            } else {
                let outcome = Arc::clone(&inner.map[&key]);
                let params = params_from_key(pkey, timeline);
                // A forward entry lists {B : query ⊆ B}; a reverse entry
                // lists {B : B ⊆ query}. Only touched B can enter or
                // leave — re-validate their membership exactly.
                touched.iter().any(|&b| {
                    let was = outcome.results.binary_search(&b).is_ok();
                    let (lhs, rhs) = if rev { (b, query) } else { (query, b) };
                    let now = tind_core::explain::explain(
                        dataset.attribute(lhs),
                        dataset.attribute(rhs),
                        &params,
                        timeline,
                    )
                    .valid;
                    was != now
                })
            };
            if stale {
                inner.map.remove(&key);
                evicted += 1;
            }
        }
        let CacheInner { map, order } = &mut *inner;
        order.retain(|k| map.contains_key(k));
        let retained = map.len();
        tind_obs::counter("serve.cache_invalidated").add(evicted as u64);
        tind_obs::gauge("serve.cache_entries").set(retained as f64);
        (evicted, retained)
    }
}

/// `(query attribute, ε bits, δ)` — the `w` component of the paper's
/// parameter triple is carried inside the stored [`PlanArtifacts`] and
/// verified on every hit (two weight functions rarely share ε and δ, and
/// a false share is just a rebuild, never a wrong answer).
type PlanKey = (AttrId, u64, u32);

#[derive(Default)]
struct PlanInner {
    map: FastMap<PlanKey, PlanArtifacts>,
    /// Recency order, least-recent first (true LRU: hits re-append).
    order: VecDeque<PlanKey>,
}

/// Opt-in LRU of reusable [`PlanArtifacts`], consulted by the batched
/// search path at the stage-4 plan-build seam. A hit skips the
/// O(timeline) weight-table accumulation and the query's change-point
/// scan; results and statistics are pinned identical either way by the
/// core equivalence tests.
///
/// Shares the result cache's delta-invalidation hook: a delta evicts
/// exactly the entries whose query attribute it touched (plan artifacts
/// depend only on the query's own history, ε, δ, and w — not on
/// candidates), and a stale timeline clears everything.
struct PlanCache {
    /// `0` disables the cache; every operation is then a no-op.
    capacity: usize,
    hot: Mutex<PlanInner>,
}

impl PlanCache {
    fn new(capacity: usize) -> PlanCache {
        PlanCache { capacity, hot: Mutex::new(PlanInner::default()) }
    }

    fn enabled(&self) -> bool {
        self.capacity > 0
    }

    fn len(&self) -> usize {
        if !self.enabled() {
            return 0;
        }
        lock(&self.hot).map.len()
    }

    fn clear(&self) {
        if !self.enabled() {
            return;
        }
        let mut inner = lock(&self.hot);
        inner.map.clear();
        inner.order.clear();
        tind_obs::gauge("serve.plans.entries").set(0.0);
    }

    /// Evicts entries whose query a delta touched (ascending ids, as
    /// produced by [`DatasetDelta::touched`]) plus any built over a
    /// different timeline than `dataset`'s; returns the eviction count.
    fn invalidate(&self, dataset: &Dataset, touched: &[AttrId]) -> usize {
        if !self.enabled() {
            return 0;
        }
        let timeline = dataset.timeline();
        let mut inner = lock(&self.hot);
        let before = inner.map.len();
        inner.map.retain(|&(query, _, _), artifacts| {
            touched.binary_search(&query).is_err() && artifacts.timeline() == timeline
        });
        let PlanInner { map, order } = &mut *inner;
        order.retain(|k| map.contains_key(k));
        let evicted = before - map.len();
        tind_obs::counter("serve.plans.evicted").add(evicted as u64);
        tind_obs::gauge("serve.plans.entries").set(map.len() as f64);
        evicted
    }
}

impl PlanSource for PlanCache {
    fn get(
        &self,
        query: AttrId,
        params: &TindParams,
        timeline: Timeline,
    ) -> Option<PlanArtifacts> {
        if !self.enabled() {
            return None;
        }
        let key = (query, params.eps.to_bits(), params.delta);
        let mut inner = lock(&self.hot);
        match inner.map.get(&key) {
            Some(artifacts) if artifacts.matches(params, timeline) => {
                let artifacts = artifacts.clone();
                // Refresh recency: move the key to the back.
                if let Some(pos) = inner.order.iter().position(|k| *k == key) {
                    inner.order.remove(pos);
                }
                inner.order.push_back(key);
                tind_obs::counter("serve.plans.hits").incr();
                Some(artifacts)
            }
            Some(_) => {
                // Same (ε, δ) under different weights or timeline: the
                // entry can never serve this key shape again — drop it.
                inner.map.remove(&key);
                inner.order.retain(|k| *k != key);
                tind_obs::counter("serve.plans.misses").incr();
                None
            }
            None => {
                tind_obs::counter("serve.plans.misses").incr();
                None
            }
        }
    }

    fn put(&self, query: AttrId, params: &TindParams, _timeline: Timeline, artifacts: PlanArtifacts) {
        if !self.enabled() {
            return;
        }
        let key = (query, params.eps.to_bits(), params.delta);
        let mut inner = lock(&self.hot);
        if inner.map.insert(key, artifacts).is_none() {
            inner.order.push_back(key);
            if inner.order.len() > self.capacity {
                if let Some(coldest) = inner.order.pop_front() {
                    inner.map.remove(&coldest);
                    tind_obs::counter("serve.plans.evicted").incr();
                }
            }
        }
        tind_obs::gauge("serve.plans.entries").set(inner.map.len() as f64);
    }
}

/// Lifecycle states surfaced by `/healthz`.
const STATE_LOADING: u8 = 0;
const STATE_SERVING: u8 = 1;
const STATE_DRAINING: u8 = 2;
/// Serving, but from a store with quarantined shards: queries over live
/// attributes answer normally (marked partial), queries over lost ranges
/// get a typed `shard_unavailable`, and background re-verification
/// promotes back to [`STATE_SERVING`] once the store is repaired.
const STATE_DEGRADED: u8 = 3;

/// One admitted request waiting for (or undergoing) execution.
struct Job {
    call: ApiCall,
    stream: TcpStream,
    token: CancelToken,
    deadline: Instant,
    received: Instant,
    /// Trace identity of this request; `trace.span_id` is the root
    /// (`serve.request`) span every stage span parents into. Zeroed
    /// under `obs-off`, which turns every recording below into a no-op.
    trace: TraceContext,
    /// `X-Tind-Trace: 1` was sent: collect the trace unconditionally and
    /// return the id in `X-Tind-Trace-Id`.
    force_trace: bool,
    /// Static endpoint label for the per-endpoint latency histograms.
    endpoint: &'static str,
    /// Obs-epoch timestamps stamped as the request crosses pipeline
    /// stages: admission, queue pop, wave formation.
    received_ns: u64,
    popped_ns: u64,
    exec_start_ns: u64,
    /// Identity of the wave span this request's `serve.exec` span parents
    /// to (the wave is its own trace; members link to it).
    wave_trace: u128,
    wave_span: u64,
}

/// One completed, collected request trace retained for `/debug/trace`.
struct StoredTrace {
    trace_id: u128,
    dur_ns: u64,
    payload: Value,
}

#[derive(Default)]
struct TraceStoreInner {
    /// Newest-last ring of the K most recent completed traces.
    recent: VecDeque<StoredTrace>,
    /// The K slowest traces, kept sorted slowest-first.
    slowest: Vec<StoredTrace>,
}

/// Tail-sampling trace retention: every completed (or force-sampled)
/// request trace is offered; the store keeps the K most recent and the
/// K slowest, which is what `GET /debug/trace` serves. Collection runs
/// off the hot path — after the response-worthy work, before the write.
struct TraceStore {
    /// `0` disables retention; offers are then dropped.
    capacity: usize,
    inner: Mutex<TraceStoreInner>,
}

impl TraceStore {
    fn new(capacity: usize) -> TraceStore {
        TraceStore { capacity, inner: Mutex::new(TraceStoreInner::default()) }
    }

    fn enabled(&self) -> bool {
        self.capacity > 0
    }

    fn offer(&self, trace: StoredTrace) {
        if !self.enabled() {
            return;
        }
        let mut inner = lock(&self.inner);
        let slow_slot = inner.slowest.len() < self.capacity
            || inner.slowest.last().is_some_and(|t| t.dur_ns < trace.dur_ns);
        if slow_slot {
            let at = inner
                .slowest
                .partition_point(|t| t.dur_ns >= trace.dur_ns);
            inner.slowest.insert(
                at,
                StoredTrace {
                    trace_id: trace.trace_id,
                    dur_ns: trace.dur_ns,
                    payload: trace.payload.clone(),
                },
            );
            inner.slowest.truncate(self.capacity);
        }
        inner.recent.push_back(trace);
        if inner.recent.len() > self.capacity {
            inner.recent.pop_front();
        }
    }

    /// Retained trace payloads, slowest first then most-recent-first,
    /// deduplicated by trace id and capped at `last` when given.
    fn export(&self, last: Option<usize>) -> Vec<Value> {
        let inner = lock(&self.inner);
        let mut seen: Vec<u128> = Vec::new();
        let mut out = Vec::new();
        let cap = last.unwrap_or(usize::MAX);
        for t in inner.slowest.iter().chain(inner.recent.iter().rev()) {
            if out.len() >= cap {
                break;
            }
            if !seen.contains(&t.trace_id) {
                seen.push(t.trace_id);
                out.push(t.payload.clone());
            }
        }
        out
    }
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    panics: AtomicU64,
    deadline_timeouts: AtomicU64,
    waves: AtomicU64,
    coalesced: AtomicU64,
}

/// Aggregate statistics returned when the server finishes draining.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOutcome {
    /// Requests parsed and routed (including `/healthz` and `/metrics`).
    pub requests: u64,
    /// 200 responses written.
    pub ok: u64,
    /// Typed error responses written (every non-200).
    pub errors: u64,
    /// Requests shed by admission control (429) or memory pressure (503).
    pub shed: u64,
    /// Requests quarantined after panicking (500); no worker died.
    pub panics: u64,
    /// Requests that hit their deadline (504).
    pub deadline_timeouts: u64,
    /// Executed batch waves.
    pub waves: u64,
    /// Requests that rode an existing wave instead of forming their own.
    pub coalesced_requests: u64,
    /// True when the drain finished without the grace-period watchdog
    /// force-cancelling anything.
    pub drained_clean: bool,
}

/// Shared state of one running server; borrowed by every pipeline thread.
struct Runtime {
    config: ServeConfig,
    engine: OnceLock<Arc<Engine>>,
    state: AtomicU8,
    conns: Admission<TcpStream>,
    jobs: Admission<Job>,
    shutdown: CancelToken,
    /// Per-worker slot holding the cancel token of the wave in flight,
    /// so the drain watchdog can cancel stragglers with reason `Drain`.
    active: Vec<Mutex<Option<CancelToken>>>,
    workers_live: AtomicUsize,
    forced_drain: AtomicBool,
    started: Instant,
    /// Tail-sampled completed request traces served at `/debug/trace`.
    traces: TraceStore,
    c: Counters,
}

impl Runtime {
    fn state(&self) -> u8 {
        self.state.load(Ordering::Acquire)
    }

    fn set_state(&self, s: u8) {
        self.state.store(s, Ordering::Release);
    }

    fn retry_hint_ms(&self, depth: usize) -> u64 {
        self.config.retry_unit.as_millis() as u64 * (depth as u64 + 1)
    }

    /// Writes a typed error response and counts it.
    fn respond_error(&self, stream: &mut TcpStream, err: &ServeError) {
        self.c.errors.fetch_add(1, Ordering::Relaxed);
        tind_obs::counter("serve.responses_error").incr();
        let body = err.to_value().to_json();
        let _ = http::write_response(stream, err.status, reason_phrase(err.status), &body);
    }

    /// Writes a 200 response and counts it.
    fn respond_ok(&self, stream: &mut TcpStream, body: &Value) {
        self.respond_ok_text(stream, &body.to_json());
    }

    /// [`Runtime::respond_ok`] for pre-rendered bodies (the newline-
    /// delimited `TINDTF` export of `/debug/trace?format=tindtf`).
    fn respond_ok_text(&self, stream: &mut TcpStream, body: &str) {
        self.c.ok.fetch_add(1, Ordering::Relaxed);
        tind_obs::counter("serve.responses_ok").incr();
        let _ = http::write_response(stream, 200, reason_phrase(200), body);
    }

    fn shed(&self, stream: &mut TcpStream, err: &ServeError, counter: &'static str) {
        self.c.shed.fetch_add(1, Ordering::Relaxed);
        tind_obs::counter(counter).incr();
        self.respond_error(stream, err);
    }
}

/// A bound-but-not-yet-running serve daemon.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    config: ServeConfig,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port). The
    /// listener is live immediately — connections queue in the kernel
    /// backlog until [`Server::run`] starts the pipeline.
    pub fn bind(addr: &str, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server { listener, addr, config })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Runs the pipeline until `shutdown` trips, then drains and returns
    /// the aggregate outcome. `loader` builds the [`Engine`] on the
    /// calling thread while `/healthz` already answers (readiness
    /// `loading`); API calls get typed 503s until it completes.
    pub fn run(
        self,
        loader: impl FnOnce() -> Result<Engine, String>,
        shutdown: CancelToken,
    ) -> Result<ServeOutcome, String> {
        let workers = if self.config.workers == 0 {
            std::thread::available_parallelism().map_or(2, |n| n.get()).min(8)
        } else {
            self.config.workers
        };
        let readers = if self.config.readers == 0 { 2 } else { self.config.readers };

        let rt = Runtime {
            conns: Admission::new(self.config.conn_capacity),
            jobs: Admission::new(self.config.queue_capacity),
            traces: TraceStore::new(self.config.trace_last),
            config: self.config,
            engine: OnceLock::new(),
            state: AtomicU8::new(STATE_LOADING),
            shutdown,
            active: (0..workers).map(|_| Mutex::new(None)).collect(),
            workers_live: AtomicUsize::new(0),
            forced_drain: AtomicBool::new(false),
            started: Instant::now(),
            c: Counters::default(),
        };
        self.listener
            .set_nonblocking(true)
            .map_err(|e| format!("listener nonblocking mode failed: {e}"))?;

        let mut load_error: Option<String> = None;
        let rt = &rt;
        let listener = &self.listener;
        std::thread::scope(|s| {
            let acceptor = s.spawn(move || acceptor_loop(rt, listener));
            let reader_handles: Vec<_> =
                (0..readers).map(|_| s.spawn(move || reader_loop(rt))).collect();
            let worker_handles: Vec<_> =
                (0..workers).map(|w| s.spawn(move || worker_loop(rt, w))).collect();
            let watchdog = s.spawn(move || drain_watchdog(rt));

            match loader() {
                Ok(engine) => {
                    let mut engine = engine;
                    if rt.config.cache > 0 {
                        engine = engine.with_cache(rt.config.cache);
                    }
                    if rt.config.plan_cache > 0 {
                        engine = engine.with_plan_cache(rt.config.plan_cache);
                    }
                    if rt.config.memory_budget.is_some() && engine.budget.is_none() {
                        engine =
                            engine.with_memory_accounting(rt.config.memory_budget.clone());
                    }
                    let degraded = engine.is_degraded();
                    let engine = Arc::new(engine);
                    if let Some(hook) = &rt.config.engine_hook {
                        hook(Arc::clone(&engine));
                    }
                    let _ = rt.engine.set(engine);
                    rt.set_state(if degraded { STATE_DEGRADED } else { STATE_SERVING });
                    let mut next_reverify = Instant::now() + rt.config.reverify_interval;
                    let mut next_tick = Instant::now() + rt.config.metrics_tick;
                    while !rt.shutdown.is_cancelled() {
                        std::thread::sleep(Duration::from_millis(10));
                        // Periodic metrics-history snapshot: feeds the
                        // fixed-size ring behind `GET /metrics/history`
                        // and the TINDRR `metrics_history` section.
                        if !rt.config.metrics_tick.is_zero() && Instant::now() >= next_tick {
                            next_tick = Instant::now() + rt.config.metrics_tick;
                            tind_obs::history_tick();
                        }
                        // Background re-verification: while degraded, poll
                        // the store; once every shard verifies again
                        // (e.g. after `tind store repair`), swap in the
                        // clean index and promote to `serving`.
                        if rt.state() == STATE_DEGRADED && Instant::now() >= next_reverify {
                            next_reverify = Instant::now() + rt.config.reverify_interval;
                            let promoted =
                                rt.engine.get().is_some_and(|e| e.try_promote());
                            if promoted {
                                tind_obs::counter("serve.promotions").incr();
                                rt.set_state(STATE_SERVING);
                            }
                        }
                    }
                }
                Err(e) => load_error = Some(e),
            }

            // Drain: stop accepting, let readers reject queued
            // connections, let workers finish queued jobs.
            rt.set_state(STATE_DRAINING);
            let _ = acceptor.join();
            rt.conns.close();
            for h in reader_handles {
                let _ = h.join();
            }
            rt.jobs.close();
            for h in worker_handles {
                let _ = h.join();
            }
            let _ = watchdog.join();
        });

        if let Some(e) = load_error {
            return Err(e);
        }
        Ok(ServeOutcome {
            requests: rt.c.requests.load(Ordering::Relaxed),
            ok: rt.c.ok.load(Ordering::Relaxed),
            errors: rt.c.errors.load(Ordering::Relaxed),
            shed: rt.c.shed.load(Ordering::Relaxed),
            panics: rt.c.panics.load(Ordering::Relaxed),
            deadline_timeouts: rt.c.deadline_timeouts.load(Ordering::Relaxed),
            waves: rt.c.waves.load(Ordering::Relaxed),
            coalesced_requests: rt.c.coalesced.load(Ordering::Relaxed),
            drained_clean: !rt.forced_drain.load(Ordering::Relaxed),
        })
    }
}

fn acceptor_loop(rt: &Runtime, listener: &TcpListener) {
    loop {
        if rt.state() == STATE_DRAINING || rt.shutdown.is_cancelled() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                tind_obs::counter("serve.connections").incr();
                let _ = stream.set_write_timeout(Some(rt.config.write_timeout));
                let _ = stream.set_nodelay(true);
                if let Err(mut stream) = rt.conns.try_push(stream) {
                    let hint = rt.retry_hint_ms(rt.conns.depth());
                    rt.shed(&mut stream, &ServeError::overloaded(hint), "serve.shed_queue");
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn reader_loop(rt: &Runtime) {
    let limits = HttpLimits {
        max_header_bytes: rt.config.max_header_bytes,
        max_body_bytes: rt.config.max_body_bytes,
        read_budget: rt.config.read_timeout,
    };
    while let Some(mut stream) = rt.conns.pop_wait() {
        let req = match http::read_request(&mut stream, &limits) {
            Ok(req) => req,
            Err(HttpError::Closed) => continue,
            Err(e) => {
                let err = match e {
                    HttpError::Timeout => {
                        ServeError::request_timeout(limits.read_budget.as_millis() as u64)
                    }
                    HttpError::HeaderTooLarge => {
                        ServeError::header_too_large(limits.max_header_bytes)
                    }
                    HttpError::BodyTooLarge { got } => {
                        ServeError::payload_too_large(got, limits.max_body_bytes)
                    }
                    HttpError::Malformed(why) => {
                        ServeError::bad_request(format!("malformed request: {why}"))
                    }
                    HttpError::Closed | HttpError::Io(_) => continue,
                };
                rt.respond_error(&mut stream, &err);
                // The request was never fully read; discard what the
                // peer already sent so the close is a FIN, not an RST
                // that would destroy the error response in flight.
                http::drain_before_close(&mut stream);
                continue;
            }
        };
        rt.c.requests.fetch_add(1, Ordering::Relaxed);
        tind_obs::counter("serve.requests").incr();
        match router::route(&req) {
            Err(err) => rt.respond_error(&mut stream, &err),
            Ok(ApiCall::Healthz) => {
                let body = healthz_body(rt);
                rt.respond_ok(&mut stream, &body);
            }
            Ok(ApiCall::Metrics) => {
                let body = tind_obs::metrics_value();
                rt.respond_ok(&mut stream, &body);
            }
            Ok(ApiCall::MetricsHistory) => {
                let body = tind_obs::history_value();
                rt.respond_ok(&mut stream, &body);
            }
            Ok(ApiCall::DebugTrace(spec)) => respond_debug_trace(rt, &mut stream, &spec),
            Ok(call) => match rt.state() {
                STATE_LOADING => rt.respond_error(&mut stream, &ServeError::loading()),
                STATE_DRAINING => {
                    tind_obs::counter("serve.draining_rejects").incr();
                    rt.respond_error(&mut stream, &ServeError::draining());
                }
                _ => {
                    let timeout = call
                        .timeout_ms()
                        .map_or(rt.config.default_deadline, Duration::from_millis)
                        .min(rt.config.max_deadline);
                    let deadline = Instant::now() + timeout;
                    let received_ns = trace::now_ns();
                    let job = Job {
                        endpoint: endpoint_label(&call),
                        call,
                        stream,
                        token: CancelToken::new().with_deadline(deadline),
                        deadline,
                        received: Instant::now(),
                        trace: trace::alloc_context(),
                        force_trace: req.force_trace,
                        received_ns,
                        popped_ns: received_ns,
                        exec_start_ns: received_ns,
                        wave_trace: 0,
                        wave_span: 0,
                    };
                    match rt.jobs.try_push(job) {
                        Ok(depth) => {
                            tind_obs::gauge("serve.queue_depth").set(depth as f64);
                        }
                        Err(mut job) => {
                            let hint = rt.retry_hint_ms(rt.jobs.depth());
                            rt.shed(
                                &mut job.stream,
                                &ServeError::overloaded(hint),
                                "serve.shed_queue",
                            );
                        }
                    }
                }
            },
        }
    }
}

fn healthz_body(rt: &Runtime) -> Value {
    let state = rt.state();
    let status = match state {
        STATE_LOADING => "loading",
        STATE_SERVING => "serving",
        STATE_DEGRADED => "degraded",
        _ => "draining",
    };
    let mut body = Value::obj([
        ("status", Value::str(status)),
        // Degraded still accepts queries — `status` carries the nuance.
        ("ready", Value::Bool(state == STATE_SERVING || state == STATE_DEGRADED)),
        ("queue_depth", Value::num(rt.jobs.depth() as f64)),
        ("uptime_ms", Value::num(rt.started.elapsed().as_millis() as f64)),
    ]);
    if state == STATE_DEGRADED {
        if let Some((fraction, shards)) = rt.engine.get().and_then(|e| e.degraded_status()) {
            body.set("live_shard_fraction", Value::num(fraction));
            body.set(
                "quarantined_shards",
                Value::Arr(shards.into_iter().map(|s| Value::num(s as f64)).collect()),
            );
        }
    }
    if let Some(engine) = rt.engine.get() {
        if engine.cache.enabled() {
            body.set("cache_entries", Value::num(engine.cache.len() as f64));
        }
        if engine.plans.enabled() {
            body.set("plan_entries", Value::num(engine.plans.len() as f64));
        }
    }
    body
}

/// Static endpoint label used by trace payloads and the per-endpoint
/// latency-attribution histograms.
fn endpoint_label(call: &ApiCall) -> &'static str {
    match call {
        ApiCall::Search(_) => "search",
        ApiCall::ReverseSearch(_) => "reverse_search",
        ApiCall::Explain(_) => "explain",
        _ => "inline",
    }
}

/// Per-endpoint latency-attribution histogram names:
/// `serve.latency.<endpoint>.{queued,coalesced,exec}_ns`. Static so the
/// hot path never formats a metric name.
fn latency_names(endpoint: &str) -> (&'static str, &'static str, &'static str) {
    match endpoint {
        "search" => (
            "serve.latency.search.queued_ns",
            "serve.latency.search.coalesced_ns",
            "serve.latency.search.exec_ns",
        ),
        "reverse_search" => (
            "serve.latency.reverse_search.queued_ns",
            "serve.latency.reverse_search.coalesced_ns",
            "serve.latency.reverse_search.exec_ns",
        ),
        _ => (
            "serve.latency.explain.queued_ns",
            "serve.latency.explain.coalesced_ns",
            "serve.latency.explain.exec_ns",
        ),
    }
}

/// Answers `GET /debug/trace`: the retained tail-sampled traces, either
/// as one JSON document or as newline-delimited `TINDTF` envelopes (each
/// line is exactly what `tind trace` and `tind verify` accept).
fn respond_debug_trace(rt: &Runtime, stream: &mut TcpStream, spec: &TraceSpec) {
    let traces = rt.traces.export(spec.last);
    match spec.format {
        TraceFormat::Json => {
            let body = Value::obj([
                ("count", Value::num(traces.len() as f64)),
                (
                    "dropped_spans_total",
                    Value::num(trace::trace_drops_total() as f64),
                ),
                ("traces", Value::Arr(traces)),
            ]);
            rt.respond_ok(stream, &body);
        }
        TraceFormat::Tindtf => {
            let mut body = String::new();
            for payload in &traces {
                body.push_str(&trace::trace_envelope(payload));
            }
            rt.respond_ok_text(stream, &body);
        }
    }
}

/// Whether two queued calls may share one batch wave: same direction,
/// bit-identical resolved parameters.
fn compatible(engine: &Engine, a: &ApiCall, b: &ApiCall) -> bool {
    let key = |spec: &QuerySpec| engine.resolve_params(spec.eps, spec.delta, spec.decay).1;
    match (a, b) {
        (ApiCall::Search(x), ApiCall::Search(y)) => key(x) == key(y),
        (ApiCall::ReverseSearch(x), ApiCall::ReverseSearch(y)) => key(x) == key(y),
        _ => false,
    }
}

fn worker_loop(rt: &Runtime, slot: usize) {
    rt.workers_live.fetch_add(1, Ordering::AcqRel);
    while let Some(mut job) = rt.jobs.pop_wait() {
        job.popped_ns = trace::now_ns();
        let job = job;
        tind_obs::gauge("serve.queue_depth").set(rt.jobs.depth() as f64);
        let Some(engine) = rt.engine.get() else {
            // Unreachable in practice: jobs are only admitted once the
            // engine is set. Kept total for robustness.
            let mut job = job;
            rt.respond_error(&mut job.stream, &ServeError::loading());
            continue;
        };

        // Memory degradation step 2: shed whole requests when even one
        // uncoalesced execution cannot charge its scratch.
        let cost = engine.request_cost();
        let mut charges = Vec::new();
        if let Some(budget) = &rt.config.memory_budget {
            match budget.try_charge(cost) {
                Some(c) => charges.push(c),
                None => {
                    let mut job = job;
                    let hint = rt.retry_hint_ms(rt.jobs.depth());
                    rt.shed(
                        &mut job.stream,
                        &ServeError::overloaded_memory(hint),
                        "serve.shed_memory",
                    );
                    continue;
                }
            }
        }

        // Coalesce compatible queued searches into this wave. Memory
        // degradation step 1: each extra member must charge; when the
        // budget runs dry the wave just stays small.
        let mut wave = vec![job];
        if matches!(wave[0].call, ApiCall::Search(_) | ApiCall::ReverseSearch(_)) {
            while wave.len() < rt.config.coalesce.max(1) {
                if let Some(budget) = &rt.config.memory_budget {
                    match budget.try_charge(cost) {
                        Some(c) => charges.push(c),
                        None => break,
                    }
                }
                let mut more =
                    rt.jobs.drain_matching(|j| compatible(engine, &j.call, &wave[0].call), 1);
                match more.pop() {
                    Some(mut j) => {
                        j.popped_ns = trace::now_ns();
                        rt.c.coalesced.fetch_add(1, Ordering::Relaxed);
                        tind_obs::counter("serve.coalesced_requests").incr();
                        wave.push(j);
                    }
                    None => {
                        if rt.config.memory_budget.is_some() {
                            charges.pop();
                        }
                        break;
                    }
                }
            }
        }

        execute_wave(rt, engine, slot, wave);
        drop(charges);
    }
    rt.workers_live.fetch_sub(1, Ordering::AcqRel);
}

/// Executes one wave (1..=coalesce members, all compatible) and writes
/// every member's response. Panics are quarantined here.
fn execute_wave(rt: &Runtime, engine: &Engine, slot: usize, mut wave: Vec<Job>) {
    rt.c.waves.fetch_add(1, Ordering::Relaxed);
    tind_obs::counter("serve.waves").incr();
    tind_obs::histogram("serve.wave_size").record(wave.len() as u64);

    // Drop members whose deadline already passed in the queue.
    let mut pending = Vec::with_capacity(wave.len());
    for mut job in wave.drain(..) {
        if job.token.is_cancelled() {
            let reason = job.token.reason();
            respond_cancelled(rt, &mut job, reason);
        } else {
            pending.push(job);
        }
    }
    if pending.is_empty() {
        return;
    }

    // One token governs the wave: its deadline is the latest member
    // deadline, and the drain watchdog can cancel it with reason
    // `Drain`. Work already finished is still answered normally.
    let max_deadline =
        pending.iter().map(|j| j.deadline).max().unwrap_or_else(|| Instant::now());
    let wave_token = CancelToken::new().with_deadline(max_deadline);
    *lock(&rt.active[slot]) = Some(wave_token.clone());

    // The wave is its own trace: one `serve.wave` span shared by every
    // member. Each member records its queue time (`serve.queued`) and
    // wave-formation time (`serve.coalesced`) under its own root, links
    // to the wave span, and later parents its `serve.exec` span to it —
    // the three stage spans tile [received, responded] exactly.
    let wave_ctx = trace::alloc_context();
    let exec_start_ns = trace::now_ns();
    for job in &mut pending {
        job.exec_start_ns = exec_start_ns;
        job.wave_trace = wave_ctx.trace_id;
        job.wave_span = wave_ctx.span_id;
        let t = job.trace;
        if t.trace_id != 0 {
            trace::record_span(
                t.child(trace::alloc_span_id()),
                t.span_id,
                "serve.queued",
                job.received_ns,
                job.popped_ns.saturating_sub(job.received_ns),
            );
            trace::record_span(
                t.child(trace::alloc_span_id()),
                t.span_id,
                "serve.coalesced",
                job.popped_ns,
                exec_start_ns.saturating_sub(job.popped_ns),
            );
            trace::record_link(t, wave_ctx.span_id, "serve.wave_link", exec_start_ns);
        }
    }

    let completed = match &pending[0].call {
        ApiCall::Explain(_) => {
            // Explain never coalesces: `pending` is a single member.
            let mut job = pending.pop().expect("nonempty wave");
            let ApiCall::Explain(spec) = job.call.clone() else { unreachable!() };
            run_explain(rt, engine, &mut job, &spec, &wave_token).into_iter().collect()
        }
        ApiCall::Search(_) | ApiCall::ReverseSearch(_) => {
            run_search_wave(rt, engine, pending, &wave_token, wave_ctx)
        }
        _ => unreachable!("answered by readers"),
    };

    // The wave span must close before any member trace is collected:
    // every completed member's `serve.exec` span parents to it.
    trace::record_span(
        wave_ctx,
        0,
        "serve.wave",
        exec_start_ns,
        trace::now_ns().saturating_sub(exec_start_ns),
    );
    for p in completed {
        let snapshot = trace::collect_trace(p.ctx, &[p.wave_trace]);
        rt.traces.offer(StoredTrace {
            trace_id: p.ctx.trace_id,
            dur_ns: p.dur_ns,
            payload: snapshot.to_value(),
        });
    }
    *lock(&rt.active[slot]) = None;
}

fn run_explain(
    rt: &Runtime,
    engine: &Engine,
    job: &mut Job,
    spec: &ExplainSpec,
    wave_token: &CancelToken,
) -> Option<PendingTrace> {
    let (params, _) = engine.resolve_params(spec.eps, spec.delta, spec.decay);
    let dataset = engine.dataset();
    let (lhs, rhs) = match (
        engine.resolve_attr(&dataset, &spec.lhs),
        engine.resolve_attr(&dataset, &spec.rhs),
    ) {
        (Ok(l), Ok(r)) => (l, r),
        (Err(e), _) | (_, Err(e)) => {
            rt.respond_error(&mut job.stream, &e);
            return None;
        }
    };
    let hook = rt.config.fault_hook.clone();
    let call = job.call.clone();
    let result = catch_unwind(AssertUnwindSafe(|| {
        if let Some(hook) = &hook {
            hook(&call);
        }
        let explanation = tind_core::explain::explain(
            dataset.attribute(lhs),
            dataset.attribute(rhs),
            &params,
            dataset.timeline(),
        );
        let rendered = explanation.render(&dataset);
        (explanation, rendered)
    }));
    match result {
        Err(_) => {
            quarantine(rt, std::slice::from_mut(job));
            None
        }
        Ok((explanation, rendered)) => {
            if wave_token.is_cancelled() {
                respond_cancelled(rt, job, wave_token.reason());
                return None;
            }
            let body = Value::obj([
                ("lhs", Value::str(dataset.attribute(lhs).name())),
                ("rhs", Value::str(dataset.attribute(rhs).name())),
                ("eps", Value::num(params.eps)),
                ("delta", Value::num(f64::from(params.delta))),
                ("valid", Value::Bool(explanation.valid)),
                ("violation", Value::num(explanation.violation)),
                ("violated_intervals", Value::num(explanation.violated.len() as f64)),
                ("rendered", Value::str(rendered)),
                ("elapsed_ms", Value::num(elapsed_ms(job))),
            ]);
            finish_ok(rt, job, &body)
        }
    }
}

fn run_search_wave(
    rt: &Runtime,
    engine: &Engine,
    mut wave: Vec<Job>,
    wave_token: &CancelToken,
    wave_ctx: TraceContext,
) -> Vec<PendingTrace> {
    let mut completed = Vec::new();
    let reverse = matches!(wave[0].call, ApiCall::ReverseSearch(_));
    let spec_of = |call: &ApiCall| -> QuerySpec {
        match call {
            ApiCall::Search(s) | ApiCall::ReverseSearch(s) => s.clone(),
            _ => unreachable!("search wave holds only searches"),
        }
    };
    let (params, params_key) = {
        let head = spec_of(&wave[0].call);
        engine.resolve_params(head.eps, head.delta, head.decay)
    };

    // Pin one coherent snapshot for the whole wave: a concurrent
    // promotion or delta swap cannot change results mid-wave.
    let snap = engine.snapshot();
    let (dataset, forward) = (&snap.dataset, &snap.forward);

    // Resolve every member's query attribute; unknown names answer 400
    // and leave the wave. A query whose own index columns were lost with
    // a quarantined shard answers a typed 503 — a degraded index cannot
    // say anything about that attribute, and an empty 200 would be a lie.
    let mut members: Vec<(Job, QuerySpec, AttrId)> = Vec::with_capacity(wave.len());
    for mut job in wave.drain(..) {
        let spec = spec_of(&job.call);
        match engine.resolve_attr(dataset, &spec.query) {
            Ok(id) => {
                let lost = (!reverse)
                    .then(|| forward.shard_mask())
                    .flatten()
                    .and_then(|m| {
                        m.quarantined().iter().find(|q| id >= q.attr_start && id < q.attr_end)
                    });
                if let Some(q) = lost {
                    tind_obs::counter("serve.shard_unavailable").incr();
                    rt.respond_error(
                        &mut job.stream,
                        &ServeError::shard_unavailable(&spec.query, q.shard),
                    );
                } else {
                    members.push((job, spec, id));
                }
            }
            Err(e) => rt.respond_error(&mut job.stream, &e),
        }
    }

    // Answer cache hits without touching the index. Degraded serving
    // bypasses the cache in both directions: partial results must never
    // be cached, and a cached clean result would omit the `partial`
    // marker a fresh degraded answer carries.
    let direction = if reverse { "reverse" } else { "forward" };
    let cache_live = engine.cache.enabled() && forward.shard_mask().is_none();
    if cache_live {
        let mut misses = Vec::with_capacity(members.len());
        for (mut job, spec, id) in members {
            match engine.cache.get(&(reverse, params_key, id)) {
                Some(outcome) => {
                    tind_obs::counter("serve.cache_hits").incr();
                    let body = search_body(
                        dataset, &spec, id, direction, &params, &outcome, None, &job,
                    );
                    completed.extend(finish_ok(rt, &mut job, &body));
                }
                None => {
                    tind_obs::counter("serve.cache_misses").incr();
                    misses.push((job, spec, id));
                }
            }
        }
        members = misses;
    }
    if members.is_empty() {
        return completed;
    }

    let ids: Vec<AttrId> = members.iter().map(|(_, _, id)| *id).collect();
    let hook = rt.config.fault_hook.clone();
    let calls: Vec<ApiCall> = members.iter().map(|(j, _, _)| j.call.clone()).collect();
    let result = catch_unwind(AssertUnwindSafe(|| -> Vec<Option<SearchOutcome>> {
        if let Some(hook) = &hook {
            for call in &calls {
                hook(call);
            }
        }
        if reverse {
            // No batch entry point for reverse search; the wave still
            // amortizes queue round-trips and shares the deadline token.
            ids.iter()
                .map(|&id| {
                    if wave_token.is_cancelled() {
                        None
                    } else {
                        let _t =
                            trace::TraceSpan::start(Some(wave_ctx), "core.search.query");
                        Some(snap.reverse.reverse_search(id, &params))
                    }
                })
                .collect()
        } else {
            forward
                .search_batch_with(
                    &ids,
                    &params,
                    &BatchOptions {
                        threads: 1, // the worker itself is the unit of parallelism
                        cancel: Some(wave_token.clone()),
                        memory_budget: rt.config.memory_budget.clone(),
                        plans: engine
                            .plans
                            .enabled()
                            .then(|| Arc::clone(&engine.plans) as Arc<dyn PlanSource>),
                        // Stage spans land in the wave's trace, under the
                        // shared `serve.wave` span.
                        trace: (wave_ctx.trace_id != 0).then_some(wave_ctx),
                        ..BatchOptions::default()
                    },
                )
                .outcomes
        }
    }));

    match result {
        Err(_) => {
            let mut jobs: Vec<Job> = members.into_iter().map(|(j, _, _)| j).collect();
            quarantine(rt, &mut jobs);
        }
        Ok(outcomes) => {
            // Reverse queries run on the always-in-memory reverse index,
            // so only forward results can be partial.
            let mask = if reverse { None } else { forward.shard_mask() };
            for ((mut job, spec, id), outcome) in members.into_iter().zip(outcomes) {
                match outcome {
                    Some(outcome) => {
                        let outcome = Arc::new(outcome);
                        if cache_live {
                            engine.cache.insert((reverse, params_key, id), outcome.clone());
                        }
                        let body = search_body(
                            dataset, &spec, id, direction, &params, &outcome, mask, &job,
                        );
                        completed.extend(finish_ok(rt, &mut job, &body));
                    }
                    None => respond_cancelled(rt, &mut job, wave_token.reason()),
                }
            }
        }
    }
    completed
}

/// Renders the canonical search response. Everything except
/// `elapsed_ms` is deterministic for a given index and parameter set —
/// the differential suite strips that one field and byte-compares. The
/// `partial`/`quarantined_shards` markers appear **only** when `mask` is
/// present (degraded serving), so clean responses stay byte-stable.
#[allow(clippy::too_many_arguments)]
fn search_body(
    dataset: &Dataset,
    spec: &QuerySpec,
    id: AttrId,
    direction: &str,
    params: &TindParams,
    outcome: &SearchOutcome,
    mask: Option<&ShardMask>,
    job: &Job,
) -> Value {
    let limit = spec.limit.unwrap_or(DEFAULT_LIMIT);
    let results: Vec<Value> = outcome
        .results
        .iter()
        .take(limit)
        .map(|&r| {
            Value::obj([
                ("id", Value::num(f64::from(r))),
                ("name", Value::str(dataset.attribute(r).name())),
            ])
        })
        .collect();
    let s = &outcome.stats;
    let mut body = Value::obj([
        ("query", Value::str(dataset.attribute(id).name())),
        ("direction", Value::str(direction)),
        ("eps", Value::num(params.eps)),
        ("delta", Value::num(f64::from(params.delta))),
        ("result_count", Value::num(outcome.results.len() as f64)),
        ("results", Value::Arr(results)),
        (
            "stats",
            Value::obj([
                ("initial", Value::num(s.initial as f64)),
                ("after_required", Value::num(s.after_required as f64)),
                ("after_slices", Value::num(s.after_slices as f64)),
                ("after_exact", Value::num(s.after_exact as f64)),
                ("validated", Value::num(s.validated as f64)),
                ("slices_used", Value::Bool(s.slices_used)),
                ("validations_run", Value::num(s.validations_run as f64)),
                ("early_valid_exits", Value::num(s.early_valid_exits as f64)),
                ("early_invalid_exits", Value::num(s.early_invalid_exits as f64)),
            ]),
        ),
        ("elapsed_ms", Value::num(elapsed_ms(job))),
    ]);
    if let Some(mask) = mask {
        body.set("partial", Value::Bool(true));
        body.set(
            "quarantined_shards",
            Value::Arr(
                mask.quarantined().iter().map(|q| Value::num(q.shard as f64)).collect(),
            ),
        );
    }
    body
}

fn elapsed_ms(job: &Job) -> f64 {
    job.received.elapsed().as_secs_f64() * 1e3
}

/// A completed request whose trace is collected only after the wave
/// span closes (see [`execute_wave`]): the member's `serve.exec` span
/// parents to `serve.wave`, so collecting before the wave span is
/// recorded would export a trace with a dangling parent edge.
struct PendingTrace {
    ctx: TraceContext,
    wave_trace: u128,
    dur_ns: u64,
}

fn finish_ok(rt: &Runtime, job: &mut Job, body: &Value) -> Option<PendingTrace> {
    tind_obs::histogram("serve.request_latency_ns")
        .record(job.received.elapsed().as_nanos() as u64);
    let end_ns = trace::now_ns();
    let (queued, coalesced, exec) = latency_names(job.endpoint);
    tind_obs::histogram(queued).record(job.popped_ns.saturating_sub(job.received_ns));
    tind_obs::histogram(coalesced).record(job.exec_start_ns.saturating_sub(job.popped_ns));
    tind_obs::histogram(exec).record(end_ns.saturating_sub(job.exec_start_ns));

    let t = job.trace;
    let mut pending = None;
    if t.trace_id != 0 {
        // `serve.exec` parents to the *wave* span — the edge that ties a
        // coalesced member to the shared execution it rode.
        trace::record_span(
            t.child(trace::alloc_span_id()),
            job.wave_span,
            "serve.exec",
            job.exec_start_ns,
            end_ns.saturating_sub(job.exec_start_ns),
        );
        // The root `serve.request` span closes last, covering the whole
        // [received, responded] interval.
        trace::record_span(
            t,
            0,
            "serve.request",
            job.received_ns,
            end_ns.saturating_sub(job.received_ns),
        );
        if job.force_trace || rt.traces.enabled() {
            pending = Some(PendingTrace {
                ctx: t,
                wave_trace: job.wave_trace,
                dur_ns: end_ns.saturating_sub(job.received_ns),
            });
        }
        if job.force_trace {
            let id = format!("0x{:032x}", t.trace_id);
            rt.c.ok.fetch_add(1, Ordering::Relaxed);
            tind_obs::counter("serve.responses_ok").incr();
            let _ = http::write_response_with(
                &mut job.stream,
                200,
                reason_phrase(200),
                &body.to_json(),
                &[("X-Tind-Trace-Id", &id)],
            );
            return pending;
        }
    }
    rt.respond_ok(&mut job.stream, body);
    pending
}

/// Answers a cancelled member by the token's latched reason: drain →
/// 503, anything else (deadline, or an interrupt that raced) → 504.
fn respond_cancelled(rt: &Runtime, job: &mut Job, reason: Option<CancelReason>) {
    let err = match reason {
        Some(CancelReason::Drain) => ServeError::draining(),
        _ => {
            rt.c.deadline_timeouts.fetch_add(1, Ordering::Relaxed);
            tind_obs::counter("serve.deadline_timeouts").incr();
            ServeError::deadline_exceeded()
        }
    };
    rt.respond_error(&mut job.stream, &err);
}

/// Answers every member of a panicked wave with a typed 500. The worker
/// thread that caught the panic keeps running.
fn quarantine(rt: &Runtime, jobs: &mut [Job]) {
    for job in jobs {
        rt.c.panics.fetch_add(1, Ordering::Relaxed);
        tind_obs::counter("serve.panics").incr();
        rt.respond_error(&mut job.stream, &ServeError::internal_panic());
    }
}

/// Bounds how long a drain may take: past `drain_grace`, in-flight wave
/// tokens are cancelled with reason `Drain` and still-queued jobs are
/// shed, so the process always exits.
fn drain_watchdog(rt: &Runtime) {
    while rt.state() != STATE_DRAINING {
        std::thread::sleep(Duration::from_millis(10));
    }
    let drain_started = Instant::now();
    while rt.workers_live.load(Ordering::Acquire) > 0 {
        if drain_started.elapsed() >= rt.config.drain_grace {
            rt.forced_drain.store(true, Ordering::Relaxed);
            for slot in &rt.active {
                if let Some(token) = lock(slot).as_ref() {
                    token.cancel_with(CancelReason::Drain);
                }
            }
            for mut job in rt.jobs.drain_all() {
                tind_obs::counter("serve.draining_rejects").incr();
                rt.respond_error(&mut job.stream, &ServeError::draining());
            }
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn lock_read<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn lock_write<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tind_core::QueryPlan;
    use tind_model::{DatasetBuilder, HistoryBuilder, Timeline};

    fn small_dataset() -> Arc<Dataset> {
        let mut b = DatasetBuilder::new(Timeline::new(40));
        b.add_attribute("games", &[(0, vec!["red", "blue"]), (20, vec!["red", "blue", "gold"])], 39);
        b.add_attribute("titles", &[(0, vec!["red", "blue", "gold", "pinball"])], 39);
        b.add_attribute("cities", &[(0, vec!["pallet", "viridian"])], 39);
        Arc::new(b.build())
    }

    /// Successor rewriting attribute 0 and appending one new attribute.
    fn successor(base: &Dataset) -> Arc<Dataset> {
        let tl = base.timeline();
        let mut b = base.clone().into_builder();
        let mut h = HistoryBuilder::new("games");
        let red = base.dictionary().get("red").expect("interned");
        let v = b.dictionary_mut().intern("silver");
        h.push(0, vec![red, v]);
        b.upsert_history(h.finish(tl.last()));
        let mut extra = HistoryBuilder::new("remakes");
        let w = b.dictionary_mut().intern("firered");
        extra.push(5, vec![red, w]);
        b.upsert_history(extra.finish(tl.last()));
        Arc::new(b.build())
    }

    fn constant_params() -> TindParams {
        TindParams::weighted(0.0, 0, WeightFn::constant_one())
    }

    #[test]
    fn delta_swap_never_double_counts_index_bytes() {
        let d = small_dataset();
        let budget = MemoryBudget::new(1 << 30);
        let engine = Engine::build(d.clone(), 0.0, 0, None, 1)
            .with_memory_accounting(Some(budget.clone()));
        let old_bytes = engine.forward().bloom_bytes() + engine.reverse().bloom_bytes();
        assert!(old_bytes > 0);
        assert_eq!(budget.used_bytes(), old_bytes, "initial charge covers the index");

        engine.apply_delta(successor(&d)).expect("valid successor applies");
        let new_bytes = engine.forward().bloom_bytes() + engine.reverse().bloom_bytes();
        assert_eq!(budget.used_bytes(), new_bytes, "post-swap charge tracks the new generation");
        // The regression: while old and new generations coexist, only the
        // increment is charged on top of the old footprint — the peak is
        // the larger generation, never the sum of both.
        assert_eq!(budget.peak_bytes(), old_bytes.max(new_bytes));
        assert!(budget.peak_bytes() < old_bytes + new_bytes, "overlap must be charged once");
    }

    #[test]
    fn plan_cache_is_lru_and_verifies_weights() {
        let d = small_dataset();
        let tl = d.timeline();
        let params = constant_params();
        let cache = PlanCache::new(2);
        let artifacts =
            |id: AttrId| QueryPlan::new(d.attribute(id), &params, tl).artifacts();

        cache.put(0, &params, tl, artifacts(0));
        cache.put(1, &params, tl, artifacts(1));
        assert!(cache.get(0, &params, tl).is_some(), "recency refresh for 0");
        cache.put(2, &params, tl, artifacts(2));
        assert!(cache.get(1, &params, tl).is_none(), "1 was least recent — evicted");
        assert!(cache.get(0, &params, tl).is_some());
        assert!(cache.get(2, &params, tl).is_some());

        // Same (ε, δ) under different weights never serves stale plans.
        let other = TindParams::weighted(0.0, 0, WeightFn::exponential(0.5, tl));
        assert!(cache.get(0, &other, tl).is_none());
        assert!(cache.get(0, &params, tl).is_none(), "mismatched entry was dropped");
    }

    #[test]
    fn apply_delta_evicts_touched_plans_and_result_cache_together() {
        let d = small_dataset();
        let tl = d.timeline();
        let params = constant_params();
        let engine = Engine::build(d.clone(), 0.0, 0, None, 1).with_plan_cache(8);
        let plan = |id: AttrId| QueryPlan::new(d.attribute(id), &params, tl).artifacts();
        engine.plans.put(0, &params, tl, plan(0));
        engine.plans.put(2, &params, tl, plan(2));
        assert_eq!(engine.plans.len(), 2);

        let report = engine.apply_delta(successor(&d)).expect("valid successor applies");
        // The successor rewrites attribute 0 (touched) and appends a new
        // one; the untouched attribute 2's plan survives.
        assert_eq!(report.plans_evicted, 1);
        assert!(engine.plans.get(0, &params, tl).is_none());
        assert!(engine.plans.get(2, &params, tl).is_some());
    }
}
