//! Route table and request-body parsing.
//!
//! Five routes, mirroring the one-shot CLI verbs they wrap:
//!
//! | method | path              | call                          |
//! |--------|-------------------|-------------------------------|
//! | GET    | `/healthz`        | liveness + readiness          |
//! | GET    | `/metrics`        | `tind-obs` registry snapshot  |
//! | POST   | `/search`         | forward tIND search           |
//! | POST   | `/reverse-search` | reverse tIND search           |
//! | POST   | `/explain`        | pairwise violation narrative  |
//! | GET    | `/metrics/history`| time-series registry snapshots|
//! | GET    | `/debug/trace`    | tail-sampled request traces   |
//!
//! Bodies are strict JSON: unknown fields are rejected the same way the
//! CLI rejects unknown options (a typo'd `"epd"` must not silently run
//! with defaults), and every parse failure is a typed 400. The one route
//! that accepts a query string — `/debug/trace?last=N&format=tindtf` —
//! applies the same strictness to its parameters.

use tind_obs::json;

use crate::error::ServeError;
use crate::http::Request;

/// One parsed, routable request.
#[derive(Debug, Clone, PartialEq)]
pub enum ApiCall {
    Healthz,
    Metrics,
    MetricsHistory,
    DebugTrace(TraceSpec),
    Search(QuerySpec),
    ReverseSearch(QuerySpec),
    Explain(ExplainSpec),
}

/// Export format for `/debug/trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceFormat {
    /// JSON array of trace payloads (human/browser friendly).
    #[default]
    Json,
    /// Newline-delimited checksummed `TINDTF` envelopes, one per trace.
    Tindtf,
}

/// Query parameters of `GET /debug/trace`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TraceSpec {
    /// Cap on the number of traces returned (newest/slowest first).
    pub last: Option<usize>,
    pub format: TraceFormat,
}

/// Body of `/search` and `/reverse-search`. Parameters left `None` take
/// the server's defaults (the ones its indices were sized for).
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Attribute name or numeric id.
    pub query: String,
    pub eps: Option<f64>,
    pub delta: Option<u32>,
    pub decay: Option<f64>,
    /// Result names to render (full count is always reported).
    pub limit: Option<usize>,
    /// Per-request deadline override, clamped to the server maximum.
    pub timeout_ms: Option<u64>,
}

/// Body of `/explain`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainSpec {
    pub lhs: String,
    pub rhs: String,
    pub eps: Option<f64>,
    pub delta: Option<u32>,
    pub decay: Option<f64>,
    pub timeout_ms: Option<u64>,
}

impl ApiCall {
    /// The client-requested deadline override, if the call carries one.
    pub fn timeout_ms(&self) -> Option<u64> {
        match self {
            ApiCall::Search(q) | ApiCall::ReverseSearch(q) => q.timeout_ms,
            ApiCall::Explain(e) => e.timeout_ms,
            _ => None,
        }
    }
}

/// Resolves a request to a call, or to the typed error the client gets.
pub fn route(req: &Request) -> Result<ApiCall, ServeError> {
    if let Some((path, query)) = split_trace_path(&req.path) {
        return match req.method.as_str() {
            "GET" => Ok(ApiCall::DebugTrace(parse_trace_spec(query)?)),
            _ => Err(ServeError::method_not_allowed(&req.method, path)),
        };
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Ok(ApiCall::Healthz),
        ("GET", "/metrics") => Ok(ApiCall::Metrics),
        ("GET", "/metrics/history") => Ok(ApiCall::MetricsHistory),
        ("POST", "/search") => Ok(ApiCall::Search(parse_query_spec(&req.body)?)),
        ("POST", "/reverse-search") => Ok(ApiCall::ReverseSearch(parse_query_spec(&req.body)?)),
        ("POST", "/explain") => Ok(ApiCall::Explain(parse_explain_spec(&req.body)?)),
        (
            _,
            "/healthz" | "/metrics" | "/metrics/history" | "/search" | "/reverse-search"
            | "/explain",
        ) => Err(ServeError::method_not_allowed(&req.method, &req.path)),
        _ => Err(ServeError::not_found(&req.path)),
    }
}

/// Splits `/debug/trace[?query]` into path and query string. Query strings
/// are only recognised on this route; everywhere else `?` stays part of
/// the (unroutable) path.
fn split_trace_path(raw: &str) -> Option<(&str, &str)> {
    let (path, query) = match raw.split_once('?') {
        Some((p, q)) => (p, q),
        None => (raw, ""),
    };
    (path == "/debug/trace").then_some((path, query))
}

fn parse_trace_spec(query: &str) -> Result<TraceSpec, ServeError> {
    let mut spec = TraceSpec::default();
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match key {
            "last" => {
                let n: usize = value.parse().map_err(|_| {
                    ServeError::bad_request(format!(
                        "parameter 'last' must be a non-negative integer, got '{value}'"
                    ))
                })?;
                spec.last = Some(n);
            }
            "format" => {
                spec.format = match value {
                    "json" => TraceFormat::Json,
                    "tindtf" => TraceFormat::Tindtf,
                    other => {
                        return Err(ServeError::bad_request(format!(
                            "parameter 'format' must be 'json' or 'tindtf', got '{other}'"
                        )));
                    }
                };
            }
            other => {
                return Err(ServeError::bad_request(format!("unknown parameter '{other}'")));
            }
        }
    }
    Ok(spec)
}

fn parse_body(body: &[u8]) -> Result<Vec<(String, json::Value)>, ServeError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ServeError::bad_request("body is not UTF-8"))?;
    let value = json::parse(text)
        .map_err(|e| ServeError::bad_request(format!("body is not valid JSON: {e}")))?;
    match value {
        json::Value::Obj(fields) => Ok(fields),
        _ => Err(ServeError::bad_request("body must be a JSON object")),
    }
}

fn num_field<T>(
    name: &str,
    value: &json::Value,
    convert: impl FnOnce(f64) -> Option<T>,
) -> Result<T, ServeError> {
    value
        .as_f64()
        .and_then(convert)
        .ok_or_else(|| ServeError::bad_request(format!("field '{name}' has the wrong type")))
}

fn parse_query_spec(body: &[u8]) -> Result<QuerySpec, ServeError> {
    let mut spec = QuerySpec {
        query: String::new(),
        eps: None,
        delta: None,
        decay: None,
        limit: None,
        timeout_ms: None,
    };
    let mut saw_query = false;
    for (key, value) in parse_body(body)? {
        match key.as_str() {
            "query" => {
                spec.query = value
                    .as_str()
                    .ok_or_else(|| ServeError::bad_request("field 'query' must be a string"))?
                    .to_string();
                saw_query = true;
            }
            "eps" => spec.eps = Some(num_field("eps", &value, Some)?),
            "delta" => {
                spec.delta = Some(num_field("delta", &value, |v| {
                    (v >= 0.0 && v.fract() == 0.0 && v <= f64::from(u32::MAX)).then_some(v as u32)
                })?);
            }
            "decay" => spec.decay = Some(num_field("decay", &value, Some)?),
            "limit" => {
                spec.limit = Some(num_field("limit", &value, |v| {
                    (v >= 0.0 && v.fract() == 0.0).then_some(v as usize)
                })?);
            }
            "timeout_ms" => {
                spec.timeout_ms = Some(num_field("timeout_ms", &value, |v| {
                    (v >= 0.0 && v.fract() == 0.0).then_some(v as u64)
                })?);
            }
            other => {
                return Err(ServeError::bad_request(format!("unknown field '{other}'")));
            }
        }
    }
    if !saw_query {
        return Err(ServeError::bad_request("missing required field 'query'"));
    }
    Ok(spec)
}

fn parse_explain_spec(body: &[u8]) -> Result<ExplainSpec, ServeError> {
    let mut spec = ExplainSpec {
        lhs: String::new(),
        rhs: String::new(),
        eps: None,
        delta: None,
        decay: None,
        timeout_ms: None,
    };
    let (mut saw_lhs, mut saw_rhs) = (false, false);
    for (key, value) in parse_body(body)? {
        match key.as_str() {
            "lhs" => {
                spec.lhs = value
                    .as_str()
                    .ok_or_else(|| ServeError::bad_request("field 'lhs' must be a string"))?
                    .to_string();
                saw_lhs = true;
            }
            "rhs" => {
                spec.rhs = value
                    .as_str()
                    .ok_or_else(|| ServeError::bad_request("field 'rhs' must be a string"))?
                    .to_string();
                saw_rhs = true;
            }
            "eps" => spec.eps = Some(num_field("eps", &value, Some)?),
            "delta" => {
                spec.delta = Some(num_field("delta", &value, |v| {
                    (v >= 0.0 && v.fract() == 0.0 && v <= f64::from(u32::MAX)).then_some(v as u32)
                })?);
            }
            "decay" => spec.decay = Some(num_field("decay", &value, Some)?),
            "timeout_ms" => {
                spec.timeout_ms = Some(num_field("timeout_ms", &value, |v| {
                    (v >= 0.0 && v.fract() == 0.0).then_some(v as u64)
                })?);
            }
            other => {
                return Err(ServeError::bad_request(format!("unknown field '{other}'")));
            }
        }
    }
    if !saw_lhs || !saw_rhs {
        return Err(ServeError::bad_request("missing required fields 'lhs' and 'rhs'"));
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(method: &str, path: &str, body: &str) -> Request {
        Request {
            method: method.into(),
            path: path.into(),
            body: body.as_bytes().to_vec(),
            force_trace: false,
        }
    }

    #[test]
    fn routes_the_full_table() {
        assert_eq!(route(&req("GET", "/healthz", "")), Ok(ApiCall::Healthz));
        assert_eq!(route(&req("GET", "/metrics", "")), Ok(ApiCall::Metrics));
        assert_eq!(route(&req("GET", "/metrics/history", "")), Ok(ApiCall::MetricsHistory));
        assert_eq!(
            route(&req("GET", "/debug/trace", "")),
            Ok(ApiCall::DebugTrace(TraceSpec::default()))
        );
        assert!(matches!(
            route(&req("POST", "/search", "{\"query\":\"a\"}")),
            Ok(ApiCall::Search(_))
        ));
        assert!(matches!(
            route(&req("POST", "/reverse-search", "{\"query\":\"a\"}")),
            Ok(ApiCall::ReverseSearch(_))
        ));
        assert!(matches!(
            route(&req("POST", "/explain", "{\"lhs\":\"a\",\"rhs\":\"b\"}")),
            Ok(ApiCall::Explain(_))
        ));
    }

    #[test]
    fn wrong_method_is_405_and_unknown_path_404() {
        assert_eq!(route(&req("POST", "/healthz", "")).unwrap_err().status, 405);
        assert_eq!(route(&req("GET", "/search", "")).unwrap_err().status, 405);
        assert_eq!(route(&req("POST", "/metrics/history", "")).unwrap_err().status, 405);
        assert_eq!(route(&req("POST", "/debug/trace?last=3", "")).unwrap_err().status, 405);
        assert_eq!(route(&req("GET", "/nope", "")).unwrap_err().status, 404);
        // Query strings are only meaningful on /debug/trace.
        assert_eq!(route(&req("GET", "/metrics?last=3", "")).unwrap_err().status, 404);
    }

    #[test]
    fn debug_trace_query_parameters_parse_strictly() {
        let call = route(&req("GET", "/debug/trace?last=7&format=tindtf", "")).expect("route");
        assert_eq!(
            call,
            ApiCall::DebugTrace(TraceSpec { last: Some(7), format: TraceFormat::Tindtf })
        );
        let call = route(&req("GET", "/debug/trace?format=json", "")).expect("route");
        assert_eq!(
            call,
            ApiCall::DebugTrace(TraceSpec { last: None, format: TraceFormat::Json })
        );
        for path in [
            "/debug/trace?last=x",
            "/debug/trace?last=-1",
            "/debug/trace?format=xml",
            "/debug/trace?lsat=3",
        ] {
            let err = route(&req("GET", path, "")).unwrap_err();
            assert_eq!(err.status, 400, "path {path:?} → {err:?}");
        }
    }

    #[test]
    fn full_query_spec_parses() {
        let call = route(&req(
            "POST",
            "/search",
            "{\"query\":\"source-1\",\"eps\":2.5,\"delta\":14,\"decay\":0.1,\"limit\":5,\"timeout_ms\":250}",
        ))
        .expect("route");
        let ApiCall::Search(spec) = call else { panic!("not a search") };
        assert_eq!(spec.query, "source-1");
        assert_eq!(spec.eps, Some(2.5));
        assert_eq!(spec.delta, Some(14));
        assert_eq!(spec.decay, Some(0.1));
        assert_eq!(spec.limit, Some(5));
        assert_eq!(spec.timeout_ms, Some(250));
    }

    #[test]
    fn malformed_json_unknown_field_and_bad_types_are_400() {
        for body in [
            "{not json",
            "[1,2]",
            "{\"query\":\"a\",\"epd\":1}",
            "{\"query\":7}",
            "{\"query\":\"a\",\"delta\":1.5}",
            "{\"eps\":1}",
        ] {
            let err = route(&req("POST", "/search", body)).unwrap_err();
            assert_eq!(err.status, 400, "body {body:?} → {err:?}");
            assert_eq!(err.code, "bad_request");
        }
    }
}
