//! `tind-serve` — a fault-contained concurrent query daemon over a hot
//! in-memory tIND index.
//!
//! The one-shot CLI rebuilds its index per invocation; this crate keeps
//! the index resident and serves `search`, `reverse-search`, and
//! `explain` over a hand-rolled HTTP/1.1 JSON interface (no external
//! dependencies — `std::net` only). The design goal is *robustness
//! under misuse*, in the same spirit as the ingestion pipeline's
//! quarantine model:
//!
//! * **Admission control** — both pipeline queues are bounded; overload
//!   sheds with typed 429s carrying depth-derived `retry_after_ms`
//!   hints instead of buffering until collapse.
//! * **Deadlines** — every request carries a [`tind_core::CancelToken`]
//!   deadline propagated into the engine; expiry is a typed 504, never
//!   a hung socket.
//! * **Hostile transport** — slow-loris clients hit a read budget
//!   (408), oversized bodies are rejected on their *declared* length
//!   (413), malformed requests get typed 400s.
//! * **Panic containment** — a panicking query is quarantined into a
//!   typed 500; the worker thread survives.
//! * **Graceful degradation** — under a [`tind_model::MemoryBudget`],
//!   request coalescing shrinks first, then whole requests shed (503).
//! * **Graceful drain** — SIGINT/SIGTERM stops admission, finishes or
//!   deadline-cancels in-flight work (reason `Drain` past the grace
//!   period), and reports whether the drain was clean.
//! * **Degraded serving** — an index loaded from a sharded store
//!   (`tind_core::store`) with quarantined shards still comes up:
//!   `/healthz` reports `degraded` with the live-shard fraction, queries
//!   over lost attribute ranges answer a typed `shard_unavailable` 503,
//!   everything else answers normally (marked `partial`), and background
//!   re-verification promotes back to `serving` once the store is
//!   repaired.
//!
//! Responses are deterministic modulo the `elapsed_ms` field: the
//! differential suite pins serve output byte-equal to one-shot CLI
//! output on the same index and parameters.

pub mod admission;
pub mod error;
pub mod http;
pub mod router;
pub mod server;

pub use error::{reason_phrase, ServeError};
pub use router::{ApiCall, ExplainSpec, QuerySpec};
pub use server::{
    Engine, EngineDeltaReport, EngineHook, ServeConfig, ServeFaultHook, ServeOutcome, Server,
};
