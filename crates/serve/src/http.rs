//! Minimal HTTP/1.1 request reader and response writer over a
//! `TcpStream` — hand-rolled per the workspace's no-external-deps
//! policy, and deliberately hostile-input-first:
//!
//! * the whole request (head + body) must arrive within a fixed *read
//!   budget*, so a slow-loris client that dribbles one byte per poll is
//!   cut off with a typed 408 instead of pinning a reader thread;
//! * the head and the declared body size are capped, and an oversized
//!   `Content-Length` is rejected *before* any body byte is read;
//! * responses always carry `Content-Length` and `Connection: close`,
//!   so a client never waits on a socket the server has finished with.
//!
//! Only what the serve router needs is implemented: a request line,
//! headers (of which just `Content-Length` is interpreted), an optional
//! body. No keep-alive, no chunked encoding, no continuations.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Caps and budgets applied while reading one request.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Maximum bytes of request line + headers.
    pub max_header_bytes: usize,
    /// Maximum declared `Content-Length`.
    pub max_body_bytes: usize,
    /// Wall-clock budget for receiving the complete request.
    pub read_budget: Duration,
}

/// A parsed request: exactly the shape the router consumes.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
    /// The client sent `X-Tind-Trace: 1` — force-sample this request's
    /// trace and echo the allocated trace id back in the response.
    pub force_trace: bool,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The read budget elapsed before the request completed (slow-loris).
    Timeout,
    /// Request head grew past `max_header_bytes`.
    HeaderTooLarge,
    /// Declared `Content-Length` exceeds `max_body_bytes`.
    BodyTooLarge {
        /// The declared length.
        got: usize,
    },
    /// Syntactically broken request line or headers.
    Malformed(&'static str),
    /// The peer closed before sending a complete request; if nothing was
    /// sent at all the connection is silently dropped.
    Closed,
    /// Transport failure.
    Io(std::io::Error),
}

/// Granularity of individual socket reads; small so the budget check in
/// the read loop runs often regardless of the socket's own timeout.
const POLL_TIMEOUT: Duration = Duration::from_millis(50);

/// Reads one full request within `limits`. The stream's read timeout is
/// clamped to a short poll interval for the duration of the call.
pub fn read_request(stream: &mut TcpStream, limits: &HttpLimits) -> Result<Request, HttpError> {
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(POLL_TIMEOUT));

    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 4096];

    // Phase 1: accumulate until the blank line ends the head.
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > limits.max_header_bytes {
            return Err(HttpError::HeaderTooLarge);
        }
        if started.elapsed() >= limits.read_budget {
            return Err(HttpError::Timeout);
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(if buf.is_empty() { HttpError::Closed } else {
                    HttpError::Malformed("connection closed mid-head")
                });
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(HttpError::Io(e)),
        }
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => return Err(HttpError::Malformed("bad request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }

    let mut content_length = 0usize;
    let mut force_trace = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("bad header line"));
        };
        let name = name.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed("bad Content-Length"))?;
        } else if name.eq_ignore_ascii_case("x-tind-trace") {
            // Anything except an explicit opt-out forces the sample; the
            // documented spelling is `X-Tind-Trace: 1`.
            force_trace = !matches!(value.trim(), "0" | "false" | "");
        }
    }
    // The oversize check runs on the *declared* length, before the body
    // is pulled off the wire.
    if content_length > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge { got: content_length });
    }

    // Phase 2: the body; part of it may already sit in `buf`.
    let body_start = head_end + 4;
    let mut body: Vec<u8> = buf[body_start.min(buf.len())..].to_vec();
    while body.len() < content_length {
        if started.elapsed() >= limits.read_budget {
            return Err(HttpError::Timeout);
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(HttpError::Malformed("connection closed mid-body")),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    body.truncate(content_length);

    Ok(Request { method: method.to_string(), path: path.to_string(), body, force_trace })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes a complete response and flushes. The body is always JSON; the
/// connection is always announced as closing.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &str,
) -> std::io::Result<()> {
    write_response_with(stream, status, reason, body, &[])
}

/// [`write_response`] plus extra response headers (e.g. the
/// `X-Tind-Trace-Id` echo on force-sampled requests). Header names and
/// values are caller-controlled constants, never client input.
pub fn write_response_with(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &str,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    let mut head = format!("HTTP/1.1 {status} {reason}\r\n");
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!(
        "Content-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    ));
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Briefly drains and discards unread request bytes so closing the
/// socket doesn't turn into a TCP RST that destroys the in-flight error
/// response (unread data at close ⇒ reset, and the peer never sees the
/// 413/431 it was owed). Bounded in both bytes and time, so a hostile
/// writer cannot pin the reader here.
pub fn drain_before_close(stream: &mut TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut sink = [0u8; 4096];
    for _ in 0..64 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn limits() -> HttpLimits {
        HttpLimits {
            max_header_bytes: 4096,
            max_body_bytes: 1024,
            read_budget: Duration::from_millis(500),
        }
    }

    /// Runs `client` against a paired connection and reads one request
    /// from the server side.
    fn roundtrip(client: impl FnOnce(&mut TcpStream) + Send + 'static) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).expect("connect");
            client(&mut c);
            // Keep the socket open until the server is done parsing.
            std::thread::sleep(Duration::from_millis(700));
        });
        let (mut server, _) = listener.accept().expect("accept");
        let result = read_request(&mut server, &limits());
        drop(server);
        handle.join().expect("client thread");
        result
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = roundtrip(|c| {
            c.write_all(b"POST /search HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}")
                .expect("write");
        })
        .expect("parse");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/search");
        assert_eq!(req.body, b"{\"a\":1}");
    }

    #[test]
    fn parses_a_get_without_content_length() {
        let req = roundtrip(|c| {
            c.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").expect("write");
        })
        .expect("parse");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn trace_header_is_captured_case_insensitively() {
        let req = roundtrip(|c| {
            c.write_all(b"POST /search HTTP/1.1\r\nx-tind-TRACE: 1\r\nContent-Length: 2\r\n\r\n{}")
                .expect("write");
        })
        .expect("parse");
        assert!(req.force_trace);

        let req = roundtrip(|c| {
            c.write_all(b"POST /search HTTP/1.1\r\nX-Tind-Trace: 0\r\nContent-Length: 2\r\n\r\n{}")
                .expect("write");
        })
        .expect("parse");
        assert!(!req.force_trace, "explicit opt-out is honored");

        let req = roundtrip(|c| {
            c.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").expect("write");
        })
        .expect("parse");
        assert!(!req.force_trace, "absent header defaults off");
    }

    #[test]
    fn slow_loris_hits_the_read_budget() {
        let err = roundtrip(|c| {
            // Dribble a valid prefix, then stall past the budget.
            c.write_all(b"GET /hea").expect("write");
        });
        assert!(matches!(err, Err(HttpError::Timeout)), "got {err:?}");
    }

    #[test]
    fn oversized_declared_body_is_rejected_before_reading_it() {
        let err = roundtrip(|c| {
            c.write_all(b"POST /search HTTP/1.1\r\nContent-Length: 99999\r\n\r\n").expect("write");
        });
        assert!(matches!(err, Err(HttpError::BodyTooLarge { got: 99999 })), "got {err:?}");
    }

    #[test]
    fn oversized_head_is_rejected() {
        let err = roundtrip(|c| {
            let long = format!("GET /x HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(8192));
            c.write_all(long.as_bytes()).expect("write");
        });
        assert!(matches!(err, Err(HttpError::HeaderTooLarge)), "got {err:?}");
    }

    #[test]
    fn malformed_request_line_is_typed() {
        let err = roundtrip(|c| {
            c.write_all(b"NONSENSE\r\n\r\n").expect("write");
        });
        assert!(matches!(err, Err(HttpError::Malformed(_))), "got {err:?}");
    }

    #[test]
    fn response_writer_emits_content_length_and_close() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).expect("connect");
            let mut out = String::new();
            c.read_to_string(&mut out).expect("read");
            out
        });
        let (mut server, _) = listener.accept().expect("accept");
        write_response(&mut server, 429, "Too Many Requests", "{\"x\":1}").expect("write");
        drop(server);
        let out = handle.join().expect("client");
        assert!(out.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(out.contains("Content-Length: 7\r\n"));
        assert!(out.contains("Connection: close\r\n"));
        assert!(out.ends_with("{\"x\":1}"));
    }

    #[test]
    fn response_writer_carries_extra_headers() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).expect("connect");
            let mut out = String::new();
            c.read_to_string(&mut out).expect("read");
            out
        });
        let (mut server, _) = listener.accept().expect("accept");
        write_response_with(&mut server, 200, "OK", "{}", &[("X-Tind-Trace-Id", "0xabc")])
            .expect("write");
        drop(server);
        let out = handle.join().expect("client");
        assert!(out.contains("X-Tind-Trace-Id: 0xabc\r\n"));
        assert!(out.contains("Connection: close\r\n"));
        assert!(out.ends_with("{}"));
    }
}
