//! Bounded admission queue: the single backpressure point of the serve
//! pipeline.
//!
//! `try_push` never blocks — when the queue is at capacity the item
//! comes straight back to the caller, which turns it into a typed 429
//! with a `retry_after_ms` hint derived from the depth. `pop_wait`
//! blocks consumers on a condvar; `close()` wakes everyone, after which
//! the queue drains to empty and then yields `None`. `drain_matching`
//! lets a worker pull queued *compatible* jobs into the wave it is about
//! to execute (request coalescing).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// A bounded MPMC queue with explicit shedding and close-to-drain
/// semantics.
pub struct Admission<T> {
    inner: Mutex<Inner<T>>,
    cond: Condvar,
    capacity: usize,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> Admission<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Admission<T> {
        Admission {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            cond: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Enqueues `item`, returning the new depth, or hands it back when
    /// the queue is full or closed — the caller owns the shed response.
    pub fn try_push(&self, item: T) -> Result<usize, T> {
        let mut inner = self.lock();
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.cond.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// empty (`None`). Closed-but-nonempty queues keep yielding items,
    /// which is what lets a graceful drain finish queued work.
    pub fn pop_wait(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            // Timed wait as a spurious-wakeup / missed-notify backstop.
            let (guard, _) = self
                .cond
                .wait_timeout(inner, Duration::from_millis(50))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            inner = guard;
        }
    }

    /// Removes up to `max` queued items satisfying `pred`, preserving the
    /// relative order of everything else.
    pub fn drain_matching(&self, mut pred: impl FnMut(&T) -> bool, max: usize) -> Vec<T> {
        let mut inner = self.lock();
        let mut taken = Vec::new();
        let mut kept = VecDeque::with_capacity(inner.items.len());
        while let Some(item) = inner.items.pop_front() {
            if taken.len() < max && pred(&item) {
                taken.push(item);
            } else {
                kept.push_back(item);
            }
        }
        inner.items = kept;
        taken
    }

    /// Removes and returns everything currently queued (drain-grace
    /// shedding).
    pub fn drain_all(&self) -> Vec<T> {
        self.lock().items.drain(..).collect()
    }

    /// Stops admission and wakes all consumers; queued items still drain.
    pub fn close(&self) {
        self.lock().closed = true;
        self.cond.notify_all();
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_at_capacity() {
        let q = Admission::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(3), "third item is shed, not queued");
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn close_drains_then_yields_none() {
        let q = Admission::new(4);
        q.try_push(1).expect("push");
        q.try_push(2).expect("push");
        q.close();
        assert_eq!(q.try_push(3), Err(3), "closed queue admits nothing");
        assert_eq!(q.pop_wait(), Some(1), "queued items still drain");
        assert_eq!(q.pop_wait(), Some(2));
        assert_eq!(q.pop_wait(), None);
    }

    #[test]
    fn drain_matching_preserves_order_of_the_rest() {
        let q = Admission::new(8);
        for i in 1..=6 {
            q.try_push(i).expect("push");
        }
        let even = q.drain_matching(|v| v % 2 == 0, 2);
        assert_eq!(even, vec![2, 4]);
        assert_eq!(q.pop_wait(), Some(1));
        assert_eq!(q.pop_wait(), Some(3));
        assert_eq!(q.pop_wait(), Some(5));
        assert_eq!(q.pop_wait(), Some(6), "beyond-max match stays queued");
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_close() {
        let q = Arc::new(Admission::<u32>::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop_wait() {
                    got.push(v);
                }
                got
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(7).expect("push");
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().expect("join"), vec![7]);
    }
}
