#!/usr/bin/env bash
# End-to-end smoke for `tind serve`: boot the daemon on an ephemeral
# port, query it over raw TCP (no curl dependency — bash /dev/tcp), drain
# it with SIGINT, assert the 130 exit code, and schema-verify the flushed
# TINDRR report.
#
# Usage: devtools/serve-smoke.sh path/to/tind [scratch-dir]

set -euo pipefail
cd "$(dirname "$0")/.."

TIND="$1"
SCRATCH="${2:-$(dirname "$TIND")}"
DATA="$SCRATCH/serve-smoke.tind"
PORT_FILE="$SCRATCH/serve-smoke-port.txt"
REPORT="$SCRATCH/serve-smoke-report.json"
rm -f "$PORT_FILE" "$REPORT"

"$TIND" generate --attributes 80 --preset small --seed 7 \
    --out "$DATA" >/dev/null

"$TIND" serve --data "$DATA" --port 0 --port-file "$PORT_FILE" \
    --report "$REPORT" --quiet &
PID=$!
trap 'kill -9 "$PID" 2>/dev/null || true' EXIT

fail() { echo "serve-smoke: $1" >&2; exit 1; }

PORT=""
for _ in $(seq 1 200); do
    kill -0 "$PID" 2>/dev/null || fail "daemon died during startup"
    if [ -s "$PORT_FILE" ]; then
        PORT=$(tr -d '[:space:]' <"$PORT_FILE")
        [ -n "$PORT" ] && break
    fi
    sleep 0.05
done
[ -n "$PORT" ] || fail "no port published within 10s"

# One HTTP exchange over /dev/tcp; the server closes the connection after
# each response, so reading to EOF captures the whole reply.
http() { # method path body
    local body="${3:-}"
    exec 3<>"/dev/tcp/127.0.0.1/$PORT"
    printf '%s %s HTTP/1.1\r\nContent-Length: %s\r\n\r\n%s' \
        "$1" "$2" "${#body}" "$body" >&3
    cat <&3
    exec 3<&- 3>&-
}

for _ in $(seq 1 200); do
    http GET /healthz | grep -q '"serving"' && break
    sleep 0.05
done
http GET /healthz | grep -q '"serving"' || fail "daemon never reached serving"

http POST /search '{"query":"source-1","limit":5}' \
    | grep -q '"result_count"' || fail "search response malformed"
http GET /metrics | grep -q 'serve\.' || fail "metrics missing serve.* family"

kill -INT "$PID"
EXIT=0
wait "$PID" || EXIT=$?
trap - EXIT
[ "$EXIT" = 130 ] || fail "expected exit 130 after SIGINT, got $EXIT"

[ -s "$REPORT" ] || fail "report was not flushed on drain"
"$TIND" verify "$REPORT" --schema devtools/report-schema.json

echo "serve-smoke: passed (port $PORT, exit $EXIT, report verified)"
