#!/usr/bin/env bash
# End-to-end smoke for live updates (`tind update`): ingest a base dump,
# build an index, apply a delta dump (one revised page with its full
# extended history + one brand-new page) with in-place semi-naive index
# maintenance, and assert the delta-oracle pin — the maintained index is
# byte-identical to a cold rebuild over the merged dataset. Also walks
# the TINDUC checkpoint path (deadline interrupt → exit 130 → `tind
# verify` sniffs the checkpoint → resume → byte-identical dataset) and
# schema-verifies the TINDRR run report the update flushes.
#
# Usage: devtools/update-smoke.sh path/to/tind [scratch-dir]

set -euo pipefail
cd "$(dirname "$0")/.."

TIND="$1"
SCRATCH="${2:-$(dirname "$TIND")}"
BASE_XML="$SCRATCH/update-smoke-base.xml"
DELTA_XML="$SCRATCH/update-smoke-delta.xml"
BASE="$SCRATCH/update-smoke-base.tind"
MERGED="$SCRATCH/update-smoke-merged.tind"
RESUMED="$SCRATCH/update-smoke-resumed.tind"
SINK="$SCRATCH/update-smoke-sink.tind"
IDX="$SCRATCH/update-smoke-base.tidx"
IDX_INCR="$SCRATCH/update-smoke-incr.tidx"
IDX_COLD="$SCRATCH/update-smoke-cold.tidx"
CKPT="$SCRATCH/update-smoke.tuc"
REPORT="$SCRATCH/update-smoke-report.json"
rm -f "$CKPT"

fail() { echo "update-smoke: $1" >&2; exit 1; }

GAMES=(Red Blue Gold Silver Crystal Ruby Sapphire Emerald Pearl Diamond Platinum Black)

page() { # title id revisions — a page's FULL history, one growing table per revision
    local title="$1" id="$2" revs="$3" i g
    printf '<page><title>%s</title><id>%s</id>' "$title" "$id"
    for ((i = 0; i < revs; i++)); do
        printf '<revision><timestamp>2001-0%s-01T00:00:00Z</timestamp><text>{|\n! Game\n' \
            "$((i + 2))"
        for g in "${GAMES[@]:0:5+i}"; do printf -- '|-\n| %s\n' "$g"; done
        printf '|}</text></revision>'
    done
    printf '</page>'
}

# --- Day 0: base dump → dataset → index.
{ echo '<mediawiki>'; page Alpha 1 6; page Beta 2 6; echo '</mediawiki>'; } >"$BASE_XML"
"$TIND" ingest --dump "$BASE_XML" --out "$BASE" --quiet >/dev/null \
    || fail "base ingest failed"
"$TIND" index --data "$BASE" --out "$IDX" --m 256 >/dev/null || fail "base index failed"

# --- Day 1: delta dump = full history of the changed page (Alpha grew
# two revisions) plus a new page (Gamma). Untouched Beta is absent.
{ echo '<mediawiki>'; page Alpha 1 8; page Gamma 3 6; echo '</mediawiki>'; } >"$DELTA_XML"
OUT=$("$TIND" update --dump "$DELTA_XML" --data "$BASE" --out "$MERGED" \
    --index "$IDX" --index-out "$IDX_INCR" --report "$REPORT" --quiet) \
    || fail "update failed"
echo "$OUT" | grep -q '2 attribute(s) touched' || fail "expected 2 touched attributes: $OUT"
echo "$OUT" | grep -q 'dataset written to' || fail "no merged dataset reported: $OUT"

# --- The delta-oracle pin: the incrementally maintained index is
# byte-identical to a cold rebuild over the merged dataset.
"$TIND" index --data "$MERGED" --out "$IDX_COLD" --m 256 >/dev/null \
    || fail "cold rebuild failed"
cmp -s "$IDX_INCR" "$IDX_COLD" \
    || fail "maintained index differs from the cold rebuild (delta oracle violated)"
"$TIND" verify "$IDX_INCR" --data "$MERGED" | grep -q 'OK' \
    || fail "maintained index failed verification"
"$TIND" verify "$REPORT" --schema devtools/report-schema.json >/dev/null \
    || fail "update run report failed schema verification"

# --- Kill/resume through the TINDUC checkpoint: a zero deadline
# interrupts with exit 130 before the first page, `tind verify` sniffs
# the checkpoint format, and the resumed run merges byte-identically.
EXIT=0
"$TIND" update --dump "$DELTA_XML" --data "$BASE" --out "$SINK" \
    --checkpoint "$CKPT" --deadline 0 --quiet >/dev/null 2>&1 || EXIT=$?
[ "$EXIT" = 130 ] || fail "expected exit 130 from a zero deadline, got $EXIT"
"$TIND" verify "$CKPT" | grep -q 'update checkpoint:' \
    || fail "verify did not sniff the TINDUC checkpoint"
"$TIND" update --dump "$DELTA_XML" --data "$BASE" --out "$RESUMED" \
    --checkpoint "$CKPT" --resume --quiet >/dev/null || fail "resumed update failed"
cmp -s "$MERGED" "$RESUMED" \
    || fail "resumed update produced a different merged dataset"

echo "update-smoke: passed (2 attrs touched, maintained index byte-identical, resume clean)"
