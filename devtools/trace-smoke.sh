#!/usr/bin/env bash
# End-to-end smoke for request tracing: boot the daemon, force-sample a
# /search trace (X-Tind-Trace: 1), pull it back through
# /debug/trace?format=tindtf and /metrics/history, then render and
# checksum-verify the exported TINDTF file with the CLI. Also exercises
# the one-shot path: `tind search --trace` → `tind trace` → `tind verify`.
#
# Usage: devtools/trace-smoke.sh path/to/tind [scratch-dir]

set -euo pipefail
cd "$(dirname "$0")/.."

TIND="$1"
SCRATCH="${2:-$(dirname "$TIND")}"
DATA="$SCRATCH/trace-smoke.tind"
PORT_FILE="$SCRATCH/trace-smoke-port.txt"
TRACE="$SCRATCH/trace-smoke.tindtf"
CLI_TRACE="$SCRATCH/trace-smoke-cli.tindtf"
CHROME="$SCRATCH/trace-smoke-chrome.json"
rm -f "$PORT_FILE" "$TRACE" "$CLI_TRACE" "$CHROME"

fail() { echo "trace-smoke: $1" >&2; exit 1; }

"$TIND" generate --attributes 80 --preset small --seed 7 \
    --out "$DATA" >/dev/null

# --- One-shot CLI path -------------------------------------------------
"$TIND" search --data "$DATA" --query source-1 --trace "$CLI_TRACE" \
    >/dev/null
[ -s "$CLI_TRACE" ] || fail "search --trace wrote no file"
"$TIND" verify "$CLI_TRACE" | grep -q 'trace:' \
    || fail "CLI trace failed verification"
"$TIND" trace "$CLI_TRACE" | grep -q 'cli.search' \
    || fail "CLI trace waterfall missing the root span"

# --- Daemon path -------------------------------------------------------
"$TIND" serve --data "$DATA" --port 0 --port-file "$PORT_FILE" \
    --trace-last 4 --quiet &
PID=$!
trap 'kill -9 "$PID" 2>/dev/null || true' EXIT

PORT=""
for _ in $(seq 1 200); do
    kill -0 "$PID" 2>/dev/null || fail "daemon died during startup"
    if [ -s "$PORT_FILE" ]; then
        PORT=$(tr -d '[:space:]' <"$PORT_FILE")
        [ -n "$PORT" ] && break
    fi
    sleep 0.05
done
[ -n "$PORT" ] || fail "no port published within 10s"

http() { # method path body [extra-header]
    local body="${3:-}" extra="${4:-}"
    exec 3<>"/dev/tcp/127.0.0.1/$PORT"
    printf '%s %s HTTP/1.1\r\nContent-Length: %s\r\n%s\r\n%s' \
        "$1" "$2" "${#body}" "${extra:+$extra$'\r\n'}" "$body" >&3
    cat <&3
    exec 3<&- 3>&-
}

for _ in $(seq 1 200); do
    http GET /healthz | grep -q '"serving"' && break
    sleep 0.05
done
http GET /healthz | grep -q '"serving"' || fail "daemon never reached serving"

# Force-sample one search; the response must name its trace id.
RESPONSE=$(http POST /search '{"query":"source-1","limit":5}' 'X-Tind-Trace: 1')
echo "$RESPONSE" | grep -q '"result_count"' || fail "traced search malformed"
TRACE_ID=$(echo "$RESPONSE" | tr -d '\r' \
    | sed -n 's/^X-Tind-Trace-Id: //p' | head -1)
[ -n "$TRACE_ID" ] || fail "forced sample returned no X-Tind-Trace-Id"

# The trace becomes exportable once its wave closes; poll briefly.
FOUND=""
for _ in $(seq 1 100); do
    BODY=$(http GET '/debug/trace?format=tindtf' || true)
    if echo "$BODY" | grep -q "$TRACE_ID"; then
        FOUND=1
        break
    fi
    sleep 0.05
done
[ -n "$FOUND" ] || fail "forced trace $TRACE_ID never appeared in /debug/trace"
echo "$BODY" | sed -n '/^{"magic":"TINDTF/p' | grep "$TRACE_ID" | head -1 >"$TRACE"
[ -s "$TRACE" ] || fail "could not extract the TINDTF line"

http GET '/debug/trace?format=json' | grep -q '"dropped_spans_total"' \
    || fail "/debug/trace json missing loss accounting"
http GET /metrics/history | grep -q '"ticks"' \
    || fail "/metrics/history malformed"
http GET /metrics | grep -q 'serve\.latency\.search\.exec_ns' \
    || fail "per-endpoint latency histograms missing"

kill -INT "$PID"
EXIT=0
wait "$PID" || EXIT=$?
trap - EXIT
[ "$EXIT" = 130 ] || fail "expected exit 130 after SIGINT, got $EXIT"

# The exported daemon trace verifies, renders, and exports Chrome JSON.
"$TIND" verify "$TRACE" | grep -q 'trace:' || fail "exported trace corrupt"
"$TIND" trace "$TRACE" | grep -q 'serve.request' \
    || fail "waterfall missing serve.request"
"$TIND" trace "$TRACE" | grep -q 'serve.wave' \
    || fail "waterfall missing the shared wave span"
"$TIND" trace "$TRACE" --chrome "$CHROME" >/dev/null
grep -q '"ph":"X"' "$CHROME" || fail "Chrome export malformed"

echo "trace-smoke: passed (port $PORT, trace $TRACE_ID verified + rendered)"
