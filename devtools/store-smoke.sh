#!/usr/bin/env bash
# End-to-end smoke for the crash-safe sharded index store: pack a store,
# simulate a pack killed mid-commit (orphan temp + uncommitted
# generation), prove reopening sweeps and recovers, corrupt a shard,
# boot `tind serve --store` degraded over raw TCP, repair the store
# out-of-band, watch the daemon promote back to serving, and drain.
#
# Usage: devtools/store-smoke.sh path/to/tind [scratch-dir]

set -euo pipefail
cd "$(dirname "$0")/.."

TIND="$1"
SCRATCH="${2:-$(dirname "$TIND")}"
DATA="$SCRATCH/store-smoke.tind"
STORE="$SCRATCH/store-smoke.store"
PORT_FILE="$SCRATCH/store-smoke-port.txt"
rm -rf "$STORE"
rm -f "$PORT_FILE"

fail() { echo "store-smoke: $1" >&2; exit 1; }

# 200 attributes → four 64-column blocks → four shards; shard 1 covers
# attribute ids 64..128.
"$TIND" generate --attributes 200 --preset small --seed 7 \
    --out "$DATA" >/dev/null

"$TIND" store pack --data "$DATA" --out "$STORE" --shards 4 \
    | grep -q 'packed generation 1' || fail "pack did not commit generation 1"
"$TIND" store verify "$STORE" | grep -q '4 shard(s) verified' \
    || fail "freshly packed store failed verification"

# --- Kill mid-pack: plant exactly the debris an interrupted writer
# leaves (an orphan temp and an uncommitted next-generation shard), then
# prove a reader recovers: the committed generation still answers and
# the sweep disposes of the debris.
printf 'torn' > "$STORE/g2-s0.shard.tmp"
cp "$STORE/g1-s0.shard" "$STORE/g2-s0.shard"
"$TIND" search --data "$DATA" --store "$STORE" --query 5 --limit 3 >/dev/null \
    || fail "store with crash debris did not open"
[ ! -e "$STORE/g2-s0.shard.tmp" ] || fail "orphan temp survived the sweep"
[ ! -e "$STORE/g2-s0.shard" ] || fail "uncommitted generation survived the sweep"

# --- Corrupt shard 1 (two adjacent bytes, so at least one changes) and
# confirm quarantine: verify names the shard, a masked query is refused.
SHARD="$STORE/g1-s1.shard"
printf '\xff\x00' | dd of="$SHARD" bs=1 seek=100 conv=notrunc 2>/dev/null
"$TIND" store verify "$STORE" >/dev/null 2>&1 \
    && fail "verification passed on a corrupt shard"
"$TIND" search --data "$DATA" --store "$STORE" --query 70 >/dev/null 2>&1 \
    && fail "a query over the lost shard must be refused"

# --- Serve degraded: the daemon still boots, flags itself, answers live
# attributes, and 503s the lost range with a typed code.
"$TIND" serve --data "$DATA" --store "$STORE" --port 0 \
    --port-file "$PORT_FILE" --reverify-ms 100 --quiet &
PID=$!
trap 'kill -9 "$PID" 2>/dev/null || true' EXIT

PORT=""
for _ in $(seq 1 200); do
    kill -0 "$PID" 2>/dev/null || fail "daemon died during startup"
    if [ -s "$PORT_FILE" ]; then
        PORT=$(tr -d '[:space:]' <"$PORT_FILE")
        [ -n "$PORT" ] && break
    fi
    sleep 0.05
done
[ -n "$PORT" ] || fail "no port published within 10s"

http() { # method path body
    local body="${3:-}"
    exec 3<>"/dev/tcp/127.0.0.1/$PORT"
    printf '%s %s HTTP/1.1\r\nContent-Length: %s\r\n\r\n%s' \
        "$1" "$2" "${#body}" "$body" >&3
    cat <&3
    exec 3<&- 3>&-
}

for _ in $(seq 1 200); do
    http GET /healthz | grep -q '"degraded"' && break
    sleep 0.05
done
http GET /healthz | grep -q '"degraded"' || fail "daemon never reported degraded"
http GET /healthz | grep -q '"live_shard_fraction":0.75' \
    || fail "healthz missing the live-shard fraction"
http GET /metrics | grep -q '"name":"store.shards.quarantined","value":1' \
    || fail "metrics missing store.shards.quarantined=1"
http POST /search '{"query":"5","limit":3}' | grep -q '"partial":true' \
    || fail "live-range search must answer (marked partial)"
http POST /search '{"query":"70"}' | grep -q '"shard_unavailable"' \
    || fail "lost-range search must 503 with shard_unavailable"

# --- Repair out-of-band; the daemon's re-verify loop promotes.
"$TIND" store repair --store "$STORE" --data "$DATA" \
    | grep -q 'rebuilt shard(s) \[1\]' || fail "repair did not rebuild shard 1"
for _ in $(seq 1 200); do
    http GET /healthz | grep -q '"serving"' && break
    sleep 0.05
done
http GET /healthz | grep -q '"serving"' || fail "repair never promoted to serving"
http POST /search '{"query":"70","limit":3}' | grep -q '"results"' \
    || fail "restored attribute must answer after promotion"

kill -INT "$PID"
EXIT=0
wait "$PID" || EXIT=$?
trap - EXIT
[ "$EXIT" = 130 ] || fail "expected exit 130 after SIGINT, got $EXIT"

"$TIND" verify "$STORE" | grep -q 'OK' || fail "repaired store failed final verify"

# --- Arena layout: migrate the repaired legacy store in place (a new
# generation through the same atomic commit point), confirm `tind
# verify` sniffs the layout, corrupt an arena shard, boot the daemon
# zero-copy from mmap — degraded, with the plan cache on — repair
# out-of-band, and watch it promote exactly like the legacy flow.
"$TIND" store migrate --store "$STORE" --data "$DATA" --format arena \
    | grep -q 'arena layout — generation 2' \
    || fail "migrate did not commit an arena generation 2"
"$TIND" store verify "$STORE" | grep -q '4 shard(s) verified' \
    || fail "migrated arena store failed verification"
"$TIND" verify "$STORE/g2-s1.shard" | grep -q 'arena (zero-copy mmap)' \
    || fail "verify did not sniff the arena shard layout"

printf '\xff\x00' | dd of="$STORE/g2-s1.shard" bs=1 seek=200 conv=notrunc 2>/dev/null
rm -f "$PORT_FILE"
"$TIND" serve --data "$DATA" --store "$STORE" --store-backing mmap \
    --plan-cache 8 --port 0 --port-file "$PORT_FILE" --reverify-ms 100 --quiet &
PID=$!
trap 'kill -9 "$PID" 2>/dev/null || true' EXIT

PORT=""
for _ in $(seq 1 200); do
    kill -0 "$PID" 2>/dev/null || fail "mmap daemon died during startup"
    if [ -s "$PORT_FILE" ]; then
        PORT=$(tr -d '[:space:]' <"$PORT_FILE")
        [ -n "$PORT" ] && break
    fi
    sleep 0.05
done
[ -n "$PORT" ] || fail "mmap daemon published no port within 10s"

for _ in $(seq 1 200); do
    http GET /healthz | grep -q '"degraded"' && break
    sleep 0.05
done
http GET /healthz | grep -q '"degraded"' \
    || fail "mmap daemon never reported degraded on the corrupt arena shard"
http POST /search '{"query":"70"}' | grep -q '"shard_unavailable"' \
    || fail "lost arena range must 503 with shard_unavailable"

"$TIND" store repair --store "$STORE" --data "$DATA" \
    | grep -q 'rebuilt shard(s) \[1\]' || fail "arena repair did not rebuild shard 1"
for _ in $(seq 1 200); do
    http GET /healthz | grep -q '"serving"' && break
    sleep 0.05
done
http GET /healthz | grep -q '"serving"' || fail "arena repair never promoted to serving"
http POST /search '{"query":"70","limit":3}' | grep -q '"results"' \
    || fail "restored attribute must answer zero-copy after promotion"
http POST /search '{"query":"70","limit":3}' | grep -q '"results"' \
    || fail "repeat query failed"
http GET /metrics | grep -q '"name":"serve.plans.hits","total":[1-9]' \
    || fail "plan cache recorded no hit on a repeated query"

kill -INT "$PID"
EXIT=0
wait "$PID" || EXIT=$?
trap - EXIT
[ "$EXIT" = 130 ] || fail "expected exit 130 after SIGINT, got $EXIT"

"$TIND" verify "$STORE" | grep -q 'OK' || fail "repaired arena store failed final verify"

echo "store-smoke: passed (port $PORT, legacy + arena: quarantined, repaired, promoted)"
