//! Stand-in for `proptest` used only by the offline typecheck/test
//! harness: the `proptest!` macro expands to NOTHING, so property tests
//! are skipped (not run) offline; plain `#[test]` functions in the same
//! file still compile and run. Test files whose module level uses real
//! strategy combinators (e.g. `tests/proptests.rs`) are excluded by
//! `run.sh` instead. NOT part of the shipped library.

#[macro_export]
macro_rules! proptest {
    ($($tokens:tt)*) => {};
}

pub mod prelude {
    pub use crate::proptest;

    /// Accepted (and ignored) so `#![proptest_config(...)]` headers parse
    /// when referenced outside a discarded macro body.
    #[derive(Clone, Debug, Default)]
    pub struct ProptestConfig;

    impl ProptestConfig {
        pub fn with_cases(_cases: u32) -> Self {
            ProptestConfig
        }
    }
}
