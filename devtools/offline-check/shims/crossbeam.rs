//! Minimal stand-in for `crossbeam`, used only by the offline
//! typecheck/test harness. Provides `crossbeam::scope` on top of
//! `std::thread::scope`, converting a propagated child panic into the
//! `Err` the real crate returns. NOT part of the shipped library.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Scope handle passed to the `scope` closure; `spawn` closures receive a
/// reference to it (and may ignore it), as with the real crate.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        self.inner.spawn(move || f(&scope))
    }
}

/// Runs `f` with a scope in which borrowing threads can be spawned; joins
/// them all, returning `Err` if any thread panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope { inner: s }))))
}
