//! Minimal stand-in for `parking_lot`, used only by the offline
//! typecheck/test harness. Wraps `std::sync::Mutex` with parking_lot's
//! non-poisoning API shape. NOT part of the shipped library.

/// Mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
