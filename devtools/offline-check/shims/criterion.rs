//! Stand-in for `criterion` used only by the offline typecheck/test
//! harness. Each bench closure runs exactly ONCE (a smoke execution, not a
//! measurement): enough to typecheck the benches and prove they don't
//! panic, without Criterion's sampling machinery. NOT part of the shipped
//! library.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// One-shot stand-in for `criterion::Criterion`.
pub struct Criterion;

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        eprintln!("bench group {name}");
        BenchmarkGroup
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_once(&id.to_string(), f);
        self
    }
}

pub struct BenchmarkGroup;

impl BenchmarkGroup {
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_once(&id.to_string(), f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_once(&id.to_string(), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_once<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let start = Instant::now();
    let mut b = Bencher;
    f(&mut b);
    eprintln!("  {label}: one iteration in {:?}", start.elapsed());
}

pub struct Bencher;

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let _ = routine();
    }
}

/// Stand-in for `criterion::BenchmarkId`.
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { repr: format!("{name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { repr: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.repr)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion;
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
