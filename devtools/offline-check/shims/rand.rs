//! Minimal stand-in for the `rand` crate, used only by the offline
//! typecheck/test harness when the registry is unreachable. Deterministic
//! xoshiro256++ behind the `rand 0.10` method names this workspace uses
//! (`seed_from_u64`, `random`, `random_range`, `shuffle`). Streams differ
//! from the real `StdRng`, so seed-sensitive expectations may differ under
//! the harness; invariant-style tests are unaffected. NOT part of the
//! shipped library.

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// The random-value extension surface (`random`, `random_range`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// rand 0.10 splits ergonomics into an extension trait; here it is the
/// same trait under a second name so both import styles resolve.
pub use Rng as RngExt;

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub mod rngs {
    /// xoshiro256++ — not the real `StdRng` stream, but deterministic.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl crate::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`Rng::random`].
pub trait Random {
    fn random<R: Rng>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for bool {
    fn random<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for u64 {
    fn random<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}

/// Ranges samplable by [`Rng::random_range`]. Like the real crate, these
/// are two blanket impls over a `SampleUniform` element trait — that
/// single-impl shape is what lets inference resolve mixed-literal calls
/// such as `rng.random_range(6..=8).min(len)`.
pub trait SampleRange<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

pub trait SampleUniform: Copy {
    fn sample_half_open<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self;
    fn sample_inclusive<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo + (rng.next_u64() % span) as $t
            }
            fn sample_inclusive<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    fn sample_half_open<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self {
        let unit: f64 = Random::random(rng);
        lo + (hi - lo) * unit
    }
    fn sample_inclusive<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self {
        let unit: f64 = Random::random(rng);
        lo + (hi - lo) * unit
    }
}

pub mod seq {
    /// Fisher–Yates shuffle, matching the one method this workspace uses.
    pub trait SliceRandom {
        fn shuffle<R: crate::Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: crate::Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}
