//! Minimal stand-in for the `bytes` crate, used only by the offline
//! typecheck/test harness (`devtools/offline-check/run.sh`) when the
//! crates.io registry is unreachable. Implements exactly the API surface
//! this workspace uses, with matching semantics (`put_f64`/`get_f64` are
//! big-endian like the real crate; the `*_le` accessors are
//! little-endian). NOT part of the shipped library: normal `cargo build`
//! uses the real `bytes` crate.

use std::ops::{Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable immutable byte window.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound::*;
        let lo = match range.start_bound() {
            Included(&n) => n,
            Excluded(&n) => n + 1,
            Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Included(&n) => n + 1,
            Excluded(&n) => n,
            Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes { data: Arc::from(v), start: 0, end: len }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl<I: std::slice::SliceIndex<[u8]>> std::ops::Index<I> for Bytes {
    type Output = I::Output;
    fn index(&self, index: I) -> &I::Output {
        &self.deref()[index]
    }
}

/// Read cursor over a byte source. Accessors panic on underflow, like the
/// real crate (callers check `remaining()` first).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8])
    where
        Self: Sized,
    {
        assert!(self.remaining() >= dst.len(), "copy_to_slice underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes
    where
        Self: Sized,
    {
        let mut v = vec![0u8; len];
        self.copy_to_slice(&mut v);
        Bytes::from(v)
    }

    fn get_u8(&mut self) -> u8
    where
        Self: Sized,
    {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32_le(&mut self) -> u32
    where
        Self: Sized,
    {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64
    where
        Self: Sized,
    {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_be_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.data.resize(new_len, value);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl<I: std::slice::SliceIndex<[u8]>> std::ops::Index<I> for BytesMut {
    type Output = I::Output;
    fn index(&self, index: I) -> &I::Output {
        &self.data[index]
    }
}

/// Write cursor; all writes append.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}
