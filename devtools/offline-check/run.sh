#!/usr/bin/env bash
# Offline typecheck + test harness.
#
# This workspace's external dependencies (bytes, rand, crossbeam,
# parking_lot, proptest, criterion) come from crates.io; in an air-gapped
# container with an empty registry cache `cargo build` cannot even start.
# This script compiles the workspace with plain `rustc` against the
# minimal shims in ./shims so the code can still be typechecked and the
# unit/integration tests run without network access.
#
# Coverage gaps vs. a real `cargo test`:
#   - `proptest!` blocks expand to nothing (plain #[test]s still run), and
#     tests/proptests.rs (module-level strategy combinators) is skipped;
#   - criterion benches compile against a one-shot shim and are smoke-run
#     (one iteration at TIND_BENCH_ATTRS=200 scale), not measured;
#   - the shim StdRng is a different (still deterministic) stream than the
#     real rand::StdRng, so seed-sensitive expectations can differ.
#
# Usage: devtools/offline-check/run.sh [--check-only]

set -euo pipefail

cd "$(dirname "$0")/../.."
OUT=target/offline-check
mkdir -p "$OUT"

CHECK_ONLY=0
[ "${1:-}" = "--check-only" ] && CHECK_ONLY=1

RUSTC="rustc --edition 2021 -L dependency=$OUT"

shim() { # name
    echo "shim $1"
    $RUSTC --crate-name "$1" --crate-type rlib \
        -o "$OUT/lib$1.rlib" "devtools/offline-check/shims/$1.rs"
}

shim bytes
shim rand
shim parking_lot
shim crossbeam
shim proptest
shim criterion

# Every shim and workspace rlib, so each crate (and its tests, which may
# pull in dev-dependencies) can just receive the full set.
externs() {
    local flags=""
    for dep in bytes rand parking_lot crossbeam proptest criterion \
        tind_obs tind_model tind_bloom tind_core tind_serve tind_baseline \
        tind_wiki tind_datagen tind_eval tind_cli tind_bench tind; do
        [ -f "$OUT/lib$dep.rlib" ] && flags="$flags --extern $dep=$OUT/lib$dep.rlib"
    done
    echo "$flags"
}

lib() { # crate_name path
    echo "check $1"
    # shellcheck disable=SC2046
    $RUSTC --crate-name "$1" --crate-type rlib $(externs) \
        -o "$OUT/lib$1.rlib" "$2"
}

test_bin() { # crate_name path [extra libtest args...]
    local name="$1" path="$2"
    shift 2
    echo "test  $name"
    # shellcheck disable=SC2046
    $RUSTC --test --crate-name "${name}_tests" $(externs) \
        -o "$OUT/${name}_tests" "$path"
    if [ "$CHECK_ONLY" = 0 ]; then
        "$OUT/${name}_tests" --quiet "$@"
    fi
}

# Dependency order.
lib tind_obs crates/obs/src/lib.rs
lib tind_model crates/model/src/lib.rs
lib tind_bloom crates/bloom/src/lib.rs
lib tind_core crates/core/src/lib.rs
lib tind_serve crates/serve/src/lib.rs
lib tind_baseline crates/baseline/src/lib.rs
lib tind_wiki crates/wiki/src/lib.rs
lib tind_datagen crates/datagen/src/lib.rs
lib tind_eval crates/eval/src/lib.rs
lib tind_cli crates/cli/src/lib.rs
lib tind_bench crates/bench/src/lib.rs
lib tind src/lib.rs

echo "check tind (bin)"
# shellcheck disable=SC2046
$RUSTC --crate-name tind_bin --crate-type bin $(externs) \
    -o "$OUT/tind" crates/cli/src/main.rs

# The obs-off feature must keep every instrumented crate compiling: spans
# and metrics become no-ops, so this is a metadata-only typecheck pass.
echo "check tind_obs (obs-off)"
# shellcheck disable=SC2046
$RUSTC --crate-name tind_obs --crate-type rlib --emit=metadata \
    --cfg 'feature="obs-off"' $(externs) \
    -o "$OUT/libtind_obs_off.rmeta" crates/obs/src/lib.rs

# Unit tests, crate by crate.
test_bin tind_obs crates/obs/src/lib.rs
test_bin tind_model crates/model/src/lib.rs
test_bin tind_bloom crates/bloom/src/lib.rs
test_bin tind_core crates/core/src/lib.rs
test_bin tind_serve crates/serve/src/lib.rs
test_bin tind_baseline crates/baseline/src/lib.rs
test_bin tind_wiki crates/wiki/src/lib.rs
test_bin tind_datagen crates/datagen/src/lib.rs
test_bin tind_eval crates/eval/src/lib.rs
test_bin tind_cli crates/cli/src/lib.rs

# Crate-level integration tests. crates/wiki/tests/parser_props.rs uses
# strategy combinators at module level and needs real proptest (cargo
# runs it); ingest_adversarial and blocked_kernels keep proptest inside
# `proptest!` blocks, so their plain #[test]s run here too.
test_bin it_ingest_adversarial crates/wiki/tests/ingest_adversarial.rs
test_bin it_blocked_kernels crates/bloom/tests/blocked_kernels.rs

# The serve CLI tests exercise the real binary's signal path (SIGINT /
# SIGTERM → drain → exit 130); point them at the rustc-built binary.
export TIND_BIN="$OUT/tind"
test_bin it_serve_cli crates/cli/tests/serve_cli.rs

# Workspace integration tests (tests/proptests.rs needs real proptest).
# sigma_partial_search_recovers_renamed_pairs asserts on how much material
# a specific rand::StdRng seed generates; the shim RNG is a different
# stream, so that one statistical test only runs under real `cargo test`.
for t in tests/*.rs; do
    name=$(basename "$t" .rs)
    [ "$name" = proptests ] && continue
    if [ "$name" = partial_recovery ]; then
        test_bin "it_$name" "$t" --skip sigma_partial_search_recovers_renamed_pairs
    else
        test_bin "it_$name" "$t"
    fi
done

# Criterion benches against the one-shot shim: every bench target must
# compile; batch_search and validate_kernel are also smoke-run (one
# iteration per bench point, reduced dataset) to exercise the parallel
# build / batched search / plan-based validation kernels end to end. Real
# measurements still need `cargo bench`.
for b in crates/bench/benches/*.rs; do
    name=$(basename "$b" .rs)
    echo "bench $name"
    # shellcheck disable=SC2046
    $RUSTC --crate-name "bench_$name" --crate-type bin $(externs) \
        -o "$OUT/bench_$name" "$b"
done
if [ "$CHECK_ONLY" = 0 ]; then
    echo "smoke bench_batch_search (TIND_BENCH_ATTRS=200)"
    TIND_BENCH_ATTRS=200 "$OUT/bench_batch_search"
    echo "smoke bench_validate_kernel (TIND_BENCH_ATTRS=200)"
    TIND_BENCH_ATTRS=200 "$OUT/bench_validate_kernel"
    echo "smoke bench_obs_overhead (TIND_BENCH_ATTRS=200)"
    TIND_BENCH_ATTRS=200 TIND_BENCH_OBS_OUT="$OUT/BENCH_obs.json" \
        "$OUT/bench_obs_overhead"
    "$OUT/tind" verify "$OUT/BENCH_obs.json" \
        --schema devtools/report-schema.json
    # One reduced-scale pass of the cold-start bench: pins backing
    # equality and the zero-resident mmap open; the >=10x speedup bound
    # only applies to optimized full-scale runs (see BENCH_coldstart.json).
    echo "smoke bench_cold_start (TIND_BENCH_ATTRS=200)"
    TIND_BENCH_ATTRS=200 TIND_BENCH_COLDSTART_OUT="$OUT/BENCH_coldstart.json" \
        "$OUT/bench_cold_start"

    # Run-report smoke: an all-pairs run must emit a TINDRR report that
    # passes checksum + schema verification end to end through the CLI.
    echo "smoke run report (all-pairs --report)"
    "$OUT/tind" generate --attributes 120 --preset small --seed 5 \
        --out "$OUT/report-smoke.tind" >/dev/null
    "$OUT/tind" all-pairs --data "$OUT/report-smoke.tind" --threads 2 \
        --quiet --report "$OUT/report-smoke.json" >/dev/null
    "$OUT/tind" verify "$OUT/report-smoke.json" \
        --schema devtools/report-schema.json

    # Serve smoke: boot the daemon, query it, SIGINT-drain it, and verify
    # the flushed report (see devtools/serve-smoke.sh).
    echo "smoke tind serve (ephemeral port, SIGINT drain)"
    devtools/serve-smoke.sh "$OUT/tind" "$OUT"

    # Trace smoke: force-sample a /search trace, export it via
    # /debug/trace, render + checksum-verify it with the CLI, and check
    # the one-shot `search --trace` path (see devtools/trace-smoke.sh).
    echo "smoke request tracing (forced sample, TINDTF export, waterfall)"
    devtools/trace-smoke.sh "$OUT/tind" "$OUT"

    # Store smoke: pack a sharded store, recover from simulated crash
    # debris, corrupt a shard, serve degraded, repair out-of-band, and
    # watch the daemon promote back (see devtools/store-smoke.sh).
    echo "smoke sharded store (pack, crash debris, degraded serve, repair)"
    devtools/store-smoke.sh "$OUT/tind" "$OUT"

    # Update smoke: delta ingest with in-place index maintenance, pinned
    # byte-identical to a cold rebuild; TINDUC interrupt → verify →
    # resume (see devtools/update-smoke.sh).
    echo "smoke live updates (delta ingest, maintained index vs cold rebuild)"
    devtools/update-smoke.sh "$OUT/tind" "$OUT"
fi

echo "offline check passed"
