//! The paper's motivating scenario (Figure 1): six tables about the
//! Pokémon video games are scattered across six Wikipedia pages; tIND
//! search reveals which tables can extend the entities of a query column —
//! and why *temporal* INDs beat static ones when pages update out of sync.
//!
//! ```sh
//! cargo run --example pokemon_tables
//! ```

use std::sync::Arc;

use tind::baseline::ManyIndex;
use tind::core::{IndexConfig, TindIndex, TindParams};
use tind::model::{DatasetBuilder, Timeline};

fn main() {
    // Days 0..365: one year of observed history.
    let timeline = Timeline::new(365);
    let mut b = DatasetBuilder::new(timeline);

    // (A) Pokémon video games ▸ Game — the query column. A new main-series
    // game ("Scarlet") is announced on day 200.
    b.add_attribute(
        "A: Pokémon video games ▸ Game",
        &[
            (0, vec!["Red", "Blue", "Gold", "Ruby"]),
            (120, vec!["Red", "Blue", "Gold", "Ruby", "Diamond"]),
            (200, vec!["Red", "Blue", "Gold", "Ruby", "Diamond", "Scarlet"]),
        ],
        364,
    );
    // (B) List of all Pokémon media ▸ Title — superset, updated promptly.
    b.add_attribute(
        "B: Pokémon media ▸ Title",
        &[
            (0, vec!["Red", "Blue", "Gold", "Ruby", "Pinball", "Snap"]),
            (121, vec!["Red", "Blue", "Gold", "Ruby", "Diamond", "Pinball", "Snap"]),
            (201, vec!["Red", "Blue", "Gold", "Ruby", "Diamond", "Scarlet", "Pinball", "Snap"]),
        ],
        364,
    );
    // (C) Game Freak ▸ Notable works — vandalized briefly on day 250.
    b.add_attribute(
        "C: Game Freak ▸ Works",
        &[
            (0, vec!["Red", "Blue", "Gold", "Ruby", "Drill Dozer"]),
            (122, vec!["Red", "Blue", "Gold", "Ruby", "Diamond", "Drill Dozer"]),
            (202, vec!["Red", "Blue", "Gold", "Ruby", "Diamond", "Scarlet", "Drill Dozer"]),
            (250, vec!["Red", "Blue", "Gold", "VANDALISM", "Diamond", "Scarlet", "Drill Dozer"]),
            (252, vec!["Red", "Blue", "Gold", "Ruby", "Diamond", "Scarlet", "Drill Dozer"]),
        ],
        364,
    );
    // (D) Junichi Masuda ▸ Composer credits — updated with a 10-day delay.
    b.add_attribute(
        "D: Masuda ▸ Credits",
        &[
            (0, vec!["Red", "Blue", "Gold", "Ruby", "Diamond", "Scarlet", "HeartGold"]),
        ],
        364,
    );
    // (E) Shigeki Morimoto ▸ Games — gets "Scarlet" only on day 235.
    b.add_attribute(
        "E: Morimoto ▸ Games",
        &[
            (0, vec!["Red", "Blue", "Gold", "Ruby", "Crystal"]),
            (125, vec!["Red", "Blue", "Gold", "Ruby", "Diamond", "Crystal"]),
            (235, vec!["Red", "Blue", "Gold", "Ruby", "Diamond", "Scarlet", "Crystal"]),
        ],
        364,
    );
    // (F) Pokémon cities ▸ City — unrelated table on the same pages.
    b.add_attribute(
        "F: Cities ▸ City",
        &[(0, vec!["Pallet Town", "Viridian", "Goldenrod"])],
        364,
    );
    let dataset = Arc::new(b.build());

    let index = TindIndex::build(dataset.clone(), IndexConfig::default());
    let (query, _) = dataset.attribute_by_name("A: Pokémon video games ▸ Game").expect("exists");

    let show = |label: &str, ids: &[u32]| {
        println!("{label}");
        if ids.is_empty() {
            println!("    (none)");
        }
        for &id in ids {
            println!("    {}", dataset.attribute(id).name());
        }
    };

    println!("Which tables can extend the games of table (A)?\n");

    // Static IND discovery at an unlucky moment: day 230, while (E) still
    // lags behind the Scarlet announcement.
    let many = ManyIndex::build(dataset.clone(), 230, 1024, 2);
    show("static INDs at day 230 (E missing - update lag):", &many.search(query));
    println!();

    // Strict tINDs: the vandalism on (C) and the lag on (E) kill both.
    show("strict tINDs:", &index.search(query, &TindParams::strict()).results);
    println!();

    // The paper's relaxations recover them: ε = 3 absorbs the two-day
    // vandalism, δ = 35 bridges Morimoto's update lag.
    let relaxed = TindParams::weighted(3.0, 35, tind::model::WeightFn::constant_one());
    show("relaxed tINDs (ε=3, δ=35):", &index.search(query, &relaxed).results);
    println!();

    // Reverse search: which columns are contained in the media list (B)?
    let (media, _) = dataset.attribute_by_name("B: Pokémon media ▸ Title").expect("exists");
    show(
        "contained in (B) under (ε=3, δ=35):",
        &index.reverse_search(media, &relaxed).results,
    );
}
