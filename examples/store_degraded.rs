//! Crash-safe sharded store, end to end: pack an index into shards,
//! lose one shard to corruption, open the store **degraded** (the lost
//! attribute range is masked, everything else still answers), repair it
//! from the dataset, and prove the repaired store is byte-identical to
//! the original build.
//!
//! ```sh
//! cargo run --example store_degraded
//! ```

use std::sync::Arc;

use tind::core::fault::flip_file_byte;
use tind::core::{
    open_store, pack_store, repair_store, verify_store, IndexConfig, PackOptions, RepairOptions,
    TindIndex, TindParams,
};
use tind::datagen::{generate, GeneratorConfig};

fn main() {
    // 200 attributes → four 64-column blocks, so the store can hold up
    // to four shards; shard 1 will cover attribute ids 64..128.
    let dataset = Arc::new(generate(&GeneratorConfig::small(200, 7)).dataset);
    let config = IndexConfig { m: 1024, ..IndexConfig::default() };
    let index = TindIndex::build(dataset.clone(), config);
    let baseline = tind::core::persist::encode_index(&index);
    let params = TindParams::paper_default();

    let dir = std::env::temp_dir().join("tind-example-store");
    let _ = std::fs::remove_dir_all(&dir);

    // --- Pack. Each shard is written to a temp file, fsynced, and
    // renamed into place; the manifest rename is the commit point.
    let packed = pack_store(&index, &dir, &PackOptions { shards: 4, ..Default::default() })
        .expect("pack");
    println!(
        "packed generation {} into {} — {} shards, {} bytes",
        packed.generation,
        dir.display(),
        packed.shards,
        packed.bytes_written
    );

    // --- Corrupt shard 1 with a single flipped byte, the way bit rot or
    // a torn write would.
    let victim = dir.join(format!("g{}-s1.shard", packed.generation));
    let len = std::fs::metadata(&victim).expect("stat shard").len() as usize;
    flip_file_byte(&victim, len / 2).expect("flip");

    let report = verify_store(&dir).expect("manifest still readable");
    for fault in &report.faults {
        println!("verify: {fault}");
    }

    // --- Open degraded. The corrupt shard is quarantined: its attribute
    // range is masked on the returned index, every other shard loads.
    let (degraded, load) = open_store(&dir, dataset.clone()).expect("open degraded");
    let mask = degraded.shard_mask().expect("mask present");
    println!(
        "opened degraded: {}/{} shards live ({:.0}% of columns answer)",
        load.shards_total - load.quarantined.len(),
        load.shards_total,
        mask.live_fraction() * 100.0
    );

    // A query outside the lost range still answers — minus any masked
    // candidates, which the caller can see and report.
    let live_query = 5; // attribute id 5 lives in shard 0
    let outcome = degraded.search(live_query, &params);
    println!(
        "search('{}') under quarantine: {} results (masked candidates excluded)",
        dataset.attribute(live_query).name(),
        outcome.results.len()
    );
    // A query inside the lost range is detectably unanswerable, not
    // silently wrong.
    let lost_query = 70; // attribute id 70 lives in shard 1
    assert!(degraded.is_masked(lost_query));
    println!(
        "search('{}') would be refused: its columns are in quarantined shard {}",
        dataset.attribute(lost_query).name(),
        mask.quarantined()[0].shard
    );

    // --- Repair: rebuild only the lost shard from the dataset. The
    // rebuilt bytes must hash to the digest the manifest committed, so a
    // successful repair is provably the original shard.
    let repaired =
        repair_store(&dir, &dataset, &RepairOptions::default()).expect("repair");
    println!(
        "repaired: rebuilt shard(s) {:?}, {} already intact, generation still {}",
        repaired.rebuilt, repaired.intact, repaired.generation
    );

    let (restored, load) = open_store(&dir, dataset).expect("open repaired");
    assert!(load.is_clean());
    assert_eq!(tind::core::persist::encode_index(&restored), baseline);
    println!("restored store is byte-identical to the original build");
}
