//! Quickstart: build a tiny temporal dataset by hand, search it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use tind::core::{IndexConfig, TindIndex, TindParams};
use tind::model::{DatasetBuilder, Timeline, WeightFn};

fn main() {
    // A 30-day timeline with three attributes.
    let timeline = Timeline::new(30);
    let mut builder = DatasetBuilder::new(timeline);

    // "games": the query — a list that gains a title on day 10.
    builder.add_attribute(
        "games",
        &[(0, vec!["Red", "Blue"]), (10, vec!["Red", "Blue", "Gold"])],
        29,
    );
    // "catalog": always a superset → strict tIND.
    builder.add_attribute("catalog", &[(0, vec!["Red", "Blue", "Gold", "Silver"])], 29);
    // "retailer": follows the new title only on day 14 → needs δ ≥ 4 (or ε ≥ 4).
    builder.add_attribute(
        "retailer",
        &[(0, vec!["Red", "Blue"]), (14, vec!["Red", "Blue", "Gold"])],
        29,
    );
    let dataset = Arc::new(builder.build());

    // Build the index once; query it with different relaxations.
    let index = TindIndex::build(dataset.clone(), IndexConfig::default());
    let (games, _) = dataset.attribute_by_name("games").expect("exists");

    let print_results = |label: &str, params: &TindParams| {
        let outcome = index.search(games, params);
        let names: Vec<&str> =
            outcome.results.iter().map(|&id| dataset.attribute(id).name()).collect();
        println!("{label:<28} -> {names:?}");
    };

    println!("searching for attributes containing 'games':\n");
    print_results("strict (ε=0, δ=0)", &TindParams::strict());
    print_results("ε=4 days", &TindParams::weighted(4.0, 0, WeightFn::constant_one()));
    print_results("δ=4 days", &TindParams::weighted(0.0, 4, WeightFn::constant_one()));
    print_results("paper default (ε=3, δ=7)", &TindParams::paper_default());

    // Reverse search: who is contained in the catalog?
    let (catalog, _) = dataset.attribute_by_name("catalog").expect("exists");
    let reverse = index.reverse_search(catalog, &TindParams::paper_default());
    let names: Vec<&str> =
        reverse.results.iter().map(|&id| dataset.attribute(id).name()).collect();
    println!("\ncontained in 'catalog' (paper default): {names:?}");
}
