//! End-to-end extraction: synthetic page revisions → wikitext parsing →
//! table/column matching → daily aggregation → filtering → tIND index.
//!
//! Real Wikipedia dumps are not shipped; the revision stream is rendered
//! from a generated dataset (see DESIGN.md §2), which exercises the exact
//! §5.1 pipeline.
//!
//! ```sh
//! cargo run --example wiki_pipeline
//! ```

use std::sync::Arc;

use tind::core::{IndexConfig, TindIndex, TindParams};
use tind::datagen::{generate, GeneratorConfig};
use tind::model::stats::DatasetStats;
use tind::wiki::{extract_dataset, PipelineConfig};

fn main() {
    // 1. Generate a small Wikipedia-shaped workload and render it as page
    //    revisions carrying wikitext tables.
    let cfg = GeneratorConfig::small(150, 2024);
    let generated = generate(&cfg);
    let revisions = tind::datagen::revisions::render_revisions(&generated.dataset);
    println!(
        "rendered {} page revisions from {} attributes",
        revisions.len(),
        generated.dataset.len()
    );
    let sample = &revisions[0];
    println!("\nfirst revision (page '{}', day {}):", sample.title, sample.day);
    for line in sample.wikitext.lines().take(6) {
        println!("    {line}");
    }
    println!("    ...\n");

    // 2. Run the extraction pipeline: parse, match, aggregate, filter.
    let (dataset, report) = extract_dataset(revisions, &PipelineConfig::new(cfg.timeline_days));
    println!(
        "pipeline: {} pages / {} revisions -> {} tables, {} columns tracked",
        report.pages, report.revisions, report.tables_tracked, report.columns_tracked
    );
    println!(
        "filters kept {} of {} column histories\n",
        report.attributes_kept, report.attributes_before_filters
    );
    println!("{}\n", DatasetStats::compute(&dataset));

    // 3. Index the extracted dataset and run a search on the first
    //    extracted derived attribute.
    let dataset = Arc::new(dataset);
    let index = TindIndex::build(dataset.clone(), IndexConfig::default());
    let (query, hist) = dataset
        .iter()
        .find(|(_, h)| h.name().contains("derived"))
        .expect("derived attribute extracted");
    let outcome = index.search(query, &TindParams::paper_default());
    println!("tIND search for '{}' found {} right-hand sides:", hist.name(), outcome.results.len());
    for &id in outcome.results.iter().take(10) {
        println!("    {}", dataset.attribute(id).name());
    }
}
