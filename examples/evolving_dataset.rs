//! Keeping tIND results current as the data evolves — the incremental
//! main+delta index (see `tind_core::incremental`).
//!
//! Wikipedia never stops changing: new tables appear and existing columns
//! gain versions. Instead of rebuilding the whole Bloom-matrix index per
//! edit, updates land in a small delta that is searched exactly and folded
//! into the base index on compaction.
//!
//! ```sh
//! cargo run --release --example evolving_dataset
//! ```

use std::sync::Arc;
use std::time::Instant;

use tind::core::incremental::IncrementalIndex;
use tind::core::{IndexConfig, TindParams};
use tind::datagen::{generate, GeneratorConfig};
use tind::model::WeightFn;

fn main() {
    // Start from a generated corpus...
    let generated = generate(&GeneratorConfig::small(400, 11));
    let dataset = Arc::new(generated.dataset);
    let timeline_end = dataset.timeline().last();
    let start = Instant::now();
    let mut index = IncrementalIndex::build(dataset.clone(), IndexConfig::default());
    println!("base index over {} attributes built in {:.2?}", index.len(), start.elapsed());

    let params = TindParams::weighted(10.0, 14, WeightFn::constant_one());
    let before = index.search("derived-0-of-0", &params).expect("exists");
    println!("\n'derived-0-of-0' is included in {} attributes", before.results.len());

    // ... a new page with a table appears: a fan wiki mirroring source-0.
    let source_values: Vec<u32> = dataset.attribute(0).value_universe();
    let mut hb = tind::model::HistoryBuilder::new("fan-wiki mirror");
    hb.push(0, source_values);
    let start = Instant::now();
    index.upsert(hb.finish(timeline_end));
    println!("\nupserted 'fan-wiki mirror' in {:.2?} (delta size {})", start.elapsed(), index.delta_len());

    let after = index.search("derived-0-of-0", &params).expect("exists");
    println!(
        "'derived-0-of-0' is now included in {} attributes: {:?}",
        after.results.len(),
        after.results.iter().filter(|n| n.contains("fan-wiki")).collect::<Vec<_>>()
    );

    // An existing attribute gains a version (someone edits the table).
    let novelty = index.intern("Brand-New-Entity");
    let mut extended: Vec<u32> = dataset.attribute(0).values_at(timeline_end).to_vec();
    extended.push(novelty);
    index.append_version("source-0", timeline_end, extended, timeline_end);
    println!("\nappended a version to 'source-0' (delta size {})", index.delta_len());

    // Compact: fold the delta back into a fresh base index.
    let start = Instant::now();
    index.compact();
    println!("compacted into a {}-attribute base in {:.2?}", index.len(), start.elapsed());

    let final_out = index.search("derived-0-of-0", &params).expect("exists");
    assert_eq!(after.results, final_out.results, "compaction must not change results");
    println!("results identical before and after compaction ✓");
}
