//! n-ary temporal IND discovery — the paper's §6 future-work item, built
//! on row-aligned temporal tables and tuple projection.
//!
//! The scenario shows why arity matters: two columns can each be contained
//! unary-wise while their *pairing* is wrong (a composer credited for the
//! wrong game). Only the binary tIND over (Game, Composer) tuples
//! separates the genuine credits table from the scrambled one.
//!
//! ```sh
//! cargo run --example nary_discovery
//! ```

use tind::core::nary::discover_nary;
use tind::core::TindParams;
use tind::model::{Timeline, WeightFn};
use tind::wiki::{extract_temporal_tables, PageRevision, PipelineConfig};

fn rev(page: u32, title: &str, day: u32, wikitext: &str) -> PageRevision {
    PageRevision {
        page_id: page,
        title: title.to_string(),
        day,
        seq_in_day: 0,
        wikitext: wikitext.to_string(),
    }
}

fn main() {
    // The authoritative catalog page, growing over time.
    let catalog_v1 = "\
{|
|+ All games
! Game !! Composer !! Year
|-
| Red || Masuda || 1996
|-
| Gold || Masuda || 1999
|}";
    let catalog_v2 = "\
{|
|+ All games
! Game !! Composer !! Year
|-
| Red || Masuda || 1996
|-
| Gold || Masuda || 1999
|-
| Ruby || Ichinose || 2002
|}";
    // A credits table: correct (game, composer) pairings, follows the
    // catalog with a 3-day delay.
    let credits_v1 = "\
{|
|+ Credits
! Game !! Composer
|-
| Red || Masuda
|}";
    let credits_v2 = "\
{|
|+ Credits
! Game !! Composer
|-
| Red || Masuda
|-
| Ruby || Ichinose
|}";
    // A scrambled fan page: same games, same composers — wrong pairing.
    let scrambled = "\
{|
|+ Fan trivia
! Game !! Composer
|-
| Red || Ichinose
|-
| Ruby || Masuda
|}";

    let revisions = vec![
        rev(1, "Catalog", 0, catalog_v1),
        rev(1, "Catalog", 20, catalog_v2),
        rev(2, "Credits", 0, credits_v1),
        rev(2, "Credits", 23, credits_v2),
        rev(3, "Fan page", 0, scrambled),
        rev(3, "Fan page", 30, scrambled),
    ];
    let (tables, _dict) = extract_temporal_tables(revisions, &PipelineConfig::new(60));
    println!("extracted {} temporal tables:", tables.len());
    for t in &tables {
        println!(
            "  {} — columns {:?}, {} versions",
            t.name(),
            t.columns(),
            t.versions().len()
        );
    }

    let timeline = Timeline::new(60);
    let params = TindParams::weighted(0.0, 7, WeightFn::constant_one());
    let results = discover_nary(&tables, timeline, &params, 3);

    for (level, inds) in results.levels.iter().enumerate() {
        println!(
            "\n{}-ary tINDs (ε=0, δ=7) — {} candidates checked, {} valid:",
            level + 1,
            results.candidates_checked[level],
            inds.len()
        );
        for ind in inds {
            println!("  {}", ind.describe(&tables));
        }
    }

    println!("\nnote: the fan page's unary columns are contained, but no binary tIND");
    println!("links it to the catalog — tuple pairing exposes the scrambled data.");
}
