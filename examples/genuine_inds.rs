//! Genuine-IND discovery (§5.5 in miniature).
//!
//! Following the paper's methodology, the evaluation universe is the set
//! of static INDs discovered on the *latest snapshot* (the paper
//! hand-annotated a 900-IND sample of it; here the generator's ground
//! truth labels every pair). Each tIND variant then classifies every
//! labelled IND — the temporal variants trade a little recall for a large
//! precision gain, the paper's central claim.
//!
//! ```sh
//! cargo run --release --example genuine_inds
//! ```

use tind::datagen::{generate, GeneratorConfig};
use tind::eval::prcurve::{evaluate_families, GridSpec, LabelledUniverse};

fn main() {
    let generated = generate(&GeneratorConfig::paper_shaped(1200, 99));
    println!(
        "{} attributes, {} genuine (planted) pairs overall\n",
        generated.dataset.len(),
        generated.truth.genuine_pairs().len()
    );

    // The labelled universe: static INDs at the latest snapshot.
    let universe = LabelledUniverse::build(&generated, 4096);
    println!(
        "labelled universe: {} static INDs at the latest snapshot, {} genuine ({:.1}% — \
         the paper measured 11%)\n",
        universe.len(),
        universe.genuine_count,
        100.0 * universe.genuine_count as f64 / universe.len() as f64
    );

    // Sweep the variant families over a parameter grid.
    let grid = GridSpec {
        eps_values: vec![0.0, 1.0, 3.0, 7.0, 15.0, 39.0],
        deltas: vec![0, 7, 31],
        decay_bases: vec![0.999],
    };
    let (curves, _) = evaluate_families(&generated, &grid);

    println!("Pareto frontiers (precision / recall within the labelled universe):\n");
    for curve in &curves {
        println!("  {}", curve.family);
        for p in &curve.points {
            println!(
                "    {:<28} precision {:>5.1}%   recall {:>5.1}%",
                p.label,
                p.precision * 100.0,
                p.recall * 100.0
            );
        }
    }

    println!("\npaper shape: static is the low-precision/recall-1 baseline; strict tINDs are");
    println!("precise but recall-starved; each relaxation (ε → εδ → wεδ) extends the frontier.");
}
