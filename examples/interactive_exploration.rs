//! The paper's headline use-case: *interactive* exploration. One index,
//! many queries with user-tuned parameters — each answered in
//! milliseconds, so the user can converge on a useful (ε, δ, w) setting.
//!
//! ```sh
//! cargo run --release --example interactive_exploration
//! ```

use std::sync::Arc;
use std::time::Instant;

use tind::core::{IndexConfig, TindIndex, TindParams};
use tind::datagen::{generate, GeneratorConfig};
use tind::model::WeightFn;

fn main() {
    let n = 4000;
    println!("generating {n} Wikipedia-shaped attributes ...");
    let generated = generate(&GeneratorConfig::paper_shaped(n, 7));
    let dataset = Arc::new(generated.dataset);
    let timeline = dataset.timeline();

    let start = Instant::now();
    let index = TindIndex::build(dataset.clone(), IndexConfig::default());
    println!(
        "index built in {:.2?} ({} time slices, {:.1} MiB of Bloom matrices)\n",
        start.elapsed(),
        index.time_slices().len(),
        index.bloom_bytes() as f64 / (1024.0 * 1024.0)
    );

    // A user exploring one attribute, iterating on parameters.
    let (query, hist) = dataset.attribute_by_name("derived-0-of-0").expect("exists");
    println!("exploring '{}' ({} versions over {} days):\n", hist.name(), hist.versions().len(), hist.lifespan());

    let settings = [
        ("strict", TindParams::strict()),
        ("ε=3d", TindParams::weighted(3.0, 0, WeightFn::constant_one())),
        ("ε=3d δ=7d (paper default)", TindParams::paper_default()),
        ("ε=15d δ=31d", TindParams::weighted(15.0, 31, WeightFn::constant_one())),
        (
            "ε=5 δ=7d, recent-weighted (a=0.999)",
            TindParams::weighted(5.0, 7, WeightFn::exponential(0.999, timeline)),
        ),
    ];
    for (label, params) in &settings {
        let start = Instant::now();
        let outcome = index.search(query, params);
        let elapsed = start.elapsed();
        let s = &outcome.stats;
        println!(
            "{label:<38} {} results in {elapsed:>9.2?}  (candidates {} -> {} -> {} -> {})",
            outcome.results.len(),
            s.initial,
            s.after_required,
            s.after_slices,
            s.after_exact,
        );
    }

    // Batch latency at the default setting.
    let params = TindParams::paper_default();
    let queries: Vec<u32> = (0..dataset.len() as u32).step_by(dataset.len() / 200).collect();
    let start = Instant::now();
    let mut total_results = 0usize;
    for &q in &queries {
        total_results += index.search(q, &params).results.len();
    }
    let elapsed = start.elapsed();
    println!(
        "\n{} queries in {elapsed:.2?} ({:.2} ms/query on average, {total_results} total results)",
        queries.len(),
        elapsed.as_secs_f64() * 1000.0 / queries.len() as f64,
    );
}
